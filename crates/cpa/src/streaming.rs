use crate::sequential::SequentialEngine;
use crate::{
    CpaAlgo, CpaError, DetectionCriterion, DetectionResult, SequentialOptions, SpreadSpectrum,
};

/// An incremental rotational-CPA detector.
///
/// The folded algorithm of [`Detector::detect`](crate::Detector::detect)
/// maintains only per-residue sums of the measurement, so it can be updated
/// one cycle at a time. `StreamingCpa` exposes that: feed cycles as the
/// oscilloscope produces them, query the spectrum whenever you like, and
/// stop as soon as the detection criterion is met — answering the
/// practical question behind the paper's fixed N = 300,000: *how many
/// cycles does this chip actually need?*
///
/// ```
/// # fn main() -> Result<(), clockmark_cpa::CpaError> {
/// use clockmark_cpa::{DetectionCriterion, StreamingCpa};
///
/// let pattern = [true, false, true, true, false, false, true, false];
/// let mut detector = StreamingCpa::new(&pattern)?;
/// for i in 0..400 {
///     let y = if pattern[(i + 3) % 8] { 1.0 } else { 0.0 } + (i % 5) as f64 * 0.1;
///     detector.push(y);
/// }
/// let result = detector.detect(&DetectionCriterion::default());
/// assert!(result.detected);
/// assert_eq!(result.peak_rotation, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingCpa {
    pattern: Vec<bool>,
    ones: Vec<usize>,
    /// Per-residue sums of y.
    residue_sums: Vec<f64>,
    /// Per-residue sample counts.
    residue_counts: Vec<u64>,
    sum_y: f64,
    sum_yy: f64,
    cycles: u64,
    /// Kernel pinned by [`with_algo`](Self::with_algo); `None` resolves
    /// per query (environment override, then work heuristic).
    algo: Option<CpaAlgo>,
}

impl StreamingCpa {
    /// Creates a detector for a watermark pattern (one period).
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::TooShort`] for a pattern shorter than 2 and
    /// [`CpaError::ConstantPattern`] when the pattern has no variance.
    pub fn new(pattern: &[bool]) -> Result<Self, CpaError> {
        if pattern.len() < 2 {
            return Err(CpaError::TooShort { len: pattern.len() });
        }
        let ones: Vec<usize> = (0..pattern.len()).filter(|&i| pattern[i]).collect();
        if ones.is_empty() || ones.len() == pattern.len() {
            return Err(CpaError::ConstantPattern);
        }
        Ok(StreamingCpa {
            ones,
            residue_sums: vec![0.0; pattern.len()],
            residue_counts: vec![0; pattern.len()],
            pattern: pattern.to_vec(),
            sum_y: 0.0,
            sum_yy: 0.0,
            cycles: 0,
            algo: None,
        })
    }

    /// Pins the spectrum kernel, overriding both the `CLOCKMARK_CPA_ALGO`
    /// environment variable and the work heuristic for this detector's
    /// queries. The campaign engine sets this from the kernel recorded in
    /// the campaign spec, so resumed runs replay the same arithmetic
    /// regardless of the resuming process's environment.
    ///
    /// A detector retains no raw trace, so [`CpaAlgo::Naive`] is evaluated
    /// with the (decision-identical) folded arithmetic here.
    #[must_use]
    pub fn with_algo(mut self, algo: CpaAlgo) -> Self {
        self.algo = Some(algo);
        self
    }

    /// The pinned kernel, if [`with_algo`](Self::with_algo) set one.
    pub fn algo(&self) -> Option<CpaAlgo> {
        self.algo
    }

    /// The watermark period.
    pub fn period(&self) -> usize {
        self.pattern.len()
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Feeds one measured cycle.
    pub fn push(&mut self, y: f64) {
        let k = (self.cycles % self.period() as u64) as usize;
        self.residue_sums[k] += y;
        self.residue_counts[k] += 1;
        self.sum_y += y;
        self.sum_yy += y * y;
        self.cycles += 1;
    }

    /// Feeds a batch of cycles.
    pub fn extend_from_slice(&mut self, ys: &[f64]) {
        self.push_chunk(ys);
    }

    /// Bulk-ingests a chunk of cycles.
    ///
    /// Bit-identical to calling [`push`](Self::push) once per value —
    /// each accumulator sees the same values in the same order — but the
    /// work runs through the chunked struct-of-arrays fold kernel
    /// (`fold.rs`): the global sums accumulate in a trace-order unrolled
    /// pass and the per-residue sums in vectorizable period-length
    /// blocks, with no per-sample wrap branch. This is the campaign
    /// replay hot path, where traces arrive as disk-sized chunks rather
    /// than single cycles.
    pub fn push_chunk(&mut self, ys: &[f64]) {
        let period = self.period();
        let k = (self.cycles % period as u64) as usize;
        crate::fold::fold_samples(
            &mut self.residue_sums,
            &mut self.residue_counts,
            &mut self.sum_y,
            &mut self.sum_yy,
            k,
            ys,
        );
        self.cycles += ys.len() as u64;
    }

    /// Computes the current spread spectrum from the accumulated sums.
    ///
    /// The kernel is the one pinned by [`with_algo`](Self::with_algo),
    /// else the `CLOCKMARK_CPA_ALGO` override, else the work heuristic —
    /// the same precedence as [`Detector::detect`](crate::Detector::detect).
    /// The kernel always runs on the calling thread: streaming detectors
    /// live inside campaign worker threads, which must not nest their own
    /// thread pools.
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::InsufficientCycles`] until at least one full
    /// period has been consumed (the `TooShort` variant is reserved for
    /// patterns that are themselves too short).
    pub fn spectrum(&self) -> Result<SpreadSpectrum, CpaError> {
        let period = self.period();
        if self.cycles < period as u64 {
            return Err(CpaError::InsufficientCycles {
                have: self.cycles,
                need: period,
            });
        }
        let algo = self
            .algo
            .or_else(crate::algo::algo_override)
            .unwrap_or_else(|| CpaAlgo::resolved_for_pattern(&self.pattern));
        let _span = clockmark_obs::span("cpa.streaming_spectrum")
            .field("period", period)
            .field("cycles", self.cycles)
            .field("algo", algo.as_str());
        let inputs = crate::kernel::SpectrumInputs {
            nf: self.cycles as f64,
            sy: self.sum_y,
            syy: self.sum_yy,
            c: &self.residue_sums,
            m: &self.residue_counts,
            ones: &self.ones,
        };
        Ok(crate::kernel::spectrum_with_algo(&inputs, algo, 1))
    }

    /// Evaluates the criterion against the current spectrum. Before one
    /// full period has been consumed this conservatively reports
    /// "not detected".
    pub fn detect(&self, criterion: &DetectionCriterion) -> DetectionResult {
        match self.spectrum() {
            Ok(spectrum) => spectrum.detect(criterion),
            Err(_) => DetectionResult {
                detected: false,
                peak_rotation: 0,
                peak_rho: 0.0,
                floor_max_abs: 0.0,
                ratio: 0.0,
                zscore: 0.0,
            },
        }
    }

    /// Snapshots every accumulator of the fold, bit-exactly.
    ///
    /// The snapshot plus the not-yet-consumed tail of the measurement is
    /// a complete continuation: restoring it with
    /// [`from_state`](Self::from_state) and feeding the remaining cycles
    /// produces results bit-identical to an uninterrupted run. This is
    /// what campaign checkpoints persist.
    pub fn state(&self) -> StreamingCpaState {
        StreamingCpaState {
            pattern: self.pattern.clone(),
            residue_sums: self.residue_sums.clone(),
            residue_counts: self.residue_counts.clone(),
            sum_y: self.sum_y,
            sum_yy: self.sum_yy,
            cycles: self.cycles,
        }
    }

    /// Rebuilds a detector from a [`state`](Self::state) snapshot.
    ///
    /// Snapshots carry only the fold accumulators, never the kernel
    /// choice — re-apply [`with_algo`](Self::with_algo) after restoring
    /// when the kernel must be pinned (the campaign engine records it in
    /// the campaign spec and does exactly that).
    ///
    /// # Errors
    ///
    /// Returns the pattern-validation errors of [`new`](Self::new), and
    /// [`CpaError::InvalidState`] when the snapshot's vectors do not
    /// match the pattern length or its counts do not sum to `cycles`.
    pub fn from_state(state: StreamingCpaState) -> Result<Self, CpaError> {
        let mut detector = Self::new(&state.pattern)?;
        let period = detector.period();
        if state.residue_sums.len() != period || state.residue_counts.len() != period {
            return Err(CpaError::InvalidState {
                message: format!(
                    "residue vectors of length {}/{} for period {period}",
                    state.residue_sums.len(),
                    state.residue_counts.len()
                ),
            });
        }
        let counted: u64 = state.residue_counts.iter().sum();
        if counted != state.cycles {
            return Err(CpaError::InvalidState {
                message: format!(
                    "residue counts sum to {counted} but cycles is {}",
                    state.cycles
                ),
            });
        }
        if !state.sum_y.is_finite() || !state.sum_yy.is_finite() {
            return Err(CpaError::InvalidState {
                message: "non-finite accumulator sums".to_owned(),
            });
        }
        detector.residue_sums = state.residue_sums;
        detector.residue_counts = state.residue_counts;
        detector.sum_y = state.sum_y;
        detector.sum_yy = state.sum_yy;
        detector.cycles = state.cycles;
        Ok(detector)
    }

    /// Consumes cycles from an iterator until the criterion is satisfied
    /// (checking every `check_interval` cycles) or the iterator ends.
    /// Returns the cycle count at detection, or `None` if the stream ended
    /// undetected.
    ///
    /// This is the arithmetic-schedule special case of the sequential
    /// engine (see [`SequentialOptions::every`]): cycles are buffered and
    /// folded in checkpoint-aligned chunks (the vectorized
    /// [`push_chunk`](Self::push_chunk) path, reusing the per-thread FFT
    /// plan and SoA scratch) instead of the historical per-cycle push
    /// with a from-scratch spectrum at every interval. The engine's
    /// four-period early-accept floor applies: a checkpoint earlier than
    /// `4 × period` cycles never stops the stream, guarding against
    /// degenerate accepts on tiny prefixes. The end-of-stream evaluation
    /// is the plain criterion, exactly as before.
    pub fn run_until_detected<I: IntoIterator<Item = f64>>(
        &mut self,
        ys: I,
        criterion: &DetectionCriterion,
        check_interval: u64,
    ) -> Option<u64> {
        let options = SequentialOptions::every(check_interval);
        let mut engine = SequentialEngine::new(options, *criterion, self);
        let mut buf: Vec<f64> = Vec::with_capacity(1024);
        for y in ys {
            buf.push(y);
            // Flush exactly at checkpoints (so a decision stops the
            // iterator without over-consuming) and at a chunk bound.
            let at_checkpoint = engine.next_checkpoint == Some(self.cycles + buf.len() as u64);
            if at_checkpoint || buf.len() >= 8192 {
                engine.push_chunk(self, &buf);
                buf.clear();
                if engine.decided() {
                    return Some(self.cycles);
                }
            }
        }
        engine.push_chunk(self, &buf);
        if engine.decided() || self.detect(criterion).detected {
            Some(self.cycles)
        } else {
            None
        }
    }

    /// Scores many candidate patterns against this fold at once and
    /// ranks them — the identification workload. The fold depends only
    /// on the period, so any session of the right period can answer for
    /// any candidate set; see [`crate::Identification`] for the
    /// bit-identity contract with independent detects.
    ///
    /// The kernel follows this session's pinned choice (else the usual
    /// override/heuristic precedence); `CpaAlgo::Naive` is evaluated
    /// with the (decision-identical) folded arithmetic, as a fold
    /// retains no raw trace. `threads` partitions candidates and does
    /// not affect the result bytes.
    ///
    /// # Errors
    ///
    /// [`CpaError::InsufficientCycles`] before one full period;
    /// [`CpaError::PeriodMismatch`], [`CpaError::ConstantPattern`] or
    /// [`CpaError::InvalidState`] (empty candidate list) for invalid
    /// candidates.
    pub fn identify(
        &self,
        candidates: &[crate::CandidatePattern],
        criterion: &DetectionCriterion,
        threads: usize,
    ) -> Result<crate::Identification, CpaError> {
        let algo = self
            .algo
            .or_else(crate::algo::algo_override)
            .unwrap_or_else(|| CpaAlgo::resolved_for_pattern(&self.pattern));
        crate::identify::identify_over_fold(
            self.cycles as f64,
            self.sum_y,
            self.sum_yy,
            &self.residue_sums,
            &self.residue_counts,
            self.cycles,
            candidates,
            criterion,
            algo,
            threads,
        )
    }
}

/// The serializable accumulators of a [`StreamingCpa`] fold.
///
/// All fields are public so persistence layers (the campaign engine's
/// binary checkpoints, tests) can encode them bit-exactly; consistency is
/// re-validated by [`StreamingCpa::from_state`] on the way back in.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingCpaState {
    /// One period of the watermark pattern.
    pub pattern: Vec<bool>,
    /// Per-residue sums of y.
    pub residue_sums: Vec<f64>,
    /// Per-residue sample counts.
    pub residue_counts: Vec<u64>,
    /// Running sum of y.
    pub sum_y: f64,
    /// Running sum of y².
    pub sum_yy: f64,
    /// Cycles consumed.
    pub cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Detector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn spread_spectrum(pattern: &[bool], y: &[f64]) -> Result<SpreadSpectrum, CpaError> {
        Detector::new(pattern)?.spectrum(y)
    }

    fn m_sequence_pattern() -> Vec<bool> {
        use clockmark_seq::{Lfsr, SequenceGenerator};
        let mut lfsr = Lfsr::maximal(7).expect("valid");
        (0..127).map(|_| lfsr.next_bit()).collect()
    }

    fn noisy_trace(
        pattern: &[bool],
        n: usize,
        phase: usize,
        amp: f64,
        noise: f64,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let wm = if pattern[(i + phase) % pattern.len()] {
                    amp
                } else {
                    0.0
                };
                wm + rng.random_range(-noise..noise)
            })
            .collect()
    }

    #[test]
    fn streaming_spectrum_matches_batch_exactly() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 3000, 41, 0.7, 2.0, 1);

        let batch = spread_spectrum(&pattern, &y).expect("valid");
        let mut streaming = StreamingCpa::new(&pattern).expect("valid");
        streaming.extend_from_slice(&y);
        let incremental = streaming.spectrum().expect("enough cycles");

        for (a, b) in batch.rho().iter().zip(incremental.rho()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn early_stopping_detects_before_the_stream_ends() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 20_000, 41, 1.0, 2.0, 2);
        let mut streaming = StreamingCpa::new(&pattern).expect("valid");
        let stopped_at = streaming
            .run_until_detected(y.iter().copied(), &DetectionCriterion::default(), 127)
            .expect("strong watermark must be found");
        assert!(
            stopped_at < 20_000,
            "early stop at {stopped_at} should beat the full trace"
        );
        assert_eq!(
            streaming
                .detect(&DetectionCriterion::default())
                .peak_rotation,
            41
        );
    }

    #[test]
    fn weak_watermark_needs_more_cycles_than_strong() {
        let pattern = m_sequence_pattern();
        let criterion = DetectionCriterion::default();
        let strong = {
            let y = noisy_trace(&pattern, 60_000, 10, 1.0, 2.0, 3);
            StreamingCpa::new(&pattern)
                .expect("valid")
                .run_until_detected(y, &criterion, 127)
        };
        let weak = {
            let y = noisy_trace(&pattern, 60_000, 10, 0.3, 2.0, 3);
            StreamingCpa::new(&pattern)
                .expect("valid")
                .run_until_detected(y, &criterion, 127)
        };
        let strong = strong.expect("strong detects");
        let weak = weak.expect("weak detects eventually");
        assert!(weak > strong, "weak {weak} vs strong {strong}");
    }

    #[test]
    fn absent_watermark_never_stops_early() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 30_000, 0, 0.0, 2.0, 4);
        let mut streaming = StreamingCpa::new(&pattern).expect("valid");
        assert_eq!(
            streaming.run_until_detected(y, &DetectionCriterion::default(), 127),
            None
        );
    }

    #[test]
    fn detection_before_one_period_is_conservative() {
        let pattern = m_sequence_pattern();
        let mut streaming = StreamingCpa::new(&pattern).expect("valid");
        for _ in 0..50 {
            streaming.push(1.0);
        }
        assert_eq!(
            streaming.spectrum().unwrap_err(),
            CpaError::InsufficientCycles {
                have: 50,
                need: 127
            }
        );
        assert!(!streaming.detect(&DetectionCriterion::default()).detected);
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            StreamingCpa::new(&[true]).unwrap_err(),
            CpaError::TooShort { len: 1 }
        ));
        assert_eq!(
            StreamingCpa::new(&[true, true]).unwrap_err(),
            CpaError::ConstantPattern
        );
    }

    /// Pins the error-variant split the docs promise: `TooShort` is about
    /// the *pattern* (a constructor-time property), `InsufficientCycles`
    /// is about the *stream* (a query-time property). PR 1 separated the
    /// two; this test keeps them from collapsing back into one variant.
    #[test]
    fn error_variants_split_pattern_from_cycles() {
        // Pattern too short → TooShort from `new`, never InsufficientCycles.
        for pattern in [&[][..], &[true][..], &[false][..]] {
            assert!(
                matches!(
                    StreamingCpa::new(pattern).unwrap_err(),
                    CpaError::TooShort { len } if len == pattern.len()
                ),
                "pattern of length {} must fail with TooShort",
                pattern.len()
            );
        }

        // Too few cycles → InsufficientCycles from `spectrum`, with both
        // counts reported, at every point short of one full period.
        let pattern = [true, false, true, true, false, false, true, false];
        let mut detector = StreamingCpa::new(&pattern).expect("valid pattern");
        for have in 0..pattern.len() as u64 {
            assert_eq!(
                detector.spectrum().unwrap_err(),
                CpaError::InsufficientCycles {
                    have,
                    need: pattern.len()
                },
                "at {have} cycles"
            );
            detector.push(1.0);
        }
        // One full period in: the error clears and a spectrum exists.
        assert!(detector.spectrum().is_ok());
    }

    #[test]
    fn pinned_fft_kernel_reports_the_same_peak_bits_as_folded() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 5000, 77, 0.6, 2.0, 8);

        let mut folded = StreamingCpa::new(&pattern)
            .expect("valid")
            .with_algo(crate::CpaAlgo::Folded);
        folded.push_chunk(&y);
        let mut fft = StreamingCpa::new(&pattern)
            .expect("valid")
            .with_algo(crate::CpaAlgo::Fft);
        fft.push_chunk(&y);
        assert_eq!(fft.algo(), Some(crate::CpaAlgo::Fft));

        let a = folded.spectrum().expect("complete");
        let b = fft.spectrum().expect("complete");
        assert_eq!(a.peak_abs().0, b.peak_abs().0);
        assert_eq!(a.peak_abs().1.to_bits(), b.peak_abs().1.to_bits());
        for (x, y) in a.rho().iter().zip(b.rho()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn push_chunk_is_bit_identical_to_per_cycle_push() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 10_000, 23, 0.6, 3.0, 5);

        let mut per_cycle = StreamingCpa::new(&pattern).expect("valid");
        for &v in &y {
            per_cycle.push(v);
        }

        // Uneven chunk sizes, including chunks smaller and larger than
        // the period, must not change a single accumulator bit.
        let mut chunked = StreamingCpa::new(&pattern).expect("valid");
        let mut offset = 0usize;
        for (i, chunk_len) in [1usize, 7, 127, 500, 3, 1024].iter().cycle().enumerate() {
            if offset >= y.len() {
                break;
            }
            let end = (offset + chunk_len + i % 3).min(y.len());
            chunked.push_chunk(&y[offset..end]);
            offset = end;
        }

        assert_eq!(per_cycle, chunked, "fold state must match bit-for-bit");
        let a = per_cycle.spectrum().expect("complete");
        let b = chunked.spectrum().expect("complete");
        for (x, y) in a.rho().iter().zip(b.rho()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 8_000, 12, 0.8, 2.0, 6);
        let (head, tail) = y.split_at(3_141);

        let mut uninterrupted = StreamingCpa::new(&pattern).expect("valid");
        uninterrupted.push_chunk(&y);

        let mut first_half = StreamingCpa::new(&pattern).expect("valid");
        first_half.push_chunk(head);
        let snapshot = first_half.state();
        let mut resumed = StreamingCpa::from_state(snapshot).expect("valid snapshot");
        resumed.push_chunk(tail);

        assert_eq!(uninterrupted, resumed);
        let a = uninterrupted.detect(&DetectionCriterion::default());
        let b = resumed.detect(&DetectionCriterion::default());
        assert_eq!(a.peak_rho.to_bits(), b.peak_rho.to_bits());
        assert_eq!(a.zscore.to_bits(), b.zscore.to_bits());
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_states_are_rejected() {
        let pattern = m_sequence_pattern();
        let mut detector = StreamingCpa::new(&pattern).expect("valid");
        detector.push_chunk(&noisy_trace(&pattern, 500, 0, 1.0, 1.0, 7));
        let good = detector.state();

        let mut short_sums = good.clone();
        short_sums.residue_sums.pop();
        assert!(matches!(
            StreamingCpa::from_state(short_sums).unwrap_err(),
            CpaError::InvalidState { .. }
        ));

        let mut bad_counts = good.clone();
        bad_counts.residue_counts[0] += 1;
        assert!(matches!(
            StreamingCpa::from_state(bad_counts).unwrap_err(),
            CpaError::InvalidState { .. }
        ));

        let mut nan_sum = good.clone();
        nan_sum.sum_y = f64::NAN;
        assert!(matches!(
            StreamingCpa::from_state(nan_sum).unwrap_err(),
            CpaError::InvalidState { .. }
        ));

        let mut constant = good;
        constant.pattern = vec![true; pattern.len()];
        assert_eq!(
            StreamingCpa::from_state(constant).unwrap_err(),
            CpaError::ConstantPattern
        );
    }
}
