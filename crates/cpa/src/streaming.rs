use crate::{CpaError, DetectionCriterion, DetectionResult, SpreadSpectrum};

/// An incremental rotational-CPA detector.
///
/// The folded algorithm of [`spread_spectrum`](crate::spread_spectrum)
/// maintains only per-residue sums of the measurement, so it can be updated
/// one cycle at a time. `StreamingCpa` exposes that: feed cycles as the
/// oscilloscope produces them, query the spectrum whenever you like, and
/// stop as soon as the detection criterion is met — answering the
/// practical question behind the paper's fixed N = 300,000: *how many
/// cycles does this chip actually need?*
///
/// ```
/// # fn main() -> Result<(), clockmark_cpa::CpaError> {
/// use clockmark_cpa::{DetectionCriterion, StreamingCpa};
///
/// let pattern = [true, false, true, true, false, false, true, false];
/// let mut detector = StreamingCpa::new(&pattern)?;
/// for i in 0..400 {
///     let y = if pattern[(i + 3) % 8] { 1.0 } else { 0.0 } + (i % 5) as f64 * 0.1;
///     detector.push(y);
/// }
/// let result = detector.detect(&DetectionCriterion::default());
/// assert!(result.detected);
/// assert_eq!(result.peak_rotation, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingCpa {
    pattern: Vec<bool>,
    ones: Vec<usize>,
    /// Per-residue sums of y.
    residue_sums: Vec<f64>,
    /// Per-residue sample counts.
    residue_counts: Vec<u64>,
    sum_y: f64,
    sum_yy: f64,
    cycles: u64,
}

impl StreamingCpa {
    /// Creates a detector for a watermark pattern (one period).
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::TooShort`] for a pattern shorter than 2 and
    /// [`CpaError::ConstantPattern`] when the pattern has no variance.
    pub fn new(pattern: &[bool]) -> Result<Self, CpaError> {
        if pattern.len() < 2 {
            return Err(CpaError::TooShort { len: pattern.len() });
        }
        let ones: Vec<usize> = (0..pattern.len()).filter(|&i| pattern[i]).collect();
        if ones.is_empty() || ones.len() == pattern.len() {
            return Err(CpaError::ConstantPattern);
        }
        Ok(StreamingCpa {
            ones,
            residue_sums: vec![0.0; pattern.len()],
            residue_counts: vec![0; pattern.len()],
            pattern: pattern.to_vec(),
            sum_y: 0.0,
            sum_yy: 0.0,
            cycles: 0,
        })
    }

    /// The watermark period.
    pub fn period(&self) -> usize {
        self.pattern.len()
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Feeds one measured cycle.
    pub fn push(&mut self, y: f64) {
        let k = (self.cycles % self.period() as u64) as usize;
        self.residue_sums[k] += y;
        self.residue_counts[k] += 1;
        self.sum_y += y;
        self.sum_yy += y * y;
        self.cycles += 1;
    }

    /// Feeds a batch of cycles.
    pub fn extend_from_slice(&mut self, ys: &[f64]) {
        for &y in ys {
            self.push(y);
        }
    }

    /// Computes the current spread spectrum from the accumulated sums.
    ///
    /// # Errors
    ///
    /// Returns [`CpaError::InsufficientCycles`] until at least one full
    /// period has been consumed (the `TooShort` variant is reserved for
    /// patterns that are themselves too short).
    pub fn spectrum(&self) -> Result<SpreadSpectrum, CpaError> {
        let period = self.period();
        if self.cycles < period as u64 {
            return Err(CpaError::InsufficientCycles {
                have: self.cycles,
                need: period,
            });
        }
        let _span = clockmark_obs::span("cpa.streaming_spectrum")
            .field("period", period)
            .field("cycles", self.cycles);
        let nf = self.cycles as f64;
        let mut rho = Vec::with_capacity(period);
        for r in 0..period {
            let mut sx = 0.0f64;
            let mut sxy = 0.0f64;
            for &j in &self.ones {
                let k = (j + period - r) % period;
                sx += self.residue_counts[k] as f64;
                sxy += self.residue_sums[k];
            }
            rho.push(crate::pearson::correlation_from_sums(
                nf,
                sx,
                self.sum_y,
                sx,
                self.sum_yy,
                sxy,
            ));
        }
        Ok(SpreadSpectrum::from_rho(rho))
    }

    /// Evaluates the criterion against the current spectrum. Before one
    /// full period has been consumed this conservatively reports
    /// "not detected".
    pub fn detect(&self, criterion: &DetectionCriterion) -> DetectionResult {
        match self.spectrum() {
            Ok(spectrum) => spectrum.detect(criterion),
            Err(_) => DetectionResult {
                detected: false,
                peak_rotation: 0,
                peak_rho: 0.0,
                floor_max_abs: 0.0,
                ratio: 0.0,
                zscore: 0.0,
            },
        }
    }

    /// Consumes cycles from an iterator until the criterion is satisfied
    /// (checking every `check_interval` cycles) or the iterator ends.
    /// Returns the cycle count at detection, or `None` if the stream ended
    /// undetected.
    pub fn run_until_detected<I: IntoIterator<Item = f64>>(
        &mut self,
        ys: I,
        criterion: &DetectionCriterion,
        check_interval: u64,
    ) -> Option<u64> {
        let check_interval = check_interval.max(1);
        for y in ys {
            self.push(y);
            if self.cycles.is_multiple_of(check_interval) && self.detect(criterion).detected {
                return Some(self.cycles);
            }
        }
        if self.detect(criterion).detected {
            Some(self.cycles)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread_spectrum;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn m_sequence_pattern() -> Vec<bool> {
        use clockmark_seq::{Lfsr, SequenceGenerator};
        let mut lfsr = Lfsr::maximal(7).expect("valid");
        (0..127).map(|_| lfsr.next_bit()).collect()
    }

    fn noisy_trace(
        pattern: &[bool],
        n: usize,
        phase: usize,
        amp: f64,
        noise: f64,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let wm = if pattern[(i + phase) % pattern.len()] {
                    amp
                } else {
                    0.0
                };
                wm + rng.random_range(-noise..noise)
            })
            .collect()
    }

    #[test]
    fn streaming_spectrum_matches_batch_exactly() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 3000, 41, 0.7, 2.0, 1);

        let batch = spread_spectrum(&pattern, &y).expect("valid");
        let mut streaming = StreamingCpa::new(&pattern).expect("valid");
        streaming.extend_from_slice(&y);
        let incremental = streaming.spectrum().expect("enough cycles");

        for (a, b) in batch.rho().iter().zip(incremental.rho()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn early_stopping_detects_before_the_stream_ends() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 20_000, 41, 1.0, 2.0, 2);
        let mut streaming = StreamingCpa::new(&pattern).expect("valid");
        let stopped_at = streaming
            .run_until_detected(y.iter().copied(), &DetectionCriterion::default(), 127)
            .expect("strong watermark must be found");
        assert!(
            stopped_at < 20_000,
            "early stop at {stopped_at} should beat the full trace"
        );
        assert_eq!(
            streaming
                .detect(&DetectionCriterion::default())
                .peak_rotation,
            41
        );
    }

    #[test]
    fn weak_watermark_needs_more_cycles_than_strong() {
        let pattern = m_sequence_pattern();
        let criterion = DetectionCriterion::default();
        let strong = {
            let y = noisy_trace(&pattern, 60_000, 10, 1.0, 2.0, 3);
            StreamingCpa::new(&pattern)
                .expect("valid")
                .run_until_detected(y, &criterion, 127)
        };
        let weak = {
            let y = noisy_trace(&pattern, 60_000, 10, 0.3, 2.0, 3);
            StreamingCpa::new(&pattern)
                .expect("valid")
                .run_until_detected(y, &criterion, 127)
        };
        let strong = strong.expect("strong detects");
        let weak = weak.expect("weak detects eventually");
        assert!(weak > strong, "weak {weak} vs strong {strong}");
    }

    #[test]
    fn absent_watermark_never_stops_early() {
        let pattern = m_sequence_pattern();
        let y = noisy_trace(&pattern, 30_000, 0, 0.0, 2.0, 4);
        let mut streaming = StreamingCpa::new(&pattern).expect("valid");
        assert_eq!(
            streaming.run_until_detected(y, &DetectionCriterion::default(), 127),
            None
        );
    }

    #[test]
    fn detection_before_one_period_is_conservative() {
        let pattern = m_sequence_pattern();
        let mut streaming = StreamingCpa::new(&pattern).expect("valid");
        for _ in 0..50 {
            streaming.push(1.0);
        }
        assert_eq!(
            streaming.spectrum().unwrap_err(),
            CpaError::InsufficientCycles {
                have: 50,
                need: 127
            }
        );
        assert!(!streaming.detect(&DetectionCriterion::default()).detected);
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            StreamingCpa::new(&[true]).unwrap_err(),
            CpaError::TooShort { len: 1 }
        ));
        assert_eq!(
            StreamingCpa::new(&[true, true]).unwrap_err(),
            CpaError::ConstantPattern
        );
    }
}
