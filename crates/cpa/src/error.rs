use std::error::Error;
use std::fmt;

/// Errors produced by correlation power analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CpaError {
    /// Input vectors have different lengths.
    LengthMismatch {
        /// Length of the first vector.
        left: usize,
        /// Length of the second vector.
        right: usize,
    },
    /// An input vector is empty or too short to correlate.
    TooShort {
        /// The offending length.
        len: usize,
    },
    /// The measured trace is shorter than one watermark period, so no
    /// rotation hypothesis can be evaluated against it. Distinct from
    /// [`CpaError::LengthMismatch`], which is about two vectors that
    /// should have had *equal* lengths: here the trace is expected to be
    /// longer than (and need not be a multiple of) the period.
    TraceShorterThanPeriod {
        /// Cycles in the measured trace.
        have: usize,
        /// Cycles required (one watermark period).
        need: usize,
    },
    /// The watermark pattern is constant (all zeros or all ones), so its
    /// variance is zero and no correlation is defined.
    ConstantPattern,
    /// A streaming detector was queried before consuming one full
    /// watermark period, so no rotation hypothesis can be evaluated yet.
    InsufficientCycles {
        /// Cycles consumed so far.
        have: u64,
        /// Cycles required (one watermark period).
        need: usize,
    },
    /// A serialized `StreamingCpa` snapshot failed validation on restore
    /// (mismatched vector lengths, or accumulators inconsistent with the
    /// cycle count).
    InvalidState {
        /// What was inconsistent.
        message: String,
    },
    /// Spectra from experiments with different periods were combined.
    PeriodMismatch {
        /// Period expected by the ensemble.
        expected: usize,
        /// Period of the offending spectrum.
        got: usize,
    },
}

impl fmt::Display for CpaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpaError::LengthMismatch { left, right } => {
                write!(
                    f,
                    "input vectors have different lengths ({left} vs {right})"
                )
            }
            CpaError::TooShort { len } => {
                write!(f, "input of length {len} is too short to correlate")
            }
            CpaError::TraceShorterThanPeriod { have, need } => {
                write!(
                    f,
                    "measured trace has {have} cycles but one watermark \
                     period needs {need}"
                )
            }
            CpaError::ConstantPattern => {
                write!(f, "watermark pattern is constant and has no variance")
            }
            CpaError::InsufficientCycles { have, need } => {
                write!(
                    f,
                    "only {have} cycles consumed; at least {need} \
                     (one watermark period) are required"
                )
            }
            CpaError::InvalidState { message } => {
                write!(f, "invalid streaming-CPA snapshot: {message}")
            }
            CpaError::PeriodMismatch { expected, got } => {
                write!(
                    f,
                    "spectrum period {got} does not match ensemble period {expected}"
                )
            }
        }
    }
}

impl Error for CpaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CpaError>();
        assert!(CpaError::ConstantPattern.to_string().contains("constant"));
    }

    #[test]
    fn trace_shorter_than_period_reports_both_counts() {
        let msg = CpaError::TraceShorterThanPeriod {
            have: 2,
            need: 4095,
        }
        .to_string();
        assert!(msg.contains('2'), "{msg}");
        assert!(msg.contains("4095"), "{msg}");
        assert!(msg.contains("period"), "{msg}");
    }

    #[test]
    fn insufficient_cycles_reports_both_counts() {
        let msg = CpaError::InsufficientCycles {
            have: 50,
            need: 127,
        }
        .to_string();
        assert!(msg.contains("50"), "{msg}");
        assert!(msg.contains("127"), "{msg}");
        assert!(msg.contains("period"), "{msg}");
    }
}
