use crate::SpreadSpectrum;

/// The decision rule for "a single significant correlation coefficient can
/// be resolved" (Section III of the paper).
///
/// Two conditions are combined:
///
/// - the peak must exceed the largest other |ρ| by `min_peak_ratio` (the
///   "single peak" requirement — a second comparable peak fails it), and
/// - the peak must stand `min_zscore` standard deviations above the noise
///   floor (statistical significance; for `P − 1` independent floor values
///   the expected maximum is ≈ √(2·ln P) σ ≈ 4 σ at P = 4,095, so the
///   default of 5 σ keeps the false-positive rate low).
///
/// ```
/// let strict = clockmark_cpa::DetectionCriterion::default();
/// assert_eq!(strict.min_peak_ratio, 1.5);
/// assert_eq!(strict.min_zscore, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionCriterion {
    /// Minimum ratio between the peak and the largest other |ρ|.
    pub min_peak_ratio: f64,
    /// Minimum z-score of the peak against the floor distribution.
    pub min_zscore: f64,
}

impl DetectionCriterion {
    /// A lenient criterion for exploratory sweeps (ratio 1.2, z-score 4).
    pub fn lenient() -> Self {
        DetectionCriterion {
            min_peak_ratio: 1.2,
            min_zscore: 4.0,
        }
    }

    /// Evaluates the criterion against a spectrum.
    ///
    /// The decision is made on the coefficient *magnitude*, so an inverted
    /// watermark (power drops when the pattern bit is high) is detected at
    /// the same rotation; `peak_rho` keeps the sign so the polarity can be
    /// read off the result. A degenerate (all-zero) spectrum — e.g. from a
    /// constant trace — never detects, and neither does a spectrum with
    /// [no noise floor](SpreadSpectrum::has_noise_floor) (period 1), whose
    /// floor statistics are vacuous and would otherwise pass any
    /// peak-vs-floor threshold trivially.
    pub fn evaluate(&self, spectrum: &SpreadSpectrum) -> DetectionResult {
        let (peak_rotation, peak_rho) = spectrum.peak_abs();
        let ratio = spectrum.peak_to_floor_ratio();
        let zscore = spectrum.peak_zscore();
        DetectionResult {
            detected: spectrum.has_noise_floor()
                && !spectrum.is_degenerate()
                && ratio >= self.min_peak_ratio
                && zscore >= self.min_zscore,
            peak_rotation,
            peak_rho,
            floor_max_abs: spectrum.floor_max_abs(),
            ratio,
            zscore,
        }
    }
}

impl Default for DetectionCriterion {
    fn default() -> Self {
        DetectionCriterion {
            min_peak_ratio: 1.5,
            min_zscore: 5.0,
        }
    }
}

/// The outcome of applying a [`DetectionCriterion`] to a spread spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionResult {
    /// Whether a single significant peak resolved.
    pub detected: bool,
    /// The rotation at which the peak occurred (the phase offset between
    /// acquisition start and the watermark period).
    pub peak_rotation: usize,
    /// The correlation coefficient at the magnitude peak, sign preserved:
    /// negative for an inverted watermark.
    pub peak_rho: f64,
    /// The largest |ρ| among all other rotations.
    pub floor_max_abs: f64,
    /// `|peak_rho| / floor_max_abs`.
    pub ratio: f64,
    /// Peak z-score against the floor distribution.
    pub zscore: f64,
}

impl std::fmt::Display for DetectionResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (peak rho={:.5} at rotation {}, floor={:.5}, ratio={:.2}, z={:.1})",
            if self.detected {
                "DETECTED"
            } else {
                "not detected"
            },
            self.peak_rho,
            self.peak_rotation,
            self.floor_max_abs,
            self.ratio,
            self.zscore,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpaError, Detector};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn spread_spectrum(pattern: &[bool], y: &[f64]) -> Result<SpreadSpectrum, CpaError> {
        Detector::new(pattern)?.spectrum(y)
    }

    fn noisy_watermarked(amplitude: f64, noise: f64, seed: u64) -> (Vec<bool>, Vec<f64>) {
        use clockmark_seq::{Lfsr, SequenceGenerator};
        let mut rng = StdRng::seed_from_u64(seed);
        // One period of the 6-bit maximal sequence (aperiodic within 63).
        let mut lfsr = Lfsr::maximal(6).expect("valid width");
        let pattern: Vec<bool> = (0..63).map(|_| lfsr.next_bit()).collect();
        let y: Vec<f64> = (0..5000)
            .map(|i| {
                let wm = if pattern[(i + 17) % 63] {
                    amplitude
                } else {
                    0.0
                };
                wm + rng.random_range(-noise..noise)
            })
            .collect();
        (pattern, y)
    }

    #[test]
    fn strong_watermark_is_detected_at_the_right_phase() {
        let (pattern, y) = noisy_watermarked(1.0, 2.0, 7);
        let s = spread_spectrum(&pattern, &y).expect("valid");
        let result = s.detect(&DetectionCriterion::default());
        assert!(result.detected, "{result}");
        assert_eq!(result.peak_rotation, 17);
        assert!(result.zscore > 5.0);
    }

    #[test]
    fn absent_watermark_is_not_detected() {
        let (pattern, y) = noisy_watermarked(0.0, 2.0, 8);
        let s = spread_spectrum(&pattern, &y).expect("valid");
        let result = s.detect(&DetectionCriterion::default());
        assert!(!result.detected, "{result}");
    }

    #[test]
    fn lenient_criterion_is_weaker_than_default() {
        let lenient = DetectionCriterion::lenient();
        let default = DetectionCriterion::default();
        assert!(lenient.min_peak_ratio < default.min_peak_ratio);
        assert!(lenient.min_zscore < default.min_zscore);
    }

    #[test]
    fn display_reports_both_outcomes() {
        let (pattern, y) = noisy_watermarked(1.0, 1.0, 9);
        let s = spread_spectrum(&pattern, &y).expect("valid");
        let detected = s.detect(&DetectionCriterion::default());
        assert!(detected.to_string().contains("DETECTED"));

        let (pattern, y) = noisy_watermarked(0.0, 1.0, 10);
        let s = spread_spectrum(&pattern, &y).expect("valid");
        let missed = s.detect(&DetectionCriterion::default());
        assert!(missed.to_string().contains("not detected"));
    }

    #[test]
    fn constant_trace_is_not_detected() {
        // Regression: a zero-variance trace used to yield an all-zero
        // spectrum whose ratio and z-score were both +∞ → DETECTED.
        let pattern = [true, false, true, true, false, false, true];
        let y = vec![3.3; 700];
        let s = spread_spectrum(&pattern, &y).expect("valid");
        let result = s.detect(&DetectionCriterion::default());
        assert!(!result.detected, "{result}");
        assert!(result.ratio.is_finite());
        assert!(result.zscore.is_finite());
    }

    #[test]
    fn spectrum_without_a_noise_floor_never_detects() {
        // Regression: a period-1 spectrum is nothing but its own peak;
        // floor_mean/floor_std report 0.0, so ratio and z-score blow up
        // to +∞ and any peak-vs-floor criterion passes trivially. The
        // verdict must be "not detected" even though both thresholds are
        // numerically "met".
        let s = SpreadSpectrum::from_rho(vec![0.9]);
        assert!(!s.has_noise_floor());
        for criterion in [DetectionCriterion::default(), DetectionCriterion::lenient()] {
            let result = criterion.evaluate(&s);
            assert!(
                result.ratio >= criterion.min_peak_ratio && result.zscore >= criterion.min_zscore,
                "precondition: the thresholds alone would pass ({result})"
            );
            assert!(!result.detected, "{result}");
        }
        // A two-rotation spectrum has a floor and stays eligible.
        assert!(SpreadSpectrum::from_rho(vec![0.9, 0.1]).has_noise_floor());
    }

    #[test]
    fn inverted_watermark_is_detected_at_the_right_phase() {
        // Regression: detection used to maximise the *signed* ρ, so a
        // polarity-inverted watermark (power drops when the bit is high)
        // was invisible to the detector.
        let (pattern, y) = noisy_watermarked(-1.0, 2.0, 12);
        let s = spread_spectrum(&pattern, &y).expect("valid");
        let result = s.detect(&DetectionCriterion::default());
        assert!(result.detected, "{result}");
        assert_eq!(result.peak_rotation, 17);
        assert!(
            result.peak_rho < 0.0,
            "sign must be preserved: {}",
            result.peak_rho
        );
    }

    #[test]
    fn detection_degrades_gracefully_with_noise() {
        // At equal trace length, more noise means lower z-score.
        let mut scores = Vec::new();
        for noise in [0.5, 4.0, 32.0] {
            let (pattern, y) = noisy_watermarked(1.0, noise, 11);
            let s = spread_spectrum(&pattern, &y).expect("valid");
            scores.push(s.peak_zscore());
        }
        assert!(scores[0] > scores[1] && scores[1] > scores[2], "{scores:?}");
    }
}
