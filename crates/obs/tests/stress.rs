//! Loom-free concurrency stress: hammer `counter_add` / `observe` /
//! `span` from N threads while snapshots are taken mid-flight, then
//! prove nothing was lost and the JSONL artifact stayed parseable.

use clockmark_obs::export::JsonLinesExporter;
use clockmark_obs::json::{parse, Json};
use clockmark_obs::{Recorder, SharedBuffer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: u64 = 8;
const ITERS: u64 = 500;

#[test]
fn concurrent_sites_lose_nothing_and_emit_valid_jsonl() {
    let buffer = SharedBuffer::new();
    let recorder = Arc::new(Recorder::new(vec![Box::new(JsonLinesExporter::new(
        buffer.clone(),
    ))]));
    let finished = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let recorder = Arc::clone(&recorder);
            let finished = &finished;
            scope.spawn(move || {
                for i in 0..ITERS {
                    let _span = recorder
                        .span("stress.iteration")
                        .field("thread", t)
                        .field("i", i);
                    recorder.counter_add("stress.count", 1);
                    recorder.observe("stress.value", (i % 100) as f64 * 1e-3);
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        // Snapshot continuously while the writers run: a torn read here
        // would deadlock, panic, or show impossible partial state.
        let recorder = Arc::clone(&recorder);
        let finished = &finished;
        scope.spawn(move || {
            let mut mid_flight = 0u64;
            while finished.load(Ordering::Acquire) < THREADS {
                let snap = recorder.snapshot();
                let count = snap.counter("stress.count").unwrap_or(0);
                assert!(count <= THREADS * ITERS, "counter overshot: {count}");
                if let Some(h) = snap.histogram("stress.value") {
                    assert!(h.count <= THREADS * ITERS);
                    assert!(h.p50 <= h.p99);
                }
                let _ = recorder.collapsed_spans();
                mid_flight += 1;
                std::thread::yield_now();
            }
            assert!(mid_flight > 0, "snapshotter never ran");
        });
    });

    // No lost increments anywhere.
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("stress.count"), Some(THREADS * ITERS));
    let hist = snap.histogram("stress.value").expect("histogram recorded");
    assert_eq!(hist.count, THREADS * ITERS);
    let (name, span_stat) = snap
        .spans
        .iter()
        .find(|(n, _)| n == "stress.iteration")
        .expect("span aggregated");
    assert_eq!(name, "stress.iteration");
    assert_eq!(span_stat.count, THREADS * ITERS);

    // The live windows saw the same volume (everything within 60 s).
    let windows = snap.window("stress.value").expect("windowed");
    let w60 = windows
        .iter()
        .find(|w| w.window_secs == 60)
        .expect("60s window");
    assert_eq!(w60.count, THREADS * ITERS);

    // The collapsed-stack rollup accounts for every span.
    let collapsed = recorder.collapsed_spans();
    assert!(collapsed.contains("stress.iteration "));

    // Every interleaved JSONL line parses and is a span event.
    recorder.flush();
    let contents = buffer.contents();
    let mut span_lines = 0u64;
    for line in contents.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("line {line:?} must parse: {e}"));
        if v.get("t").and_then(Json::as_str) == Some("span") {
            span_lines += 1;
        }
    }
    assert_eq!(span_lines, THREADS * ITERS, "every span event exported");
}
