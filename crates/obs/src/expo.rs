//! Prometheus text-format exposition of a [`MetricsSnapshot`].
//!
//! [`prometheus_text`] renders everything a snapshot carries — counters,
//! gauges, cumulative histograms, span aggregates, and the live
//! 1s/10s/60s window summaries — in the Prometheus text exposition
//! format (version 0.0.4). Metric names are prefixed `clockmark_` and
//! sanitised (dots become underscores), so `serve.request_seconds`
//! exposes as `clockmark_serve_request_seconds`:
//!
//! ```text
//! # TYPE clockmark_serve_accept_total counter
//! clockmark_serve_accept_total 42
//! # TYPE clockmark_serve_request_seconds summary
//! clockmark_serve_request_seconds{quantile="0.5"} 0.0012
//! clockmark_serve_request_seconds_sum 0.9
//! clockmark_serve_request_seconds_count 42
//! # TYPE clockmark_hist_window gauge
//! clockmark_serve_request_seconds_window{window="1s",quantile="0.95"} 0.0031
//! ```
//!
//! The serve `Metrics` RPC returns exactly this text; `clockmark client
//! watch` parses it back for the live dashboard.

use crate::metrics::MetricsSnapshot;
use crate::window::WindowSummary;

/// The prefix every exposed metric name carries.
pub const METRIC_PREFIX: &str = "clockmark_";

/// Maps an internal metric name (`serve.request_seconds`) to a valid
/// Prometheus metric name (`clockmark_serve_request_seconds`).
///
/// Characters outside `[a-zA-Z0-9_:]` become `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(METRIC_PREFIX.len() + name.len());
    out.push_str(METRIC_PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format (backslash, quote
/// and newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders an f64 sample value; Prometheus accepts `NaN`/`+Inf`/`-Inf`.
fn sample_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

fn window_family(out: &mut String, base: &str, windows: &[(String, Vec<WindowSummary>)]) {
    if windows.is_empty() {
        return;
    }
    // Quantile gauges per (name, window) — only for real histograms
    // (rate-only families have count but no distribution).
    let has_values = windows
        .iter()
        .any(|(_, ws)| ws.iter().any(|w| w.count > 0 && w.max >= w.min));
    if has_values {
        out.push_str(&format!("# TYPE {base}_window gauge\n"));
        for (name, ws) in windows {
            let metric = metric_name(name);
            for w in ws {
                for (q, v) in [("0.5", w.p50), ("0.95", w.p95), ("0.99", w.p99)] {
                    out.push_str(&format!(
                        "{metric}_window{{window=\"{}\",quantile=\"{q}\"}} {}\n",
                        w.label(),
                        sample_value(v)
                    ));
                }
            }
        }
    }
    out.push_str(&format!("# TYPE {base}_window_count gauge\n"));
    for (name, ws) in windows {
        let metric = metric_name(name);
        for w in ws {
            out.push_str(&format!(
                "{metric}_window_count{{window=\"{}\"}} {}\n",
                w.label(),
                w.count
            ));
        }
    }
    out.push_str(&format!("# TYPE {base}_window_rate gauge\n"));
    for (name, ws) in windows {
        let metric = metric_name(name);
        for w in ws {
            out.push_str(&format!(
                "{metric}_window_rate{{window=\"{}\"}} {}\n",
                w.label(),
                sample_value(w.rate_per_sec)
            ));
        }
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let metric = metric_name(name);
        out.push_str(&format!(
            "# TYPE {metric}_total counter\n{metric}_total {value}\n"
        ));
    }
    for (name, value) in &snapshot.gauges {
        let metric = metric_name(name);
        out.push_str(&format!(
            "# TYPE {metric} gauge\n{metric} {}\n",
            sample_value(*value)
        ));
    }
    for (name, h) in &snapshot.histograms {
        let metric = metric_name(name);
        out.push_str(&format!("# TYPE {metric} summary\n"));
        for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
            out.push_str(&format!(
                "{metric}{{quantile=\"{q}\"}} {}\n",
                sample_value(v)
            ));
        }
        out.push_str(&format!(
            "{metric}_sum {}\n{metric}_count {}\n",
            sample_value(h.sum),
            h.count
        ));
    }
    if !snapshot.spans.is_empty() {
        out.push_str("# TYPE clockmark_span_seconds_count gauge\n");
        for (name, s) in &snapshot.spans {
            out.push_str(&format!(
                "clockmark_span_seconds_count{{span=\"{}\"}} {}\n",
                escape_label(name),
                s.count
            ));
        }
        out.push_str("# TYPE clockmark_span_seconds_sum gauge\n");
        for (name, s) in &snapshot.spans {
            out.push_str(&format!(
                "clockmark_span_seconds_sum{{span=\"{}\"}} {}\n",
                escape_label(name),
                sample_value(s.total_ns as f64 / 1e9)
            ));
        }
        out.push_str("# TYPE clockmark_span_seconds_max gauge\n");
        for (name, s) in &snapshot.spans {
            out.push_str(&format!(
                "clockmark_span_seconds_max{{span=\"{}\"}} {}\n",
                escape_label(name),
                sample_value(s.max_ns as f64 / 1e9)
            ));
        }
    }
    window_family(&mut out, "clockmark_hist", &snapshot.windows);
    window_family(&mut out, "clockmark_counter", &snapshot.rates);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut r = Registry::new();
        r.counter_add("serve.accept", 42);
        r.gauge_set("campaign.eta_seconds", 12.5);
        r.observe("serve.request_seconds", 0.002);
        r.observe("serve.request_seconds", 0.004);
        r.span_complete("serve.detect", 1_500_000);
        let mut snap = r.snapshot();
        let mut h = crate::window::WindowedHistogram::new();
        h.record(0, 0.002);
        h.record(1, 0.004);
        snap.windows = vec![("serve.request_seconds".to_owned(), h.snapshot(2))];
        let mut rc = crate::window::RateCounter::new();
        rc.add(0, 42);
        snap.rates = vec![("serve.accept".to_owned(), rc.snapshot(1))];
        snap
    }

    #[test]
    fn renders_all_metric_kinds_with_sanitised_names() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE clockmark_serve_accept_total counter\n"));
        assert!(text.contains("clockmark_serve_accept_total 42\n"));
        assert!(text.contains("clockmark_campaign_eta_seconds 12.5\n"));
        assert!(text.contains("clockmark_serve_request_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("clockmark_serve_request_seconds_count 2\n"));
        assert!(text.contains("clockmark_span_seconds_sum{span=\"serve.detect\"} 0.0015\n"));
        assert!(text.contains("window=\"1s\",quantile=\"0.95\""));
        assert!(text.contains("clockmark_serve_accept_window_rate{window=\"1s\"} 42\n"));
        // No raw dots survive in metric names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name_part = line.split(['{', ' ']).next().unwrap_or("");
            assert!(!name_part.contains('.'), "unsanitised name in {line:?}");
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let mut snap = MetricsSnapshot::default();
        snap.spans.push((
            "odd\"name\\with\nnasties".to_owned(),
            crate::metrics::SpanStat {
                count: 1,
                total_ns: 10,
                max_ns: 10,
            },
        ));
        let text = prometheus_text(&snap);
        assert!(text.contains("span=\"odd\\\"name\\\\with\\nnasties\""));
    }

    #[test]
    fn non_finite_values_use_prometheus_spellings() {
        assert_eq!(sample_value(f64::NAN), "NaN");
        assert_eq!(sample_value(f64::INFINITY), "+Inf");
        assert_eq!(sample_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(sample_value(0.25), "0.25");
    }

    #[test]
    fn empty_snapshot_renders_empty_text() {
        assert_eq!(prometheus_text(&MetricsSnapshot::default()), "");
    }
}
