//! Structured tracing, metrics and profiling for the clockmark
//! sim → measure → CPA pipeline.
//!
//! The crate is std-only (like the rest of the workspace) and built
//! around three pieces:
//!
//! - **Spans** — RAII wall-clock timers with per-thread nesting and
//!   typed fields ([`span()`], [`Span::field`]).
//! - **Metrics** — monotonic counters, last-value gauges, and
//!   raw-sample histograms with exact percentiles ([`counter_add`],
//!   [`gauge_set`], [`observe`]), each also folded into live
//!   1s/10s/60s sliding windows ([`window`]) snapshottable at any time
//!   and exposable as Prometheus text ([`expo`]) or collapsed-stack
//!   span profiles ([`agg`]).
//! - **A leveled stderr logger** — [`error!`] … [`trace!`] macros
//!   controlled by `CLOCKMARK_LOG` (default `warn`).
//!
//! Spans and metrics flow through a process-global [`Recorder`] to
//! pluggable [`Exporter`]s. The recorder is configured from the
//! environment on first use:
//!
//! - `CLOCKMARK_METRICS=<path>` — write a JSON-lines artifact to
//!   `<path>` (one object per span plus a final snapshot; see
//!   [`export`] for the schema);
//! - `CLOCKMARK_LOG=debug` (or `trace`) — echo spans and the final
//!   snapshot table to stderr.
//!
//! With neither set there is no recorder and every instrumentation
//! site collapses to one relaxed atomic load and a branch — the hot
//! paths (cycle simulation, rotational CPA) are guaranteed not to pay
//! for observability they did not ask for.
//!
//! ```
//! clockmark_obs::init_from_env();
//! {
//!     let _span = clockmark_obs::span("demo.stage").field("items", 3u64);
//!     clockmark_obs::counter_add("demo.items", 3);
//!     clockmark_obs::observe("demo.seconds", 0.25);
//! }
//! clockmark_obs::gauge_set("demo.peak", 0.0153);
//! clockmark_obs::flush();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod expo;
pub mod export;
pub mod json;
mod level;
pub mod metrics;
pub mod recorder;
pub mod span;
pub mod window;

pub use agg::{PathAgg, SelfTime};
pub use expo::{metric_name, prometheus_text};
pub use export::{Exporter, JsonLinesExporter, SharedBuffer, TextExporter};
pub use level::{log, log_enabled, log_level, set_log_level, Level};
pub use metrics::{Histogram, HistogramSummary, MetricsSnapshot, Registry, SpanStat};
pub use recorder::Recorder;
pub use span::{FieldValue, Span, SpanEvent};
pub use window::{RateCounter, WindowStore, WindowSummary, WindowedHistogram};

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// 0 = uninitialised, 1 = no recorder, 2 = recorder installed.
static STATE: AtomicU8 = AtomicU8::new(0);
static GLOBAL: OnceLock<Option<Arc<Recorder>>> = OnceLock::new();

thread_local! {
    static SUPPRESSED: Cell<bool> = const { Cell::new(false) };
}

fn init_global() -> u8 {
    let installed = GLOBAL.get_or_init(|| Recorder::from_env().map(Arc::new));
    let state = if installed.is_some() { 2 } else { 1 };
    STATE.store(state, Ordering::Relaxed);
    state
}

fn state() -> u8 {
    match STATE.load(Ordering::Relaxed) {
        0 => init_global(),
        set => set,
    }
}

/// The recorder an instrumentation site should report to right now:
/// `None` when disabled or suppressed on this thread.
fn active() -> Option<&'static Arc<Recorder>> {
    if state() != 2 || SUPPRESSED.with(Cell::get) {
        return None;
    }
    GLOBAL.get().and_then(Option::as_ref)
}

/// Resolves the global recorder from `CLOCKMARK_METRICS` /
/// `CLOCKMARK_LOG` now instead of lazily on first use. Idempotent.
pub fn init_from_env() {
    let _ = state();
}

/// Installs `recorder` as the process-global recorder.
///
/// Returns `false` (dropping `recorder`) if a global was already
/// resolved — either by a prior `install` or by environment auto-init.
/// Call early in `main`, before any instrumented code runs.
pub fn install(recorder: Recorder) -> bool {
    let mut won = false;
    let _ = GLOBAL.get_or_init(|| {
        won = true;
        Some(Arc::new(recorder))
    });
    if won {
        STATE.store(2, Ordering::Relaxed);
    }
    won
}

/// Whether instrumentation is currently recording on this thread.
pub fn enabled() -> bool {
    active().is_some()
}

/// The process-global recorder, if one is installed. Unlike the
/// instrumentation free functions this ignores per-thread suppression,
/// so flush/snapshot code always reaches the real recorder.
pub fn recorder() -> Option<Arc<Recorder>> {
    if state() != 2 {
        return None;
    }
    GLOBAL.get().and_then(Option::as_ref).cloned()
}

/// Opens a span on the global recorder; inert when disabled.
pub fn span(name: &'static str) -> Span {
    match active() {
        Some(recorder) => recorder.span(name),
        None => Span::disabled(),
    }
}

/// Adds `delta` to a global counter; a no-op when disabled.
pub fn counter_add(name: &str, delta: u64) {
    if let Some(recorder) = active() {
        recorder.counter_add(name, delta);
    }
}

/// Sets a global gauge; a no-op when disabled.
pub fn gauge_set(name: &str, value: f64) {
    if let Some(recorder) = active() {
        recorder.gauge_set(name, value);
    }
}

/// Records a global histogram sample; a no-op when disabled.
pub fn observe(name: &str, value: f64) {
    if let Some(recorder) = active() {
        recorder.observe(name, value);
    }
}

/// Snapshot of the global registry, or `None` when disabled.
pub fn snapshot() -> Option<MetricsSnapshot> {
    recorder().map(|r| r.snapshot())
}

/// The global per-span-path self-time rollup in collapsed-stack text
/// format, or `None` when disabled.
pub fn collapsed_spans() -> Option<String> {
    recorder().map(|r| r.collapsed_spans())
}

/// Pushes the global snapshot to all exporters and flushes them.
/// Call once at the end of `main`; a no-op when disabled.
pub fn flush() {
    if let Some(recorder) = recorder() {
        recorder.flush();
    }
}

/// Runs `f` with instrumentation suppressed on the current thread,
/// even when a global recorder is installed.
///
/// This exists for tests that need a disabled-path baseline (e.g. the
/// bit-identity property test) after a global recorder can no longer
/// be uninstalled. Threads spawned inside `f` are *not* suppressed.
pub fn suppressed<R>(f: impl FnOnce() -> R) -> R {
    SUPPRESSED.with(|cell| {
        let before = cell.replace(true);
        let result = f();
        cell.set(before);
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    // Global state (GLOBAL / STATE) is process-wide and tests run in one
    // process, so everything touching it lives in this one test; the
    // assertions hold whichever of auto-init or install resolves first.
    #[test]
    fn global_api_respects_suppression_and_install_is_one_shot() {
        init_from_env();

        // Under suppression the disabled path is forced regardless of
        // whether a recorder is installed.
        suppressed(|| {
            assert!(!enabled());
            let span = span("suppressed.scope");
            assert!(!span.is_recording());
            counter_add("suppressed.counter", 1);
            gauge_set("suppressed.gauge", 1.0);
            observe("suppressed.hist", 1.0);
        });
        if let Some(snap) = snapshot() {
            assert_eq!(snap.counter("suppressed.counter"), None);
        }

        // Suppression restores the previous state, including when nested.
        suppressed(|| {
            suppressed(|| assert!(!enabled()));
            assert!(!enabled());
        });

        // The global slot is resolved exactly once: with auto-init already
        // done (no CLOCKMARK_* in the test env), install must report false
        // rather than silently replacing the recorder.
        let first = install(Recorder::new(vec![]));
        let second = install(Recorder::new(vec![]));
        assert!(!second, "second install must lose");
        if first {
            assert!(enabled());
        }

        // The free functions never panic in either resolved state.
        let _span = span("global.scope").field("k", 1u64);
        counter_add("global.counter", 1);
        flush();
    }

    #[test]
    fn disabled_sites_are_cheap() {
        // A loose sanity bound (the precise ≤2% criterion lives in the
        // bench crate): one million suppressed span+counter sites must be
        // nowhere near a real workload's runtime.
        let start = Instant::now();
        suppressed(|| {
            for i in 0..1_000_000u64 {
                let span = span("noop");
                assert!(!span.is_recording());
                counter_add("noop", i);
            }
        });
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "disabled instrumentation took {:?} for 1e6 sites",
            start.elapsed()
        );
    }
}
