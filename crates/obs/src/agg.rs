//! Per-span-path aggregation: self-time rollups and collapsed-stack
//! (flamegraph) export.
//!
//! Spans already carry their nesting as a slash-joined `path`
//! (`"serve.session/serve.detect/cpa.spread_spectrum"`). Folding every
//! completed span into a per-path total and subtracting the totals of
//! its direct children yields *self time* — the wall clock actually
//! spent in each frame, not in its callees — which is exactly what a
//! flamegraph wants. [`PathAgg::collapsed`] renders the rollup in the
//! standard collapsed-stack text format (`a;b;c <nanoseconds>`), one
//! line per path, consumable by any flamegraph tool.

use std::collections::BTreeMap;

/// Cumulative timing for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStat {
    /// Completed spans with this exact path.
    pub count: u64,
    /// Total wall-clock nanoseconds across them (includes callees).
    pub total_ns: u128,
}

/// One rolled-up row: a path with its total and self time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTime {
    /// Slash-joined span path.
    pub path: String,
    /// Completed spans with this path.
    pub count: u64,
    /// Total wall-clock nanoseconds (includes time in child spans).
    pub total_ns: u128,
    /// Nanoseconds not accounted for by direct children.
    pub self_ns: u128,
}

/// Accumulates completed spans by path for self-time analysis.
#[derive(Debug, Clone, Default)]
pub struct PathAgg {
    paths: BTreeMap<String, PathStat>,
}

impl PathAgg {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed span in.
    pub fn record(&mut self, path: &str, duration_ns: u128) {
        let stat = self.paths.entry(path.to_owned()).or_default();
        stat.count += 1;
        stat.total_ns += duration_ns;
    }

    /// True when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The rollup: every path with its total and self time, sorted by
    /// path. Self time saturates at zero when clock skew makes children
    /// appear longer than their parent.
    pub fn self_times(&self) -> Vec<SelfTime> {
        let mut children: BTreeMap<&str, u128> = BTreeMap::new();
        for (path, stat) in &self.paths {
            if let Some((parent, _)) = path.rsplit_once('/') {
                *children.entry(parent).or_default() += stat.total_ns;
            }
        }
        self.paths
            .iter()
            .map(|(path, stat)| SelfTime {
                path: path.clone(),
                count: stat.count,
                total_ns: stat.total_ns,
                self_ns: stat
                    .total_ns
                    .saturating_sub(children.get(path.as_str()).copied().unwrap_or(0)),
            })
            .collect()
    }

    /// The rollup in collapsed-stack text format: one line per path,
    /// frames separated by `;`, value = self time in nanoseconds.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for row in self.self_times() {
            out.push_str(&row.path.replace('/', ";"));
            out.push(' ');
            out.push_str(&row.self_ns.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let mut agg = PathAgg::new();
        agg.record("run", 100);
        agg.record("run/detect", 60);
        agg.record("run/detect/fold", 35);
        agg.record("run/flush", 10);
        let rows = agg.self_times();
        let get = |p: &str| rows.iter().find(|r| r.path == p).expect("row");
        // run self = 100 - (60 + 10); the grandchild is not subtracted
        // from run (it is already inside detect's 60).
        assert_eq!(get("run").self_ns, 30);
        assert_eq!(get("run/detect").self_ns, 25);
        assert_eq!(get("run/detect/fold").self_ns, 35);
        assert_eq!(get("run/flush").self_ns, 10);
        let total_self: u128 = rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(total_self, 100, "self times partition the root total");
    }

    #[test]
    fn skewed_children_saturate_instead_of_underflowing() {
        let mut agg = PathAgg::new();
        agg.record("a", 10);
        agg.record("a/b", 15);
        assert_eq!(agg.self_times()[0].self_ns, 0);
    }

    #[test]
    fn repeated_paths_accumulate() {
        let mut agg = PathAgg::new();
        agg.record("a", 5);
        agg.record("a", 7);
        let rows = agg.self_times();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_ns, 12);
    }

    #[test]
    fn collapsed_format_uses_semicolons_and_self_time() {
        let mut agg = PathAgg::new();
        agg.record("run", 100);
        agg.record("run/detect", 60);
        let text = agg.collapsed();
        assert_eq!(text, "run 40\nrun;detect 60\n");
    }

    #[test]
    fn empty_aggregate_renders_nothing() {
        assert!(PathAgg::new().is_empty());
        assert_eq!(PathAgg::new().collapsed(), "");
    }
}
