//! Sliding-window aggregation: fixed-bucket ring histograms and rate
//! counters that can be snapshotted live.
//!
//! The flush-time [`crate::metrics::Registry`] keeps exact cumulative
//! aggregates for the whole process lifetime; this module answers the
//! operational questions — "what is the p95 *right now*", "how many
//! requests per second over the last minute" — without waiting for a
//! flush. Every [`crate::observe`] sample and [`crate::counter_add`]
//! delta is also folded into a ring of fixed time buckets per window
//! (1 s, 10 s and 60 s by default); snapshotting merges the live
//! buckets, so old samples age out as the ring advances.
//!
//! Value resolution is logarithmic (eight buckets per decade, covering
//! `1e-9 ..= 1e5`), so windowed percentiles are approximate to roughly
//! ±15% — plenty for dashboards, while the cumulative registry keeps
//! the exact numbers. Time is passed in explicitly as nanoseconds since
//! an arbitrary epoch (the recorder uses its own start instant), which
//! keeps the data structures deterministic and directly testable.

use std::collections::BTreeMap;

/// The default window set: (window seconds, time buckets per ring).
///
/// Bucket widths are `window / buckets`: 125 ms for the 1 s window,
/// 1 s for the 10 s window, 5 s for the 60 s window.
pub const DEFAULT_WINDOWS: [(u64, usize); 3] = [(1, 8), (10, 10), (60, 12)];

/// Logarithmic value buckets: 8 per decade over 1e-9 ..= 1e5.
const VALUE_BUCKETS: usize = 112;
const DECADE_OFFSET: f64 = 9.0;
const BUCKETS_PER_DECADE: f64 = 8.0;

fn value_bucket(value: f64) -> usize {
    if value <= 1e-9 {
        return 0;
    }
    let idx = ((value.log10() + DECADE_OFFSET) * BUCKETS_PER_DECADE).floor();
    (idx as usize).min(VALUE_BUCKETS - 1)
}

fn bucket_midpoint(idx: usize) -> f64 {
    10f64.powf((idx as f64 + 0.5) / BUCKETS_PER_DECADE - DECADE_OFFSET)
}

/// One windowed view of a metric: sample count, rate, and approximate
/// percentiles over the trailing window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowSummary {
    /// Window length in seconds (1, 10 or 60 by default).
    pub window_secs: u64,
    /// Samples (or counter increments) that fell inside the window.
    pub count: u64,
    /// `count / window_secs` — events per second.
    pub rate_per_sec: f64,
    /// Arithmetic mean of the windowed samples (0 for rate counters).
    pub mean: f64,
    /// Smallest windowed sample.
    pub min: f64,
    /// Largest windowed sample.
    pub max: f64,
    /// Approximate windowed median.
    pub p50: f64,
    /// Approximate windowed 95th percentile.
    pub p95: f64,
    /// Approximate windowed 99th percentile.
    pub p99: f64,
}

impl WindowSummary {
    /// Renders the window length as the conventional label (`"10s"`).
    pub fn label(&self) -> String {
        format!("{}s", self.window_secs)
    }
}

/// One time bucket of a histogram ring.
#[derive(Debug, Clone)]
struct TimeBucket {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    counts: Vec<u32>,
}

impl TimeBucket {
    fn empty() -> Self {
        TimeBucket {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            counts: vec![0; VALUE_BUCKETS],
        }
    }

    fn clear(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.counts.fill(0);
    }

    fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.counts[value_bucket(value)] += 1;
    }
}

/// A ring of fixed time buckets covering one trailing window.
#[derive(Debug, Clone)]
struct Ring {
    window_secs: u64,
    bucket_ns: u64,
    /// Absolute bucket index (now_ns / bucket_ns) the ring was last
    /// advanced to; buckets older than `len` slots are stale.
    last_abs: u64,
    buckets: Vec<TimeBucket>,
}

impl Ring {
    fn new(window_secs: u64, bucket_count: usize) -> Self {
        let bucket_ns = (window_secs * 1_000_000_000 / bucket_count as u64).max(1);
        Ring {
            window_secs,
            bucket_ns,
            last_abs: 0,
            buckets: vec![TimeBucket::empty(); bucket_count],
        }
    }

    /// Clears buckets the clock has moved past since the last call.
    fn advance(&mut self, now_ns: u64) {
        let abs = now_ns / self.bucket_ns;
        if abs <= self.last_abs {
            return;
        }
        let steps = (abs - self.last_abs).min(self.buckets.len() as u64);
        for i in 1..=steps {
            let slot = ((self.last_abs + i) % self.buckets.len() as u64) as usize;
            self.buckets[slot].clear();
        }
        self.last_abs = abs;
    }

    fn record(&mut self, now_ns: u64, value: f64) {
        self.advance(now_ns);
        let slot = (self.last_abs % self.buckets.len() as u64) as usize;
        self.buckets[slot].record(value);
    }

    fn summary(&mut self, now_ns: u64) -> WindowSummary {
        self.advance(now_ns);
        let mut merged = [0u64; VALUE_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for bucket in &self.buckets {
            if bucket.count == 0 {
                continue;
            }
            count += bucket.count;
            sum += bucket.sum;
            min = min.min(bucket.min);
            max = max.max(bucket.max);
            for (m, c) in merged.iter_mut().zip(&bucket.counts) {
                *m += u64::from(*c);
            }
        }
        if count == 0 {
            return WindowSummary {
                window_secs: self.window_secs,
                ..WindowSummary::default()
            };
        }
        let at = |p: f64| {
            let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (idx, c) in merged.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_midpoint(idx).clamp(min, max);
                }
            }
            max
        };
        WindowSummary {
            window_secs: self.window_secs,
            count,
            rate_per_sec: count as f64 / self.window_secs as f64,
            mean: sum / count as f64,
            min,
            max,
            p50: at(50.0),
            p95: at(95.0),
            p99: at(99.0),
        }
    }
}

/// Ring histograms for one metric, one ring per configured window.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    rings: Vec<Ring>,
}

impl WindowedHistogram {
    /// A histogram over [`DEFAULT_WINDOWS`].
    pub fn new() -> Self {
        Self::with_windows(&DEFAULT_WINDOWS)
    }

    /// A histogram over an explicit window set.
    pub fn with_windows(windows: &[(u64, usize)]) -> Self {
        WindowedHistogram {
            rings: windows.iter().map(|&(w, b)| Ring::new(w, b)).collect(),
        }
    }

    /// Records a sample at `now_ns` into every ring. Non-finite values
    /// are dropped, matching [`crate::metrics::Histogram::record`].
    pub fn record(&mut self, now_ns: u64, value: f64) {
        if !value.is_finite() {
            return;
        }
        for ring in &mut self.rings {
            ring.record(now_ns, value);
        }
    }

    /// The live per-window summaries as of `now_ns`.
    pub fn snapshot(&mut self, now_ns: u64) -> Vec<WindowSummary> {
        self.rings.iter_mut().map(|r| r.summary(now_ns)).collect()
    }
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One time bucket of a rate-counter ring (increment total only).
#[derive(Debug, Clone, Copy, Default)]
struct CountBucket {
    count: u64,
}

/// A ring of increment counts covering one trailing window.
#[derive(Debug, Clone)]
struct CountRing {
    window_secs: u64,
    bucket_ns: u64,
    last_abs: u64,
    buckets: Vec<CountBucket>,
}

impl CountRing {
    fn new(window_secs: u64, bucket_count: usize) -> Self {
        let bucket_ns = (window_secs * 1_000_000_000 / bucket_count as u64).max(1);
        CountRing {
            window_secs,
            bucket_ns,
            last_abs: 0,
            buckets: vec![CountBucket::default(); bucket_count],
        }
    }

    fn advance(&mut self, now_ns: u64) {
        let abs = now_ns / self.bucket_ns;
        if abs <= self.last_abs {
            return;
        }
        let steps = (abs - self.last_abs).min(self.buckets.len() as u64);
        for i in 1..=steps {
            let slot = ((self.last_abs + i) % self.buckets.len() as u64) as usize;
            self.buckets[slot].count = 0;
        }
        self.last_abs = abs;
    }

    fn add(&mut self, now_ns: u64, delta: u64) {
        self.advance(now_ns);
        let slot = (self.last_abs % self.buckets.len() as u64) as usize;
        self.buckets[slot].count += delta;
    }

    fn summary(&mut self, now_ns: u64) -> WindowSummary {
        self.advance(now_ns);
        let count: u64 = self.buckets.iter().map(|b| b.count).sum();
        WindowSummary {
            window_secs: self.window_secs,
            count,
            rate_per_sec: count as f64 / self.window_secs as f64,
            ..WindowSummary::default()
        }
    }
}

/// Windowed increment rates for one counter, one ring per window.
#[derive(Debug, Clone)]
pub struct RateCounter {
    rings: Vec<CountRing>,
}

impl RateCounter {
    /// A rate counter over [`DEFAULT_WINDOWS`].
    pub fn new() -> Self {
        Self::with_windows(&DEFAULT_WINDOWS)
    }

    /// A rate counter over an explicit window set.
    pub fn with_windows(windows: &[(u64, usize)]) -> Self {
        RateCounter {
            rings: windows.iter().map(|&(w, b)| CountRing::new(w, b)).collect(),
        }
    }

    /// Adds `delta` increments at `now_ns` into every ring.
    pub fn add(&mut self, now_ns: u64, delta: u64) {
        for ring in &mut self.rings {
            ring.add(now_ns, delta);
        }
    }

    /// The live per-window counts and rates as of `now_ns`. Percentile
    /// fields are zero — rate counters carry no value distribution.
    pub fn snapshot(&mut self, now_ns: u64) -> Vec<WindowSummary> {
        self.rings.iter_mut().map(|r| r.summary(now_ns)).collect()
    }
}

impl Default for RateCounter {
    fn default() -> Self {
        Self::new()
    }
}

/// Every windowed metric the recorder tracks, keyed by name.
///
/// Names are registered implicitly: the first `observe` creates a
/// [`WindowedHistogram`], the first `add` creates a [`RateCounter`].
#[derive(Debug, Clone, Default)]
pub struct WindowStore {
    histograms: BTreeMap<String, WindowedHistogram>,
    rates: BTreeMap<String, RateCounter>,
}

impl WindowStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one histogram sample in at `now_ns`.
    pub fn observe(&mut self, now_ns: u64, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(now_ns, value);
    }

    /// Folds `delta` counter increments in at `now_ns`.
    pub fn add(&mut self, now_ns: u64, name: &str, delta: u64) {
        self.rates
            .entry(name.to_owned())
            .or_default()
            .add(now_ns, delta);
    }

    /// Live per-window summaries of every windowed histogram.
    pub fn histogram_windows(&mut self, now_ns: u64) -> Vec<(String, Vec<WindowSummary>)> {
        self.histograms
            .iter_mut()
            .map(|(name, h)| (name.clone(), h.snapshot(now_ns)))
            .collect()
    }

    /// Live per-window counts/rates of every windowed counter.
    pub fn rate_windows(&mut self, now_ns: u64) -> Vec<(String, Vec<WindowSummary>)> {
        self.rates
            .iter_mut()
            .map(|(name, r)| (name.clone(), r.snapshot(now_ns)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn value_buckets_are_monotonic_and_cover_the_range() {
        let mut last = 0;
        for exp in -10..=6 {
            let v = 10f64.powi(exp);
            let idx = value_bucket(v);
            assert!(idx >= last, "bucket index must not decrease");
            last = idx;
        }
        assert_eq!(value_bucket(0.0), 0);
        assert_eq!(value_bucket(-5.0), 0);
        assert_eq!(value_bucket(f64::MAX), VALUE_BUCKETS - 1);
        // The representative value of a sample's bucket is within the
        // bucket's ~33% multiplicative width of the sample itself.
        for &v in &[1e-6, 3.7e-3, 0.25, 42.0] {
            let mid = bucket_midpoint(value_bucket(v));
            assert!(
                (mid / v).log10().abs() < 1.0 / BUCKETS_PER_DECADE,
                "midpoint {mid} too far from {v}"
            );
        }
    }

    #[test]
    fn windowed_percentiles_track_the_distribution() {
        let mut h = WindowedHistogram::new();
        // 100 samples spread across 0.5 s: 1 ms .. 100 ms.
        for i in 1..=100u64 {
            h.record(i * 5_000_000, i as f64 * 1e-3);
        }
        let windows = h.snapshot(500_000_000);
        assert_eq!(windows.len(), DEFAULT_WINDOWS.len());
        let w1 = &windows[0];
        assert_eq!(w1.window_secs, 1);
        assert_eq!(w1.count, 100);
        assert!((w1.rate_per_sec - 100.0).abs() < 1e-9);
        // Log-bucket resolution is ~±15%.
        assert!((w1.p50 / 0.050 - 1.0).abs() < 0.2, "p50 {}", w1.p50);
        assert!((w1.p95 / 0.095 - 1.0).abs() < 0.2, "p95 {}", w1.p95);
        assert!(w1.p50 <= w1.p95 && w1.p95 <= w1.p99);
        assert!(w1.min <= w1.p50 && w1.p99 <= w1.max);
        assert_eq!(w1.min, 1e-3);
        assert_eq!(w1.max, 0.1);
    }

    #[test]
    fn samples_age_out_of_the_window() {
        let mut h = WindowedHistogram::new();
        h.record(0, 1.0);
        // Still visible within the 1 s window...
        assert_eq!(h.snapshot(900_000_000)[0].count, 1);
        // ...gone 2 s later from the 1 s window, still in 10 s and 60 s.
        let windows = h.snapshot(2 * SEC);
        assert_eq!(windows[0].count, 0);
        assert_eq!(windows[0].rate_per_sec, 0.0);
        assert_eq!(windows[1].count, 1);
        assert_eq!(windows[2].count, 1);
        // After 70 s everything has aged out everywhere.
        let windows = h.snapshot(70 * SEC);
        assert!(windows.iter().all(|w| w.count == 0));
    }

    #[test]
    fn ring_survives_long_idle_gaps() {
        let mut h = WindowedHistogram::new();
        h.record(0, 1.0);
        // A gap far longer than any ring (exercises the step clamp).
        h.record(3600 * SEC, 2.0);
        let windows = h.snapshot(3600 * SEC + 1);
        assert_eq!(windows[0].count, 1);
        assert_eq!(windows[0].max, 2.0);
    }

    #[test]
    fn rate_counter_windows_count_and_age() {
        let mut r = RateCounter::new();
        for i in 0..10u64 {
            r.add(i * SEC / 10, 2);
        }
        let windows = r.snapshot(SEC - 1);
        assert_eq!(windows[0].count, 20);
        assert!((windows[0].rate_per_sec - 20.0).abs() < 1e-9);
        assert_eq!(windows[1].count, 20);
        assert!((windows[1].rate_per_sec - 2.0).abs() < 1e-9);
        // 15 s later the 1 s and 10 s windows are empty, 60 s remembers.
        let windows = r.snapshot(15 * SEC);
        assert_eq!(windows[0].count, 0);
        assert_eq!(windows[1].count, 0);
        assert_eq!(windows[2].count, 20);
    }

    #[test]
    fn store_registers_names_implicitly_and_sorts_them() {
        let mut store = WindowStore::new();
        store.observe(0, "b.latency", 0.5);
        store.observe(0, "a.latency", 0.25);
        store.add(0, "requests", 3);
        let hists = store.histogram_windows(1);
        assert_eq!(hists.len(), 2);
        assert_eq!(hists[0].0, "a.latency");
        assert_eq!(hists[1].0, "b.latency");
        let rates = store.rate_windows(1);
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, "requests");
        assert_eq!(rates[0].1[0].count, 3);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut h = WindowedHistogram::new();
        h.record(0, f64::NAN);
        h.record(0, f64::INFINITY);
        assert_eq!(h.snapshot(1)[0].count, 0);
    }
}
