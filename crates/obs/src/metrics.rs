//! Typed metrics: monotonic counters, last-value gauges, and histograms
//! with exact percentiles.
//!
//! The registry is deliberately simple — metric cardinality in this
//! workspace is small (tens of names, thousands of samples), so
//! histograms keep their raw samples and percentiles are computed exactly
//! at snapshot time instead of approximated through buckets.

use crate::window::WindowSummary;
use std::collections::BTreeMap;

/// A histogram of `f64` samples with exact percentile queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Non-finite values are dropped.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().reduce(f64::min).unwrap_or(0.0)
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().reduce(f64::max).unwrap_or(0.0)
    }

    /// The `p`-th percentile (0–100) by the nearest-rank method, or 0 when
    /// empty. `percentile(50.0)` of `1..=100` is exactly 50.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.max(1) - 1]
    }

    /// Condenses the histogram into its summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let at = |p: f64| {
            if sorted.is_empty() {
                0.0
            } else {
                let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
                sorted[rank.max(1) - 1]
            }
        };
        HistogramSummary {
            count: sorted.len() as u64,
            sum: self.sum(),
            mean: self.mean(),
            min: sorted.first().copied().unwrap_or(0.0),
            max: sorted.last().copied().unwrap_or(0.0),
            p50: at(50.0),
            p90: at(90.0),
            p99: at(99.0),
        }
    }
}

/// The condensed form of a [`Histogram`] that exporters emit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Aggregate timing of all completed spans sharing a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Completed spans with this name.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub total_ns: u128,
    /// The slowest single span, in nanoseconds.
    pub max_ns: u128,
}

/// The mutable store behind a recorder.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    span_stats: BTreeMap<String, SpanStat>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a monotonic counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets a last-value gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Folds one completed span into the per-name aggregates.
    pub fn span_complete(&mut self, name: &str, duration_ns: u128) {
        let stat = self.span_stats.entry(name.to_owned()).or_default();
        stat.count += 1;
        stat.total_ns += duration_ns;
        stat.max_ns = stat.max_ns.max(duration_ns);
    }

    /// An immutable snapshot of everything recorded so far. The live
    /// window fields are empty — the [`crate::Recorder`] merges them in
    /// from its [`crate::window::WindowStore`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            spans: self
                .span_stats
                .iter()
                .map(|(k, s)| (k.clone(), *s))
                .collect(),
            windows: Vec::new(),
            rates: Vec::new(),
        }
    }
}

/// A point-in-time copy of the registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Per-span-name timing aggregates.
    pub spans: Vec<(String, SpanStat)>,
    /// Live sliding-window summaries per histogram name (1s/10s/60s).
    pub windows: Vec<(String, Vec<WindowSummary>)>,
    /// Live sliding-window counts/rates per counter name.
    pub rates: Vec<(String, Vec<WindowSummary>)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Looks up the live window summaries of a histogram by name.
    pub fn window(&self, name: &str) -> Option<&[WindowSummary]> {
        self.windows
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Looks up the live window rates of a counter by name.
    pub fn rate(&self, name: &str) -> Option<&[WindowSummary]> {
        self.rates
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles_are_exact() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.percentile(50.0), 50.0);
        assert_eq!(h.percentile(90.0), 90.0);
        assert_eq!(h.percentile(99.0), 99.0);
        assert_eq!(h.percentile(100.0), 100.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let values = [5.0, 1.0, 9.0, 3.0, 7.0];
        for &v in &values {
            a.record(v);
        }
        for &v in values.iter().rev() {
            b.record(v);
        }
        assert_eq!(a.percentile(50.0), b.percentile(50.0));
        assert_eq!(a.percentile(50.0), 5.0);
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 2.0);
    }

    #[test]
    fn registry_accumulates_and_snapshots() {
        let mut r = Registry::new();
        r.counter_add("sim.cycles", 300);
        r.counter_add("sim.cycles", 700);
        r.gauge_set("peak_rho", 0.015);
        r.gauge_set("peak_rho", 0.018);
        r.observe("chunk_seconds", 0.25);
        r.observe("chunk_seconds", 0.75);
        r.span_complete("cpa.rotate", 1_000);
        r.span_complete("cpa.rotate", 3_000);

        let snap = r.snapshot();
        assert_eq!(snap.counter("sim.cycles"), Some(1_000));
        assert_eq!(snap.gauge("peak_rho"), Some(0.018));
        let h = snap.histogram("chunk_seconds").expect("recorded");
        assert_eq!(h.count, 2);
        assert!((h.mean - 0.5).abs() < 1e-12);
        let (_, span) = &snap.spans[0];
        assert_eq!(span.count, 2);
        assert_eq!(span.total_ns, 4_000);
        assert_eq!(span.max_ns, 3_000);
    }
}
