//! Pluggable exporters: JSON-lines to a file, human text to stderr.
//!
//! Exporters receive every completed [`SpanEvent`] as it happens and the
//! full [`MetricsSnapshot`] on flush. The JSON-lines format is one object
//! per line:
//!
//! ```json
//! {"t":"span","name":"cpa.rotate","path":"bench.run/cpa.spread_spectrum/cpa.rotate","thread":"main","start_us":1200,"dur_ns":834000,"fields":{"worker":3,"start":1024,"end":1536}}
//! {"t":"counter","name":"sim.cycles","value":300000}
//! {"t":"gauge","name":"cpa.rotations_per_sec","value":1.2e6}
//! {"t":"hist","name":"cpa.chunk_seconds","count":8,"sum":0.21,"mean":0.026,"min":0.018,"max":0.034,"p50":0.025,"p90":0.033,"p99":0.034}
//! {"t":"span_stat","name":"cpa.rotate","count":8,"total_ns":210000000,"max_ns":34000000}
//! {"t":"win_hist","name":"serve.request_seconds","window":"10s","count":41,"rate_per_sec":4.1,"mean":0.002,"min":0.001,"max":0.004,"p50":0.002,"p95":0.0038,"p99":0.004}
//! {"t":"win_rate","name":"serve.accept","window":"1s","count":5,"rate_per_sec":5}
//! ```
//!
//! Every line parses with [`crate::json::parse`]; `clockmark-cli metrics`
//! validates and summarises such files.

use crate::json::{write_f64, write_str};
use crate::metrics::MetricsSnapshot;
use crate::span::{FieldValue, SpanEvent};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A destination for span events and metric snapshots.
pub trait Exporter: Send {
    /// Called once per completed span, in completion order.
    fn span(&mut self, event: &SpanEvent);
    /// Called on [`flush`](crate::flush) with the current snapshot.
    fn snapshot(&mut self, snapshot: &MetricsSnapshot);
    /// Flushes any buffered output.
    fn flush(&mut self);
}

/// Serialises one span event as a JSON object (no trailing newline).
pub fn span_to_json(event: &SpanEvent) -> String {
    let mut line = String::with_capacity(128);
    line.push_str("{\"t\":\"span\",\"name\":");
    write_str(&mut line, event.name);
    line.push_str(",\"path\":");
    write_str(&mut line, &event.path);
    line.push_str(",\"thread\":");
    write_str(&mut line, &event.thread);
    line.push_str(&format!(
        ",\"start_us\":{},\"dur_ns\":{}",
        event.start_us, event.duration_ns
    ));
    line.push_str(",\"fields\":{");
    for (i, (key, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        write_str(&mut line, key);
        line.push(':');
        match value {
            FieldValue::U64(v) => line.push_str(&v.to_string()),
            FieldValue::I64(v) => line.push_str(&v.to_string()),
            FieldValue::F64(v) => write_f64(&mut line, *v),
            FieldValue::Bool(v) => line.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(v) => write_str(&mut line, v),
        }
    }
    line.push_str("}}");
    line
}

/// Serialises a snapshot as JSON-lines (one metric per line).
pub fn snapshot_to_json_lines(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        out.push_str("{\"t\":\"counter\",\"name\":");
        write_str(&mut out, name);
        out.push_str(&format!(",\"value\":{value}}}\n"));
    }
    for (name, value) in &snapshot.gauges {
        out.push_str("{\"t\":\"gauge\",\"name\":");
        write_str(&mut out, name);
        out.push_str(",\"value\":");
        write_f64(&mut out, *value);
        out.push_str("}\n");
    }
    for (name, h) in &snapshot.histograms {
        out.push_str("{\"t\":\"hist\",\"name\":");
        write_str(&mut out, name);
        out.push_str(&format!(",\"count\":{}", h.count));
        for (key, value) in [
            ("sum", h.sum),
            ("mean", h.mean),
            ("min", h.min),
            ("max", h.max),
            ("p50", h.p50),
            ("p90", h.p90),
            ("p99", h.p99),
        ] {
            out.push_str(&format!(",\"{key}\":"));
            write_f64(&mut out, value);
        }
        out.push_str("}\n");
    }
    for (name, s) in &snapshot.spans {
        out.push_str("{\"t\":\"span_stat\",\"name\":");
        write_str(&mut out, name);
        out.push_str(&format!(
            ",\"count\":{},\"total_ns\":{},\"max_ns\":{}}}\n",
            s.count, s.total_ns, s.max_ns
        ));
    }
    for (name, windows) in &snapshot.windows {
        for w in windows {
            out.push_str("{\"t\":\"win_hist\",\"name\":");
            write_str(&mut out, name);
            out.push_str(&format!(
                ",\"window\":\"{}\",\"count\":{}",
                w.label(),
                w.count
            ));
            for (key, value) in [
                ("rate_per_sec", w.rate_per_sec),
                ("mean", w.mean),
                ("min", w.min),
                ("max", w.max),
                ("p50", w.p50),
                ("p95", w.p95),
                ("p99", w.p99),
            ] {
                out.push_str(&format!(",\"{key}\":"));
                write_f64(&mut out, value);
            }
            out.push_str("}\n");
        }
    }
    for (name, windows) in &snapshot.rates {
        for w in windows {
            out.push_str("{\"t\":\"win_rate\",\"name\":");
            write_str(&mut out, name);
            out.push_str(&format!(
                ",\"window\":\"{}\",\"count\":{},\"rate_per_sec\":",
                w.label(),
                w.count
            ));
            write_f64(&mut out, w.rate_per_sec);
            out.push_str("}\n");
        }
    }
    out
}

/// Writes JSON-lines to any [`Write`] sink (`CLOCKMARK_METRICS` opens a
/// file; tests use a [`SharedBuffer`]).
pub struct JsonLinesExporter<W: Write + Send> {
    sink: W,
}

impl<W: Write + Send> JsonLinesExporter<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        JsonLinesExporter { sink }
    }
}

impl<W: Write + Send> Exporter for JsonLinesExporter<W> {
    fn span(&mut self, event: &SpanEvent) {
        let _ = writeln!(self.sink, "{}", span_to_json(event));
    }

    fn snapshot(&mut self, snapshot: &MetricsSnapshot) {
        let _ = self
            .sink
            .write_all(snapshot_to_json_lines(snapshot).as_bytes());
    }

    fn flush(&mut self) {
        let _ = self.sink.flush();
    }
}

/// Renders a snapshot as an aligned human-readable table.
pub fn snapshot_to_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.spans.is_empty() {
        out.push_str("spans (aggregate):\n");
        for (name, s) in &snapshot.spans {
            out.push_str(&format!(
                "  {name:<32} count {:>6}  total {:>10.3?}  max {:>10.3?}\n",
                s.count,
                std::time::Duration::from_nanos(s.total_ns.min(u64::MAX as u128) as u64),
                std::time::Duration::from_nanos(s.max_ns.min(u64::MAX as u128) as u64),
            ));
        }
    }
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("  {name:<32} {value}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("  {name:<32} {value:.6}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms:\n");
        for (name, h) in &snapshot.histograms {
            out.push_str(&format!(
                "  {name:<32} n {:>6}  mean {:.3e}  p50 {:.3e}  p90 {:.3e}  p99 {:.3e}  max {:.3e}\n",
                h.count, h.mean, h.p50, h.p90, h.p99, h.max
            ));
        }
    }
    if !snapshot.windows.is_empty() {
        out.push_str("windows:\n");
        for (name, windows) in &snapshot.windows {
            for w in windows {
                out.push_str(&format!(
                    "  {name:<32} {:>4}  n {:>6}  {:>8.1}/s  p50 {:.3e}  p95 {:.3e}  p99 {:.3e}\n",
                    w.label(),
                    w.count,
                    w.rate_per_sec,
                    w.p50,
                    w.p95,
                    w.p99
                ));
            }
        }
    }
    if !snapshot.rates.is_empty() {
        out.push_str("rates:\n");
        for (name, windows) in &snapshot.rates {
            for w in windows {
                out.push_str(&format!(
                    "  {name:<32} {:>4}  n {:>6}  {:>8.1}/s\n",
                    w.label(),
                    w.count,
                    w.rate_per_sec
                ));
            }
        }
    }
    out
}

/// The human exporter: echoes spans at `debug` level and prints the
/// snapshot table to stderr on flush.
#[derive(Debug, Default)]
pub struct TextExporter {
    _private: (),
}

impl TextExporter {
    /// A text exporter writing through the leveled logger.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Exporter for TextExporter {
    fn span(&mut self, event: &SpanEvent) {
        crate::debug!(
            "span {:<40} {:>10.3?} on {}",
            event.path,
            std::time::Duration::from_nanos(event.duration_ns.min(u64::MAX as u128) as u64),
            event.thread
        );
    }

    fn snapshot(&mut self, snapshot: &MetricsSnapshot) {
        for line in snapshot_to_text(snapshot).lines() {
            crate::debug!("{line}");
        }
    }

    fn flush(&mut self) {}
}

/// A clonable in-memory sink for tests and programmatic capture.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything written so far, as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("buffer lock")).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn sample_event() -> SpanEvent {
        SpanEvent {
            name: "cpa.rotate",
            path: "bench.run/cpa.rotate".to_owned(),
            thread: "main".to_owned(),
            start_us: 1200,
            duration_ns: 834_000,
            fields: vec![
                ("worker", FieldValue::U64(3)),
                ("rho", FieldValue::F64(0.015)),
                ("label", FieldValue::Str("chip \"I\"".to_owned())),
                ("active", FieldValue::Bool(true)),
                ("delta", FieldValue::I64(-2)),
            ],
        }
    }

    #[test]
    fn span_line_is_valid_json_with_all_fields() {
        let line = span_to_json(&sample_event());
        let v = parse(&line).expect("valid JSON");
        assert_eq!(v.get("t").and_then(Json::as_str), Some("span"));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("cpa.rotate"));
        assert_eq!(v.get("dur_ns").and_then(Json::as_f64), Some(834_000.0));
        let fields = v.get("fields").expect("fields");
        assert_eq!(fields.get("worker").and_then(Json::as_f64), Some(3.0));
        assert_eq!(fields.get("rho").and_then(Json::as_f64), Some(0.015));
        assert_eq!(
            fields.get("label").and_then(Json::as_str),
            Some("chip \"I\"")
        );
        assert_eq!(fields.get("active"), Some(&Json::Bool(true)));
        assert_eq!(fields.get("delta").and_then(Json::as_f64), Some(-2.0));
    }

    #[test]
    fn snapshot_lines_all_parse() {
        let mut registry = crate::metrics::Registry::new();
        registry.counter_add("sim.cycles", 300_000);
        registry.gauge_set("peak", 0.0153);
        registry.observe("chunk", 0.5);
        registry.span_complete("sim.run", 42);
        let text = snapshot_to_json_lines(&registry.snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            parse(line).unwrap_or_else(|e| panic!("line {line:?} must parse: {e}"));
        }
    }

    #[test]
    fn windowed_lines_parse_and_carry_percentiles() {
        let mut registry = crate::metrics::Registry::new();
        registry.observe("req_seconds", 0.5);
        let mut snapshot = registry.snapshot();
        let mut h = crate::window::WindowedHistogram::new();
        h.record(0, 0.5);
        snapshot.windows = vec![("req_seconds".to_owned(), h.snapshot(1))];
        let mut r = crate::window::RateCounter::new();
        r.add(0, 7);
        snapshot.rates = vec![("requests".to_owned(), r.snapshot(1))];

        let text = snapshot_to_json_lines(&snapshot);
        let mut win_hist = 0;
        let mut win_rate = 0;
        for line in text.lines() {
            let v = parse(line).unwrap_or_else(|e| panic!("line {line:?} must parse: {e}"));
            match v.get("t").and_then(Json::as_str) {
                Some("win_hist") => {
                    win_hist += 1;
                    assert!(v.get("window").and_then(Json::as_str).is_some());
                    assert!(v.get("p95").and_then(Json::as_f64).is_some());
                }
                Some("win_rate") => {
                    win_rate += 1;
                    assert!(v.get("rate_per_sec").and_then(Json::as_f64).is_some());
                }
                _ => {}
            }
        }
        assert_eq!(win_hist, 3, "one line per window");
        assert_eq!(win_rate, 3);
        let table = snapshot_to_text(&snapshot);
        assert!(table.contains("windows:"));
        assert!(table.contains("rates:"));
    }

    #[test]
    fn shared_buffer_accumulates() {
        let buffer = SharedBuffer::new();
        let mut exporter = JsonLinesExporter::new(buffer.clone());
        exporter.span(&sample_event());
        exporter.flush();
        assert!(buffer.contents().contains("\"cpa.rotate\""));
    }
}
