//! Hierarchical wall-clock spans.
//!
//! A [`Span`] is an RAII guard: it notes the time and the enclosing span
//! path on creation, and on drop reports its duration to the recorder —
//! which forwards a structured event to the exporters and folds the
//! timing into the per-name aggregates. Nesting is tracked per thread, so
//! spans opened inside `std::thread::scope` workers get their own stacks
//! (the rotation-chunk spans of the parallel CPA engine are roots on
//! their worker threads).
//!
//! When observability is disabled a span is a `None` and costs one branch.

use crate::recorder::Recorder;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A typed field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, sizes, indices).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rho values, seconds).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// A completed span, as handed to exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// The span's own name.
    pub name: &'static str,
    /// Slash-joined path from the thread's outermost span to this one.
    pub path: String,
    /// The thread the span ran on (thread name, or a numeric id).
    pub thread: String,
    /// Microseconds from recorder creation to span start.
    pub start_us: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u128,
    /// Fields attached via [`Span::field`].
    pub fields: Vec<(&'static str, FieldValue)>,
}

#[derive(Debug)]
pub(crate) struct ActiveSpan {
    pub(crate) recorder: Arc<Recorder>,
    pub(crate) name: &'static str,
    pub(crate) path: String,
    pub(crate) start: Instant,
    pub(crate) fields: Vec<(&'static str, FieldValue)>,
}

/// An RAII span guard; see the [module docs](self).
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to `_span`, not `_`"]
pub struct Span(pub(crate) Option<ActiveSpan>);

impl Span {
    /// The inert span used when observability is disabled.
    pub fn disabled() -> Self {
        Span(None)
    }

    pub(crate) fn enter(recorder: Arc<Recorder>, name: &'static str) -> Self {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        Span(Some(ActiveSpan {
            recorder,
            name,
            path,
            start: Instant::now(),
            fields: Vec::new(),
        }))
    }

    /// Attaches a typed field (builder style). A no-op when disabled.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        if let Some(active) = &mut self.0 {
            active.fields.push((key, value.into()));
        }
        self
    }

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let duration = active.start.elapsed();
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let thread = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("{:?}", std::thread::current().id()));
        let event = SpanEvent {
            name: active.name,
            path: active.path,
            thread,
            start_us: active.recorder.micros_since_start(active.start),
            duration_ns: duration.as_nanos(),
            fields: active.fields,
        };
        active.recorder.span_completed(event);
    }
}
