//! The recorder: the hub tying spans, metrics and exporters together.

use crate::agg::PathAgg;
use crate::export::{Exporter, JsonLinesExporter, TextExporter};
use crate::metrics::{MetricsSnapshot, Registry};
use crate::span::{Span, SpanEvent};
use crate::window::WindowStore;
use crate::Level;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The live (windowed) side of the recorder: sliding-window rings and
/// the per-path self-time aggregate, kept under one lock.
#[derive(Debug, Default)]
struct LiveState {
    windows: WindowStore,
    paths: PathAgg,
}

/// Collects spans and metrics and fans them out to exporters.
///
/// Library code reaches the process-global recorder through the free
/// functions in the crate root ([`crate::span()`], [`crate::counter_add`],
/// …); tests construct their own and call these methods directly.
pub struct Recorder {
    start: Instant,
    registry: Mutex<Registry>,
    live: Mutex<LiveState>,
    exporters: Mutex<Vec<Box<dyn Exporter>>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("start", &self.start)
            .finish_non_exhaustive()
    }
}

impl Recorder {
    /// A recorder with an explicit exporter list.
    pub fn new(exporters: Vec<Box<dyn Exporter>>) -> Self {
        Recorder {
            start: Instant::now(),
            registry: Mutex::new(Registry::new()),
            live: Mutex::new(LiveState::default()),
            exporters: Mutex::new(exporters),
        }
    }

    /// The environment-configured recorder, or `None` when observability
    /// is disabled.
    ///
    /// - `CLOCKMARK_METRICS=<path>` attaches a JSON-lines exporter
    ///   writing to that file (truncating an existing one);
    /// - `CLOCKMARK_LOG=debug|trace` attaches the human text exporter
    ///   (spans echoed as debug log lines, summary table on flush).
    ///
    /// With neither set, recording is off and every instrumentation site
    /// reduces to one atomic load.
    pub fn from_env() -> Option<Self> {
        let mut exporters: Vec<Box<dyn Exporter>> = Vec::new();
        if let Ok(path) = std::env::var("CLOCKMARK_METRICS") {
            let path = path.trim();
            if !path.is_empty() {
                match std::fs::File::create(path) {
                    Ok(file) => exporters.push(Box::new(JsonLinesExporter::new(
                        std::io::BufWriter::new(file),
                    ))),
                    Err(e) => {
                        crate::error!("CLOCKMARK_METRICS: cannot create {path}: {e}");
                    }
                }
            }
        }
        if crate::log_enabled(Level::Debug) {
            exporters.push(Box::new(TextExporter::new()));
        }
        if exporters.is_empty() {
            None
        } else {
            Some(Recorder::new(exporters))
        }
    }

    /// Microseconds from recorder creation to `instant` (saturating).
    pub(crate) fn micros_since_start(&self, instant: Instant) -> u64 {
        instant
            .saturating_duration_since(self.start)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64
    }

    /// Nanoseconds since recorder creation — the time base the sliding
    /// windows bucket on.
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Opens a span. The guard reports back here when dropped.
    pub fn span(self: &Arc<Self>, name: &'static str) -> Span {
        Span::enter(Arc::clone(self), name)
    }

    pub(crate) fn span_completed(&self, event: SpanEvent) {
        self.registry
            .lock()
            .expect("registry lock")
            .span_complete(event.name, event.duration_ns);
        self.live
            .lock()
            .expect("live lock")
            .paths
            .record(&event.path, event.duration_ns);
        let mut exporters = self.exporters.lock().expect("exporter lock");
        for exporter in exporters.iter_mut() {
            exporter.span(&event);
        }
    }

    /// Adds `delta` to a monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.registry
            .lock()
            .expect("registry lock")
            .counter_add(name, delta);
        self.live
            .lock()
            .expect("live lock")
            .windows
            .add(self.now_ns(), name, delta);
    }

    /// Sets a last-value gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.registry
            .lock()
            .expect("registry lock")
            .gauge_set(name, value);
    }

    /// Records a histogram sample.
    pub fn observe(&self, name: &str, value: f64) {
        self.registry
            .lock()
            .expect("registry lock")
            .observe(name, value);
        self.live
            .lock()
            .expect("live lock")
            .windows
            .observe(self.now_ns(), name, value);
    }

    /// A point-in-time copy of everything recorded, including the live
    /// sliding-window summaries.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = self.registry.lock().expect("registry lock").snapshot();
        let now = self.now_ns();
        let mut live = self.live.lock().expect("live lock");
        snapshot.windows = live.windows.histogram_windows(now);
        snapshot.rates = live.windows.rate_windows(now);
        snapshot
    }

    /// The per-span-path self-time rollup in collapsed-stack text
    /// format (one `a;b;c <self_ns>` line per path).
    pub fn collapsed_spans(&self) -> String {
        self.live.lock().expect("live lock").paths.collapsed()
    }

    /// Pushes the current snapshot to every exporter and flushes them.
    pub fn flush(&self) {
        let snapshot = self.snapshot();
        let mut exporters = self.exporters.lock().expect("exporter lock");
        for exporter in exporters.iter_mut() {
            exporter.snapshot(&snapshot);
            exporter.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::SharedBuffer;
    use crate::json::{parse, Json};

    fn test_recorder() -> (Arc<Recorder>, SharedBuffer) {
        let buffer = SharedBuffer::new();
        let recorder = Arc::new(Recorder::new(vec![Box::new(JsonLinesExporter::new(
            buffer.clone(),
        ))]));
        (recorder, buffer)
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        let (recorder, _buffer) = test_recorder();
        {
            let _outer = recorder.span("outer").field("k", 1u64);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = recorder.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let snap = recorder.snapshot();
        let outer = snap
            .spans
            .iter()
            .find(|(n, _)| n == "outer")
            .expect("outer")
            .1;
        let inner = snap
            .spans
            .iter()
            .find(|(n, _)| n == "inner")
            .expect("inner")
            .1;
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The outer span strictly contains the inner one.
        assert!(outer.total_ns > inner.total_ns, "{outer:?} vs {inner:?}");
        assert!(inner.total_ns >= 1_000_000, "sleep must be visible");
    }

    #[test]
    fn span_events_carry_the_nesting_path() {
        let (recorder, buffer) = test_recorder();
        {
            let _a = recorder.span("a");
            let _b = recorder.span("b");
        }
        let contents = buffer.contents();
        let paths: Vec<String> = contents
            .lines()
            .map(|l| {
                parse(l)
                    .expect("valid")
                    .get("path")
                    .and_then(Json::as_str)
                    .expect("has path")
                    .to_owned()
            })
            .collect();
        // Inner span completes (and is exported) first.
        assert_eq!(paths, vec!["a/b".to_owned(), "a".to_owned()]);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let (recorder, buffer) = test_recorder();
        {
            let _first = recorder.span("first");
        }
        {
            let _second = recorder.span("second");
        }
        let contents = buffer.contents();
        assert!(contents.contains("\"path\":\"first\""));
        assert!(contents.contains("\"path\":\"second\""));
        assert!(!contents.contains("first/second"));
    }

    #[test]
    fn worker_threads_get_independent_stacks() {
        let (recorder, buffer) = test_recorder();
        {
            let _outer = recorder.span("outer");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let recorder = Arc::clone(&recorder);
                    scope.spawn(move || {
                        let _chunk = recorder.span("chunk");
                    });
                }
            });
        }
        let contents = buffer.contents();
        // Worker spans are roots on their own threads, not children of
        // the spawning thread's span.
        assert_eq!(contents.matches("\"path\":\"chunk\"").count(), 2);
    }

    #[test]
    fn round_trip_through_json_lines() {
        let (recorder, buffer) = test_recorder();
        recorder.counter_add("cycles", 12_345);
        recorder.gauge_set("peak_rho", 0.0153);
        for v in [1.0, 2.0, 3.0, 4.0] {
            recorder.observe("chunk_seconds", v);
        }
        {
            let _span = recorder.span("sim.run").field("cycles", 12_345u64);
        }
        recorder.flush();

        let contents = buffer.contents();
        let mut counter = None;
        let mut gauge = None;
        let mut hist_p50 = None;
        let mut span_seen = false;
        for line in contents.lines() {
            let v = parse(line).unwrap_or_else(|e| panic!("line {line:?} must parse: {e}"));
            match v.get("t").and_then(Json::as_str) {
                Some("counter") if v.get("name").and_then(Json::as_str) == Some("cycles") => {
                    counter = v.get("value").and_then(Json::as_f64);
                }
                Some("gauge") => gauge = v.get("value").and_then(Json::as_f64),
                Some("hist") => hist_p50 = v.get("p50").and_then(Json::as_f64),
                Some("span") => {
                    span_seen = true;
                    assert_eq!(
                        v.get("fields")
                            .and_then(|f| f.get("cycles"))
                            .and_then(Json::as_f64),
                        Some(12_345.0)
                    );
                }
                _ => {}
            }
        }
        assert_eq!(counter, Some(12_345.0));
        assert_eq!(gauge, Some(0.0153));
        assert_eq!(hist_p50, Some(2.0));
        assert!(span_seen, "span event must be exported");
    }
}
