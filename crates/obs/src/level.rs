//! Log severity levels and the `CLOCKMARK_LOG`-controlled stderr logger.
//!
//! The logger is independent of the span/metrics recorder: `error!` and
//! `warn!` diagnostics print by default so CLI failures stay visible,
//! while `info!`/`debug!`/`trace!` only print when `CLOCKMARK_LOG`
//! requests them. The level check is a single relaxed atomic load, so a
//! disabled log site costs a couple of nanoseconds and never formats its
//! arguments.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable failures.
    Error = 1,
    /// Suspicious conditions the run survives (the default threshold).
    Warn = 2,
    /// High-level progress (per-stage, per-panel).
    Info = 3,
    /// Detailed progress; also echoes completed spans to stderr.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Parses a `CLOCKMARK_LOG` value. Accepts the level names in any
    /// case, plus `off`/`none`/`0` to silence even errors.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The fixed-width display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// 0 = uninitialised (read `CLOCKMARK_LOG` on first use), 1–5 = a level,
/// 6 = fully off.
static LOG_LEVEL: AtomicU8 = AtomicU8::new(0);
const LEVEL_OFF: u8 = 6;

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

fn init_level() -> u8 {
    let level = match std::env::var("CLOCKMARK_LOG") {
        Ok(v) => match Level::parse(&v) {
            Some(level) => level as u8,
            None if matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "none" | "0") => {
                LEVEL_OFF
            }
            None => Level::Warn as u8,
        },
        Err(_) => Level::Warn as u8,
    };
    // Racing first calls compute the same value, so a plain store is fine.
    LOG_LEVEL.store(level, Ordering::Relaxed);
    // Anchor relative timestamps at first logger use.
    let _ = process_start();
    level
}

/// The active log threshold, or `None` when logging is fully off.
pub fn log_level() -> Option<Level> {
    let raw = match LOG_LEVEL.load(Ordering::Relaxed) {
        0 => init_level(),
        set => set,
    };
    match raw {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// Overrides the threshold (tests, or a CLI `--verbose` flag).
pub fn set_log_level(level: Option<Level>) {
    LOG_LEVEL.store(
        level.map(|l| l as u8).unwrap_or(LEVEL_OFF),
        Ordering::Relaxed,
    );
}

/// Whether a message at `level` would currently print.
pub fn log_enabled(level: Level) -> bool {
    log_level().is_some_and(|threshold| level <= threshold)
}

/// Writes one formatted line to stderr. Use the [`error!`](crate::error!)
/// … [`trace!`](crate::trace!) macros instead of calling this directly —
/// they skip argument formatting when the level is filtered out.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    let t = process_start().elapsed();
    eprintln!("[{:9.3}s {:5}] {args}", t.as_secs_f64(), level.as_str());
}

/// Logs at an explicit level, checking the threshold first.
#[macro_export]
macro_rules! log_at {
    ($level:expr, $($arg:tt)*) => {
        if $crate::log_enabled($level) {
            $crate::log($level, ::std::format_args!($($arg)*));
        }
    };
}

/// Logs an unrecoverable failure.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Error, $($arg)*) };
}

/// Logs a suspicious-but-survivable condition (printed by default).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Warn, $($arg)*) };
}

/// Logs high-level progress.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Info, $($arg)*) };
}

/// Logs detailed progress.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Debug, $($arg)*) };
}

/// Logs everything else.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::log_at!($crate::Level::Trace, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_names_case_insensitively() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse(" WARN "), Some(Level::Warn));
        assert_eq!(Level::parse("Info"), Some(Level::Info));
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn levels_order_from_severe_to_chatty() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn threshold_filters_and_can_be_overridden() {
        // Note: the level is process-global, so this test restores it.
        let before = log_level();
        set_log_level(Some(Level::Info));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_log_level(None);
        assert!(!log_enabled(Level::Error));
        set_log_level(before);
    }
}
