//! A minimal JSON value model, writer and parser.
//!
//! The exporter needs to *emit* JSON-lines and the tooling needs to
//! *validate* them (`clockmark-cli metrics`, the exporter round-trip
//! tests), and the build environment has no serde — so this module
//! implements the small subset of JSON the metrics format uses: objects,
//! arrays, strings, finite numbers, booleans and null. Non-finite floats
//! are written as `null`, matching what `JSON.stringify` does.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`] so iteration (and re-serialisation) is
/// deterministic regardless of input key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// The value of `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string content when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value when `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number, or `null` when non-finite.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on a finite f64 always produces a valid JSON number
        // (integers print without an exponent or dot, which is fine).
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing whitespace is allowed,
/// anything else after the value is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing data after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates (used by JSON for astral-plane
                            // characters) are replaced; the metrics format
                            // never emits them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        // A `-` inside an exponent (`1e-3`) is consumed by the loop above
        // only via `+`; handle the minus sign after `e` explicitly.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        let text = if text.ends_with(['e', 'E']) && self.peek() == Some(b'-') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII")
        } else {
            text
        };
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_objects_and_arrays() {
        let v = parse(r#"{"a": [1, 2.5, -3e-2], "b": {"c": true, "d": null}}"#).expect("valid");
        assert_eq!(
            v.get("a"),
            Some(&Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.5),
                Json::Number(-0.03),
            ]))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a \"quoted\" line\nwith\ttabs \\ and unicode ρ≈0.02";
        let mut encoded = String::new();
        write_str(&mut encoded, original);
        assert_eq!(
            parse(&encoded).expect("valid"),
            Json::String(original.to_owned())
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut encoded = String::new();
        write_str(&mut encoded, "\u{1}");
        assert_eq!(encoded, "\"\\u0001\"");
        assert_eq!(
            parse(&encoded).expect("valid"),
            Json::String("\u{1}".to_owned())
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        out.push(' ');
        write_f64(&mut out, f64::INFINITY);
        out.push(' ');
        write_f64(&mut out, 0.015);
        assert_eq!(out, "null null 0.015");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("true false").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn accepts_scientific_notation() {
        assert_eq!(parse("1e-9").expect("valid"), Json::Number(1e-9));
        assert_eq!(parse("2.5E+3").expect("valid"), Json::Number(2500.0));
        assert_eq!(parse("-0.125").expect("valid"), Json::Number(-0.125));
    }
}
