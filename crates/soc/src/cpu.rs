use crate::{Instr, Program, Reg, SocError};

/// Byte-addressed data memory with bounds checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// The address-space size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, addr: u32, bytes: u32) -> Result<usize, SocError> {
        let end = addr as usize + bytes as usize;
        if end > self.bytes.len() {
            return Err(SocError::MemoryOutOfBounds {
                addr,
                size: self.bytes.len(),
            });
        }
        Ok(addr as usize)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::MemoryOutOfBounds`] past the end of memory.
    pub fn read_u8(&self, addr: u32) -> Result<u8, SocError> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::MemoryOutOfBounds`] past the end of memory.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), SocError> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = value;
        Ok(())
    }

    /// Reads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::MemoryOutOfBounds`] past the end of memory.
    pub fn read_u32(&self, addr: u32) -> Result<u32, SocError> {
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes(
            self.bytes[i..i + 4].try_into().expect("4-byte slice"),
        ))
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::MemoryOutOfBounds`] past the end of memory.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), SocError> {
        let i = self.check(addr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies a byte slice into memory at `addr` (for program data setup).
    ///
    /// # Errors
    ///
    /// Returns [`SocError::MemoryOutOfBounds`] past the end of memory.
    pub fn load_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), SocError> {
        let i = self.check(addr, data.len() as u32)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }
}

/// Per-instruction switching activity, used to price background power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstrActivity {
    /// Cycles the instruction occupied.
    pub cycles: u32,
    /// ALU operations performed (arithmetic/logic/shift/compare).
    pub alu_ops: u32,
    /// Register-file writes.
    pub reg_writes: u32,
    /// Data-memory reads.
    pub mem_reads: u32,
    /// Data-memory writes.
    pub mem_writes: u32,
    /// Whether a branch redirected the program counter.
    pub branch_taken: bool,
}

/// Outcome of one [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuStepOutcome {
    /// An instruction executed with the given activity.
    Executed(InstrActivity),
    /// The CPU had already halted (or just executed `Halt`); no activity.
    Halted,
}

/// A small in-order RISC core with per-instruction cycle costs.
///
/// Cycle costs mirror a Cortex-M0-class pipeline: single-cycle ALU
/// operations, two-cycle memory accesses and taken branches, three-cycle
/// multiply.
///
/// ```
/// # fn main() -> Result<(), clockmark_soc::SocError> {
/// use clockmark_soc::{Cpu, Instr, Memory, ProgramBuilder, Reg};
///
/// let mut pb = ProgramBuilder::new();
/// pb.push(Instr::MovImm { rd: Reg::R0, imm: 6 });
/// pb.push(Instr::MovImm { rd: Reg::R1, imm: 7 });
/// pb.push(Instr::Mul { rd: Reg::R2, ra: Reg::R0, rb: Reg::R1 });
/// pb.push(Instr::Halt);
/// let program = pb.finish()?;
///
/// let mut cpu = Cpu::new(program);
/// let mut mem = Memory::new(64);
/// cpu.run_to_halt(&mut mem, 100)?;
/// assert_eq!(cpu.reg(Reg::R2), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    program: Program,
    regs: [u32; Reg::COUNT],
    pc: u32,
    halted: bool,
    executed: u64,
}

impl Cpu {
    /// Creates a CPU at the start of `program` with zeroed registers.
    pub fn new(program: Program) -> Self {
        Cpu {
            program,
            regs: [0; Reg::COUNT],
            pc: 0,
            halted: false,
            executed: 0,
        }
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Whether a `Halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (for test setup).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Restarts the program without clearing registers (bare-metal
    /// benchmark loops restart this way).
    pub fn restart(&mut self) {
        self.pc = 0;
        self.halted = false;
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::PcOutOfBounds`] when execution falls off the end
    /// of the program and [`SocError::MemoryOutOfBounds`] on a bad access.
    pub fn step(&mut self, mem: &mut Memory) -> Result<CpuStepOutcome, SocError> {
        if self.halted {
            return Ok(CpuStepOutcome::Halted);
        }
        let idx = self.pc as usize;
        let instr = *self
            .program
            .instrs()
            .get(idx)
            .ok_or(SocError::PcOutOfBounds {
                pc: self.pc,
                len: self.program.len(),
            })?;
        self.pc += 1;
        self.executed += 1;

        let mut act = InstrActivity {
            cycles: 1,
            ..Default::default()
        };
        let addr = |base: u32, offset: i32| base.wrapping_add(offset as u32);

        match instr {
            Instr::Nop => {}
            Instr::Halt => {
                self.halted = true;
                return Ok(CpuStepOutcome::Halted);
            }
            Instr::MovImm { rd, imm } => {
                self.regs[rd.index()] = imm;
                act.reg_writes = 1;
            }
            Instr::Add { rd, ra, rb } => {
                self.regs[rd.index()] = self.reg(ra).wrapping_add(self.reg(rb));
                act.alu_ops = 1;
                act.reg_writes = 1;
            }
            Instr::Sub { rd, ra, rb } => {
                self.regs[rd.index()] = self.reg(ra).wrapping_sub(self.reg(rb));
                act.alu_ops = 1;
                act.reg_writes = 1;
            }
            Instr::AddImm { rd, ra, imm } => {
                self.regs[rd.index()] = self.reg(ra).wrapping_add(imm as u32);
                act.alu_ops = 1;
                act.reg_writes = 1;
            }
            Instr::And { rd, ra, rb } => {
                self.regs[rd.index()] = self.reg(ra) & self.reg(rb);
                act.alu_ops = 1;
                act.reg_writes = 1;
            }
            Instr::Or { rd, ra, rb } => {
                self.regs[rd.index()] = self.reg(ra) | self.reg(rb);
                act.alu_ops = 1;
                act.reg_writes = 1;
            }
            Instr::Xor { rd, ra, rb } => {
                self.regs[rd.index()] = self.reg(ra) ^ self.reg(rb);
                act.alu_ops = 1;
                act.reg_writes = 1;
            }
            Instr::ShlImm { rd, ra, amount } => {
                self.regs[rd.index()] = self.reg(ra) << (amount as u32 & 31);
                act.alu_ops = 1;
                act.reg_writes = 1;
            }
            Instr::ShrImm { rd, ra, amount } => {
                self.regs[rd.index()] = self.reg(ra) >> (amount as u32 & 31);
                act.alu_ops = 1;
                act.reg_writes = 1;
            }
            Instr::Mul { rd, ra, rb } => {
                self.regs[rd.index()] = self.reg(ra).wrapping_mul(self.reg(rb));
                act.cycles = 3;
                act.alu_ops = 3;
                act.reg_writes = 1;
            }
            Instr::LoadWord { rd, ra, offset } => {
                self.regs[rd.index()] = mem.read_u32(addr(self.reg(ra), offset))?;
                act.cycles = 2;
                act.mem_reads = 1;
                act.reg_writes = 1;
            }
            Instr::StoreWord { rs, ra, offset } => {
                mem.write_u32(addr(self.reg(ra), offset), self.reg(rs))?;
                act.cycles = 2;
                act.mem_writes = 1;
            }
            Instr::LoadByte { rd, ra, offset } => {
                self.regs[rd.index()] = mem.read_u8(addr(self.reg(ra), offset))? as u32;
                act.cycles = 2;
                act.mem_reads = 1;
                act.reg_writes = 1;
            }
            Instr::StoreByte { rs, ra, offset } => {
                mem.write_u8(addr(self.reg(ra), offset), self.reg(rs) as u8)?;
                act.cycles = 2;
                act.mem_writes = 1;
            }
            Instr::Beq { ra, rb, target } => {
                act.alu_ops = 1;
                if self.reg(ra) == self.reg(rb) {
                    self.pc = target;
                    act.cycles = 2;
                    act.branch_taken = true;
                }
            }
            Instr::Bne { ra, rb, target } => {
                act.alu_ops = 1;
                if self.reg(ra) != self.reg(rb) {
                    self.pc = target;
                    act.cycles = 2;
                    act.branch_taken = true;
                }
            }
            Instr::Blt { ra, rb, target } => {
                act.alu_ops = 1;
                if self.reg(ra) < self.reg(rb) {
                    self.pc = target;
                    act.cycles = 2;
                    act.branch_taken = true;
                }
            }
            Instr::Bge { ra, rb, target } => {
                act.alu_ops = 1;
                if self.reg(ra) >= self.reg(rb) {
                    self.pc = target;
                    act.cycles = 2;
                    act.branch_taken = true;
                }
            }
            Instr::Jump { target } => {
                self.pc = target;
                act.cycles = 2;
                act.branch_taken = true;
            }
        }
        Ok(CpuStepOutcome::Executed(act))
    }

    /// Runs until `Halt` or `max_instructions` have executed.
    ///
    /// Returns the total cycles consumed.
    ///
    /// # Errors
    ///
    /// Propagates execution errors from [`step`](Cpu::step).
    pub fn run_to_halt(
        &mut self,
        mem: &mut Memory,
        max_instructions: u64,
    ) -> Result<u64, SocError> {
        let mut cycles = 0u64;
        for _ in 0..max_instructions {
            match self.step(mem)? {
                CpuStepOutcome::Executed(act) => cycles += act.cycles as u64,
                CpuStepOutcome::Halted => break,
            }
        }
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn run(program: Program) -> (Cpu, Memory) {
        let mut cpu = Cpu::new(program);
        let mut mem = Memory::new(256);
        cpu.run_to_halt(&mut mem, 10_000).expect("runs");
        (cpu, mem)
    }

    #[test]
    fn arithmetic_and_logic() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 0xF0,
        });
        pb.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 0x0F,
        });
        pb.push(Instr::Or {
            rd: Reg::R2,
            ra: Reg::R0,
            rb: Reg::R1,
        });
        pb.push(Instr::And {
            rd: Reg::R3,
            ra: Reg::R0,
            rb: Reg::R1,
        });
        pb.push(Instr::Xor {
            rd: Reg::R4,
            ra: Reg::R0,
            rb: Reg::R2,
        });
        pb.push(Instr::Sub {
            rd: Reg::R5,
            ra: Reg::R2,
            rb: Reg::R1,
        });
        pb.push(Instr::ShlImm {
            rd: Reg::R6,
            ra: Reg::R1,
            amount: 4,
        });
        pb.push(Instr::ShrImm {
            rd: Reg::R7,
            ra: Reg::R0,
            amount: 4,
        });
        pb.push(Instr::Halt);
        let (cpu, _) = run(pb.finish().expect("valid"));
        assert_eq!(cpu.reg(Reg::R2), 0xFF);
        assert_eq!(cpu.reg(Reg::R3), 0x00);
        assert_eq!(cpu.reg(Reg::R4), 0x0F);
        assert_eq!(cpu.reg(Reg::R5), 0xF0);
        assert_eq!(cpu.reg(Reg::R6), 0xF0);
        assert_eq!(cpu.reg(Reg::R7), 0x0F);
    }

    #[test]
    fn memory_round_trip_word_and_byte() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 16,
        });
        pb.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 0xDEAD_BEEF,
        });
        pb.push(Instr::StoreWord {
            rs: Reg::R1,
            ra: Reg::R0,
            offset: 0,
        });
        pb.push(Instr::LoadWord {
            rd: Reg::R2,
            ra: Reg::R0,
            offset: 0,
        });
        pb.push(Instr::LoadByte {
            rd: Reg::R3,
            ra: Reg::R0,
            offset: 0,
        });
        pb.push(Instr::StoreByte {
            rs: Reg::R3,
            ra: Reg::R0,
            offset: 8,
        });
        pb.push(Instr::Halt);
        let (cpu, mem) = run(pb.finish().expect("valid"));
        assert_eq!(cpu.reg(Reg::R2), 0xDEAD_BEEF);
        assert_eq!(cpu.reg(Reg::R3), 0xEF, "little-endian low byte");
        assert_eq!(mem.read_u8(24).expect("in range"), 0xEF);
    }

    #[test]
    fn loop_executes_expected_iterations() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 0,
        });
        pb.push(Instr::MovImm {
            rd: Reg::R1,
            imm: 37,
        });
        let top = pb.new_label();
        pb.bind(top).expect("fresh");
        pb.push(Instr::AddImm {
            rd: Reg::R0,
            ra: Reg::R0,
            imm: 1,
        });
        pb.branch_lt(Reg::R0, Reg::R1, top);
        pb.push(Instr::Halt);
        let (cpu, _) = run(pb.finish().expect("valid"));
        assert_eq!(cpu.reg(Reg::R0), 37);
    }

    #[test]
    fn cycle_costs_match_the_documented_model() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 8,
        }); // 1
        pb.push(Instr::Mul {
            rd: Reg::R1,
            ra: Reg::R0,
            rb: Reg::R0,
        }); // 3
        pb.push(Instr::StoreWord {
            rs: Reg::R1,
            ra: Reg::R0,
            offset: 0,
        }); // 2
        pb.push(Instr::Jump { target: 4 }); // 2
        pb.push(Instr::Halt);
        let mut cpu = Cpu::new(pb.finish().expect("valid"));
        let mut mem = Memory::new(64);
        let cycles = cpu.run_to_halt(&mut mem, 100).expect("runs");
        assert_eq!(cycles, 1 + 3 + 2 + 2);
    }

    #[test]
    fn untaken_branch_is_single_cycle() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::Beq {
            ra: Reg::R0,
            rb: Reg::R1,
            target: 0,
        });
        pb.push(Instr::Halt);
        let mut cpu = Cpu::new(pb.finish().expect("valid"));
        cpu.set_reg(Reg::R1, 5); // r0 != r1 → not taken
        let mut mem = Memory::new(16);
        match cpu.step(&mut mem).expect("steps") {
            CpuStepOutcome::Executed(act) => {
                assert_eq!(act.cycles, 1);
                assert!(!act.branch_taken);
            }
            CpuStepOutcome::Halted => panic!("should execute the branch"),
        }
    }

    #[test]
    fn memory_bounds_are_enforced() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::MovImm {
            rd: Reg::R0,
            imm: 1000,
        });
        pb.push(Instr::LoadWord {
            rd: Reg::R1,
            ra: Reg::R0,
            offset: 0,
        });
        pb.push(Instr::Halt);
        let mut cpu = Cpu::new(pb.finish().expect("valid"));
        let mut mem = Memory::new(64);
        let err = cpu.run_to_halt(&mut mem, 100).unwrap_err();
        assert_eq!(
            err,
            SocError::MemoryOutOfBounds {
                addr: 1000,
                size: 64
            }
        );
    }

    #[test]
    fn falling_off_the_program_is_an_error() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::Nop);
        let mut cpu = Cpu::new(pb.finish().expect("valid"));
        let mut mem = Memory::new(16);
        cpu.step(&mut mem).expect("nop executes");
        let err = cpu.step(&mut mem).unwrap_err();
        assert_eq!(err, SocError::PcOutOfBounds { pc: 1, len: 1 });
    }

    #[test]
    fn halted_cpu_stays_halted_and_restart_revives_it() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::AddImm {
            rd: Reg::R0,
            ra: Reg::R0,
            imm: 1,
        });
        pb.push(Instr::Halt);
        let mut cpu = Cpu::new(pb.finish().expect("valid"));
        let mut mem = Memory::new(16);
        cpu.run_to_halt(&mut mem, 10).expect("runs");
        assert!(cpu.is_halted());
        assert_eq!(cpu.step(&mut mem).expect("ok"), CpuStepOutcome::Halted);
        cpu.restart();
        cpu.run_to_halt(&mut mem, 10).expect("runs again");
        assert_eq!(cpu.reg(Reg::R0), 2, "registers survive a restart");
    }

    #[test]
    fn memory_load_bytes_and_bounds() {
        let mut mem = Memory::new(8);
        mem.load_bytes(2, &[1, 2, 3]).expect("fits");
        assert_eq!(mem.read_u8(3).expect("in range"), 2);
        assert!(mem.load_bytes(6, &[0; 4]).is_err());
        assert!(mem.read_u32(5).is_err());
        assert!(mem.write_u32(6, 0).is_err());
    }
}
