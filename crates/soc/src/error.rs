use std::error::Error;
use std::fmt;

/// Errors produced by the SoC simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SocError {
    /// A program label was referenced by a branch but never bound to an
    /// instruction position.
    UnboundLabel {
        /// Index of the unbound label.
        label: usize,
    },
    /// A label was bound twice.
    LabelRebound {
        /// Index of the rebound label.
        label: usize,
    },
    /// A memory access fell outside the configured address space.
    MemoryOutOfBounds {
        /// The faulting byte address.
        addr: u32,
        /// The memory size in bytes.
        size: usize,
    },
    /// The program counter left the program (no `Halt` executed).
    PcOutOfBounds {
        /// The faulting instruction index.
        pc: u32,
        /// The number of instructions in the program.
        len: usize,
    },
    /// An empty program cannot run.
    EmptyProgram,
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::UnboundLabel { label } => {
                write!(f, "label {label} was referenced but never bound")
            }
            SocError::LabelRebound { label } => write!(f, "label {label} was bound twice"),
            SocError::MemoryOutOfBounds { addr, size } => {
                write!(
                    f,
                    "memory access at {addr:#x} outside {size}-byte address space"
                )
            }
            SocError::PcOutOfBounds { pc, len } => {
                write!(f, "program counter {pc} outside {len}-instruction program")
            }
            SocError::EmptyProgram => write!(f, "cannot run an empty program"),
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let msg = SocError::MemoryOutOfBounds {
            addr: 0x100,
            size: 64,
        }
        .to_string();
        assert!(msg.contains("0x100") && msg.contains("64"));
        assert!(SocError::EmptyProgram.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SocError>();
    }
}
