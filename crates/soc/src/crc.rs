//! A bitwise CRC-32 workload — an ALU/branch-heavy contrast to the
//! memory-heavy Dhrystone-like benchmark, for workload-sensitivity
//! studies (the detector must work whatever the processor happens to be
//! running).

use crate::{Instr, Memory, Program, ProgramBuilder, Reg, SocError};

/// Base address of the 16-byte message buffer.
const SRC: u32 = 0;
/// Address where each iteration's CRC is stored.
const RESULT: u32 = 128;
/// Message length in bytes.
const MSG_LEN: u32 = 16;
/// The reflected CRC-32 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Minimum memory the workload needs.
pub const CRC_MEMORY_BYTES: usize = 160;

/// Builds a program computing a bitwise (reflected) CRC-32 of a 16-byte
/// message, `iterations` times, storing each result.
///
/// Activity profile per iteration: 16 byte loads, 128 shift/XOR rounds
/// with a data-dependent branch each, one word store — branchy integer
/// work with almost no memory traffic, the opposite corner from
/// [`dhrystone_like`](crate::dhrystone_like).
///
/// Register conventions: `r14` iteration counter, `r15` bound, `r9` the
/// running CRC, `r0`–`r8` scratch.
///
/// # Errors
///
/// Never fails in practice; the `Result` propagates builder invariants.
pub fn crc32_like(iterations: u32) -> Result<Program, SocError> {
    let mut pb = ProgramBuilder::new();

    pb.push(Instr::MovImm {
        rd: Reg::R14,
        imm: 0,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R15,
        imm: iterations,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R10,
        imm: SRC,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R11,
        imm: RESULT,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R12,
        imm: POLY,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R13,
        imm: 1,
    }); // bit mask constant

    let outer = pb.new_label();
    let done = pb.new_label();
    pb.bind(outer)?;
    pb.branch_ge(Reg::R14, Reg::R15, done);

    // crc = 0xFFFFFFFF
    pb.push(Instr::MovImm {
        rd: Reg::R9,
        imm: 0xFFFF_FFFF,
    });

    // for (j = 0; j < 16; j++)
    pb.push(Instr::MovImm {
        rd: Reg::R1,
        imm: 0,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R2,
        imm: MSG_LEN,
    });
    let byte_loop = pb.new_label();
    pb.bind(byte_loop)?;
    pb.push(Instr::Add {
        rd: Reg::R3,
        ra: Reg::R10,
        rb: Reg::R1,
    });
    pb.push(Instr::LoadByte {
        rd: Reg::R4,
        ra: Reg::R3,
        offset: 0,
    });
    pb.push(Instr::Xor {
        rd: Reg::R9,
        ra: Reg::R9,
        rb: Reg::R4,
    });

    // for (k = 0; k < 8; k++)
    pb.push(Instr::MovImm {
        rd: Reg::R5,
        imm: 0,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R6,
        imm: 8,
    });
    let bit_loop = pb.new_label();
    let no_xor = pb.new_label();
    let bit_next = pb.new_label();
    pb.bind(bit_loop)?;
    // if (crc & 1) { crc = (crc >> 1) ^ POLY } else { crc >>= 1 }
    pb.push(Instr::And {
        rd: Reg::R7,
        ra: Reg::R9,
        rb: Reg::R13,
    });
    pb.push(Instr::ShrImm {
        rd: Reg::R9,
        ra: Reg::R9,
        amount: 1,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R8,
        imm: 0,
    });
    pb.branch_eq(Reg::R7, Reg::R8, no_xor);
    pb.push(Instr::Xor {
        rd: Reg::R9,
        ra: Reg::R9,
        rb: Reg::R12,
    });
    pb.bind(no_xor)?;
    pb.bind(bit_next)?;
    pb.push(Instr::AddImm {
        rd: Reg::R5,
        ra: Reg::R5,
        imm: 1,
    });
    pb.branch_lt(Reg::R5, Reg::R6, bit_loop);

    pb.push(Instr::AddImm {
        rd: Reg::R1,
        ra: Reg::R1,
        imm: 1,
    });
    pb.branch_lt(Reg::R1, Reg::R2, byte_loop);

    // crc = ~crc (via XOR with all-ones), store it.
    pb.push(Instr::MovImm {
        rd: Reg::R3,
        imm: 0xFFFF_FFFF,
    });
    pb.push(Instr::Xor {
        rd: Reg::R9,
        ra: Reg::R9,
        rb: Reg::R3,
    });
    pb.push(Instr::StoreWord {
        rs: Reg::R9,
        ra: Reg::R11,
        offset: 0,
    });

    pb.push(Instr::AddImm {
        rd: Reg::R14,
        ra: Reg::R14,
        imm: 1,
    });
    pb.jump(outer);
    pb.bind(done)?;
    pb.push(Instr::Halt);
    pb.finish()
}

/// Initialises the message buffer.
///
/// # Errors
///
/// Returns [`SocError::MemoryOutOfBounds`] when `mem` is smaller than
/// [`CRC_MEMORY_BYTES`].
pub fn init_crc_memory(mem: &mut Memory) -> Result<(), SocError> {
    mem.load_bytes(SRC, b"CLOCKMARK CRC32\0")
}

/// The reference CRC-32 (reflected, init 0xFFFFFFFF, final XOR) of a byte
/// message — for validating the in-ISA implementation.
pub fn reference_crc32(message: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in message {
        crc ^= byte as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cpu;

    #[test]
    fn in_isa_crc_matches_the_reference_implementation() {
        let program = crc32_like(1).expect("builds");
        let mut cpu = Cpu::new(program);
        let mut mem = Memory::new(CRC_MEMORY_BYTES);
        init_crc_memory(&mut mem).expect("fits");
        cpu.run_to_halt(&mut mem, 1_000_000).expect("runs");

        let expected = reference_crc32(b"CLOCKMARK CRC32\0");
        let stored = mem.read_u32(RESULT).expect("in range");
        assert_eq!(stored, expected, "{stored:#010x} vs {expected:#010x}");
    }

    #[test]
    fn reference_crc_known_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(reference_crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(reference_crc32(b""), 0);
    }

    #[test]
    fn iterations_recompute_the_same_crc() {
        let program = crc32_like(3).expect("builds");
        let mut cpu = Cpu::new(program);
        let mut mem = Memory::new(CRC_MEMORY_BYTES);
        init_crc_memory(&mut mem).expect("fits");
        cpu.run_to_halt(&mut mem, 10_000_000).expect("runs");
        assert_eq!(
            mem.read_u32(RESULT).expect("in range"),
            reference_crc32(b"CLOCKMARK CRC32\0")
        );
        assert!(cpu.is_halted());
    }

    #[test]
    fn crc_is_alu_heavy_compared_to_dhrystone() {
        use crate::{dhrystone_like, init_dhrystone_memory, CpuStepOutcome};

        let profile = |program: crate::Program, init: fn(&mut Memory) -> Result<(), SocError>| {
            let mut cpu = Cpu::new(program);
            let mut mem = Memory::new(256);
            init(&mut mem).expect("fits");
            let (mut alu, mut memops, mut cycles) = (0u64, 0u64, 0u64);
            while let CpuStepOutcome::Executed(act) = cpu.step(&mut mem).expect("runs") {
                alu += act.alu_ops as u64;
                memops += (act.mem_reads + act.mem_writes) as u64;
                cycles += act.cycles as u64;
            }
            (alu as f64 / cycles as f64, memops as f64 / cycles as f64)
        };

        let (crc_alu, crc_mem) = profile(crc32_like(4).expect("builds"), init_crc_memory);
        let (dhry_alu, dhry_mem) =
            profile(dhrystone_like(4).expect("builds"), init_dhrystone_memory);
        assert!(
            crc_alu > dhry_alu,
            "crc alu {crc_alu:.2} vs dhrystone {dhry_alu:.2}"
        );
        assert!(
            crc_mem < dhry_mem,
            "crc mem {crc_mem:.2} vs dhrystone {dhry_mem:.2}"
        );
    }
}
