use crate::crc::{crc32_like, init_crc_memory, CRC_MEMORY_BYTES};
use crate::dhrystone::{dhrystone_like, init_dhrystone_memory, DHRYSTONE_MEMORY_BYTES};
use crate::{Cache, Cpu, CpuStepOutcome, InstrActivity, Memory, SocError};
use clockmark_power::{Power, PowerTrace};
use rand::Rng;
use std::collections::VecDeque;

/// Maps CPU switching activity to per-cycle power.
///
/// The absolute numbers target a Cortex-M0-class core in a 65 nm
/// low-leakage process at 10 MHz: a fraction of a milliwatt of clock/idle
/// power plus activity-proportional terms, giving whole-SoC means of a few
/// milliwatts — the regime in which the paper's 1.5 mW watermark is "deeply
/// embedded" in the total device power (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerProfile {
    /// Clock tree + idle pipeline, every cycle.
    pub base: Power,
    /// Instruction fetch/decode, averaged over the instruction's cycles.
    pub fetch: Power,
    /// Per ALU operation.
    pub alu: Power,
    /// Per data-memory access.
    pub mem: Power,
    /// Per register-file write.
    pub reg_write: Power,
    /// Extra on a taken branch (pipeline refill).
    pub branch: Power,
}

impl CpuPowerProfile {
    /// A Cortex-M0-class profile (65 nm LP, 10 MHz).
    pub fn cortex_m0_class() -> Self {
        CpuPowerProfile {
            base: Power::from_microwatts(600.0),
            fetch: Power::from_microwatts(150.0),
            alu: Power::from_microwatts(100.0),
            mem: Power::from_microwatts(300.0),
            reg_write: Power::from_microwatts(50.0),
            branch: Power::from_microwatts(200.0),
        }
    }

    /// Prices one instruction's activity (excluding `base`), as total
    /// energy-per-cycle power spread over the instruction's cycles.
    fn instr_power(&self, act: InstrActivity) -> Power {
        let total = self.fetch
            + self.alu * act.alu_ops as f64
            + self.mem * (act.mem_reads + act.mem_writes) as f64
            + self.reg_write * act.reg_writes as f64
            + if act.branch_taken {
                self.branch
            } else {
                Power::ZERO
            };
        total / act.cycles.max(1) as f64
    }
}

/// The always-clocked dual Cortex-A5-class subsystem of chip II.
///
/// The paper: "Although, on chip II Cortex-A5 did not execute any program
/// both cores, along with the on-chip bus were active, which accounted for
/// a significant portion of background noise in the system." Modelled as a
/// large constant clock power plus bursty cache/bus refill traffic.
#[derive(Debug, Clone)]
struct A5Cluster {
    /// Constant clock power of both cores and the bus.
    clock_power: Power,
    /// Extra power while a refill burst is in flight.
    refill_power: Power,
    /// Refill burst length, cycles.
    refill_cycles: u32,
    caches: [Cache; 2],
    walkers: [u32; 2],
    strides: [u32; 2],
    burst_remaining: u32,
    /// Cores probe their caches once every this many cycles.
    probe_interval: u32,
    cycle: u64,
}

impl A5Cluster {
    fn new() -> Self {
        A5Cluster {
            clock_power: Power::from_milliwatts(7.0),
            refill_power: Power::from_milliwatts(1.2),
            refill_cycles: 4,
            caches: [Cache::new(64, 32), Cache::new(64, 32)],
            walkers: [0, 0x8000],
            // Sub-line strides: a miss (and refill burst) every 8th / 4th
            // probe per core, giving bursty rather than constant traffic.
            strides: [4, 8],
            burst_remaining: 0,
            probe_interval: 3,
            cycle: 0,
        }
    }

    /// Advances one cycle, returning this cycle's power contribution.
    fn step(&mut self) -> Power {
        let mut p = self.clock_power;
        if self.cycle.is_multiple_of(self.probe_interval as u64) {
            for core in 0..2 {
                let addr = self.walkers[core];
                self.walkers[core] = addr.wrapping_add(self.strides[core]) & 0xF_FFFF;
                if !self.caches[core].access(addr) {
                    self.burst_remaining += self.refill_cycles;
                }
            }
        }
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            p += self.refill_power;
        }
        self.cycle += 1;
        p
    }
}

/// A test-chip model producing per-cycle background power.
///
/// Two configurations mirror the paper's ASICs:
///
/// - [`Soc::chip_i`]: an ARM Cortex-M0-class SoC with on-chip bus and
///   peripheral IP, running the Dhrystone-like benchmark.
/// - [`Soc::chip_ii`]: the same plus an always-clocked dual
///   Cortex-A5-class cluster with caches — more mean power and more
///   structured noise.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Soc {
    name: &'static str,
    cpu: Cpu,
    mem: Memory,
    profile: CpuPowerProfile,
    /// Constant bus/peripheral background.
    peripherals: Power,
    /// RMS of the white peripheral flicker.
    flicker_sigma: Power,
    a5: Option<A5Cluster>,
    /// Per-cycle power of the instruction currently in flight.
    pending: VecDeque<f64>,
}

/// The benchmark the M0-class core executes during an experiment.
///
/// The paper uses Dhrystone; CRC-32 is provided as an ALU/branch-heavy
/// contrast for workload-sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workload {
    /// The Dhrystone-like benchmark (string, arithmetic, logic, memory).
    #[default]
    Dhrystone,
    /// The bitwise CRC-32 workload (shift/XOR rounds, data-dependent
    /// branches, minimal memory traffic).
    Crc32,
}

impl Workload {
    fn materialize(self) -> Result<(Cpu, Memory), SocError> {
        // Generously sized iteration counts; the SoC restarts the program
        // if it ever completes mid-experiment.
        match self {
            Workload::Dhrystone => {
                let program = dhrystone_like(1_000_000)?;
                let mut mem = Memory::new(DHRYSTONE_MEMORY_BYTES);
                init_dhrystone_memory(&mut mem)?;
                Ok((Cpu::new(program), mem))
            }
            Workload::Crc32 => {
                let program = crc32_like(1_000_000)?;
                let mut mem = Memory::new(CRC_MEMORY_BYTES);
                init_crc_memory(&mut mem)?;
                Ok((Cpu::new(program), mem))
            }
        }
    }
}

impl Soc {
    fn build(
        name: &'static str,
        peripherals: Power,
        a5: Option<A5Cluster>,
        workload: Workload,
    ) -> Result<Self, SocError> {
        let (cpu, mem) = workload.materialize()?;
        Ok(Soc {
            name,
            cpu,
            mem,
            profile: CpuPowerProfile::cortex_m0_class(),
            peripherals,
            flicker_sigma: Power::from_microwatts(80.0),
            a5,
            pending: VecDeque::new(),
        })
    }

    /// The chip-I configuration: Cortex-M0-class SoC with bus and
    /// peripheral IP blocks, running Dhrystone (as in the paper).
    pub fn chip_i() -> Result<Self, SocError> {
        Self::chip_i_with(Workload::Dhrystone)
    }

    /// Chip I with an explicit workload.
    pub fn chip_i_with(workload: Workload) -> Result<Self, SocError> {
        Self::build(
            "chip I (Cortex-M0 SoC)",
            Power::from_milliwatts(1.2),
            None,
            workload,
        )
    }

    /// The chip-II configuration: adds the always-clocked dual
    /// Cortex-A5-class cluster with caches and bus traffic.
    pub fn chip_ii() -> Result<Self, SocError> {
        Self::chip_ii_with(Workload::Dhrystone)
    }

    /// Chip II with an explicit workload.
    pub fn chip_ii_with(workload: Workload) -> Result<Self, SocError> {
        Self::build(
            "chip II (dual Cortex-A5 + Cortex-M0)",
            Power::from_milliwatts(1.2),
            Some(A5Cluster::new()),
            workload,
        )
    }

    /// Human-readable configuration name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The executing core (for inspection).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Advances one clock cycle of background activity.
    ///
    /// # Errors
    ///
    /// Propagates CPU execution faults (which indicate a bug in the
    /// benchmark program, not a user error).
    pub fn step_cycle<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Result<Power, SocError> {
        // Refill the per-cycle queue from the next instruction when empty.
        if self.pending.is_empty() {
            if self.cpu.is_halted() {
                self.cpu.restart();
            }
            match self.cpu.step(&mut self.mem)? {
                CpuStepOutcome::Executed(act) => {
                    let per_cycle = self.profile.instr_power(act).watts();
                    for _ in 0..act.cycles.max(1) {
                        self.pending.push_back(per_cycle);
                    }
                }
                CpuStepOutcome::Halted => {
                    // Halt cycle: restart next cycle, idle this one.
                    self.pending.push_back(0.0);
                }
            }
        }
        let cpu_activity = self.pending.pop_front().unwrap_or(0.0);

        let mut total = self.profile.base.watts() + self.peripherals.watts() + cpu_activity;
        if let Some(a5) = &mut self.a5 {
            total += a5.step().watts();
        }
        // White peripheral flicker (arbitration jitter, IO pads, PLL).
        total += crate::soc::gaussian(rng) * self.flicker_sigma.watts();
        Ok(Power::from_watts(total.max(0.0)))
    }

    /// Produces `cycles` cycles of background power.
    ///
    /// # Errors
    ///
    /// Propagates CPU execution faults.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        cycles: usize,
        rng: &mut R,
    ) -> Result<PowerTrace, SocError> {
        let mut trace = PowerTrace::with_capacity(cycles);
        for _ in 0..cycles {
            trace.push(self.step_cycle(rng)?);
        }
        Ok(trace)
    }
}

/// Standard-normal sample (Marsaglia polar method). Local copy to keep the
/// crate free of a distribution dependency.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chip_i_produces_a_few_milliwatts() {
        let mut soc = Soc::chip_i().expect("builds");
        let mut rng = StdRng::seed_from_u64(1);
        let trace = soc.run(20_000, &mut rng).expect("runs");
        let mean = trace.mean().milliwatts();
        assert!((1.5..6.0).contains(&mean), "chip I mean {mean} mW");
    }

    #[test]
    fn chip_ii_draws_more_power_and_more_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut chip_i = Soc::chip_i().expect("builds");
        let mut chip_ii = Soc::chip_ii().expect("builds");
        let t1 = chip_i.run(20_000, &mut rng).expect("runs");
        let t2 = chip_ii.run(20_000, &mut rng).expect("runs");
        assert!(
            t2.mean().watts() > 2.0 * t1.mean().watts(),
            "chip II ({}) should clearly out-draw chip I ({})",
            t2.mean(),
            t1.mean()
        );
        assert!(
            t2.std_dev().watts() > t1.std_dev().watts(),
            "chip II background is noisier"
        );
    }

    #[test]
    fn background_is_structured_not_constant() {
        let mut soc = Soc::chip_i().expect("builds");
        let mut rng = StdRng::seed_from_u64(3);
        let trace = soc.run(5_000, &mut rng).expect("runs");
        assert!(trace.std_dev().watts() > 0.0);
        // Distinct values exist (program phases).
        let first = trace.get(0).expect("cycle");
        assert!(trace
            .iter()
            .any(|p| (p.watts() - first.watts()).abs() > 1e-6));
    }

    #[test]
    fn runs_far_longer_than_one_benchmark_pass() {
        // The benchmark auto-restarts; a long run must not fault.
        let mut soc = Soc::chip_i().expect("builds");
        let mut rng = StdRng::seed_from_u64(4);
        let trace = soc.run(200_000, &mut rng).expect("runs");
        assert_eq!(trace.len(), 200_000);
        assert!(soc.cpu().executed() > 50_000);
    }

    #[test]
    fn power_is_never_negative() {
        let mut soc = Soc::chip_i().expect("builds");
        let mut rng = StdRng::seed_from_u64(5);
        let trace = soc.run(10_000, &mut rng).expect("runs");
        assert!(trace.min().expect("non-empty").watts() >= 0.0);
    }

    #[test]
    fn crc_workload_runs_and_differs_from_dhrystone() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut dhry = Soc::chip_i_with(Workload::Dhrystone).expect("builds");
        let mut crc = Soc::chip_i_with(Workload::Crc32).expect("builds");
        let t_dhry = dhry.run(20_000, &mut rng).expect("runs");
        let t_crc = crc.run(20_000, &mut rng).expect("runs");
        // Both are in the same power regime but not identical traces.
        assert!((1.0..6.0).contains(&t_crc.mean().milliwatts()));
        assert_ne!(t_dhry, t_crc);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        let a = Soc::chip_ii()
            .expect("builds")
            .run(3_000, &mut rng_a)
            .expect("runs");
        let b = Soc::chip_ii()
            .expect("builds")
            .run(3_000, &mut rng_b)
            .expect("runs");
        assert_eq!(a, b);
    }
}
