use std::fmt;

/// One of the sixteen general-purpose registers `r0`..`r15`.
///
/// ```
/// use clockmark_soc::Reg;
///
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!(Reg::new(15), Some(Reg::R15));
/// assert_eq!(Reg::new(16), None);
/// assert_eq!(Reg::R7.to_string(), "r7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Creates a register from its index, if within `0..16`.
    pub fn new(index: u8) -> Option<Reg> {
        (index < Self::COUNT as u8).then_some(Reg(index))
    }

    /// The register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

macro_rules! reg_consts {
    ($($name:ident = $idx:literal),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("Register r", stringify!($idx), ".")]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

reg_consts!(
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One instruction of the small RISC ISA.
///
/// The ISA is deliberately minimal but covers every activity class the
/// Dhrystone benchmark exercises: integer arithmetic, logical operations,
/// shifts, byte and word memory accesses, compares-and-branches and
/// unconditional jumps. Branch targets are absolute instruction indices
/// (resolved from labels by [`ProgramBuilder`](crate::ProgramBuilder)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // Field meanings follow the standard 3-operand form.
pub enum Instr {
    /// No operation (one cycle).
    Nop,
    /// Stops execution.
    Halt,
    /// `rd ← imm`.
    MovImm { rd: Reg, imm: u32 },
    /// `rd ← ra + rb` (wrapping).
    Add { rd: Reg, ra: Reg, rb: Reg },
    /// `rd ← ra − rb` (wrapping).
    Sub { rd: Reg, ra: Reg, rb: Reg },
    /// `rd ← ra + imm` (wrapping, sign-extended immediate).
    AddImm { rd: Reg, ra: Reg, imm: i32 },
    /// `rd ← ra & rb`.
    And { rd: Reg, ra: Reg, rb: Reg },
    /// `rd ← ra | rb`.
    Or { rd: Reg, ra: Reg, rb: Reg },
    /// `rd ← ra ^ rb`.
    Xor { rd: Reg, ra: Reg, rb: Reg },
    /// `rd ← ra << amount` (amount masked to 0..32).
    ShlImm { rd: Reg, ra: Reg, amount: u8 },
    /// `rd ← ra >> amount` (logical, amount masked to 0..32).
    ShrImm { rd: Reg, ra: Reg, amount: u8 },
    /// `rd ← ra × rb` (wrapping; three cycles like a small multiplier).
    Mul { rd: Reg, ra: Reg, rb: Reg },
    /// `rd ← mem32[ra + offset]` (two cycles).
    LoadWord { rd: Reg, ra: Reg, offset: i32 },
    /// `mem32[ra + offset] ← rs` (two cycles).
    StoreWord { rs: Reg, ra: Reg, offset: i32 },
    /// `rd ← zero-extended mem8[ra + offset]` (two cycles).
    LoadByte { rd: Reg, ra: Reg, offset: i32 },
    /// `mem8[ra + offset] ← rs & 0xFF` (two cycles).
    StoreByte { rs: Reg, ra: Reg, offset: i32 },
    /// Branch to `target` when `ra == rb` (two cycles taken, one not).
    Beq { ra: Reg, rb: Reg, target: u32 },
    /// Branch to `target` when `ra != rb`.
    Bne { ra: Reg, rb: Reg, target: u32 },
    /// Branch to `target` when `ra < rb` (unsigned).
    Blt { ra: Reg, rb: Reg, target: u32 },
    /// Branch to `target` when `ra >= rb` (unsigned).
    Bge { ra: Reg, rb: Reg, target: u32 },
    /// Unconditional jump to `target` (two cycles).
    Jump { target: u32 },
}

impl Instr {
    /// Whether this instruction can redirect control flow.
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::Blt { .. }
                | Instr::Bge { .. }
                | Instr::Jump { .. }
        )
    }

    /// Whether this instruction touches data memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::LoadWord { .. }
                | Instr::StoreWord { .. }
                | Instr::LoadByte { .. }
                | Instr::StoreByte { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::MovImm { rd, imm } => write!(f, "mov {rd}, #{imm}"),
            Instr::Add { rd, ra, rb } => write!(f, "add {rd}, {ra}, {rb}"),
            Instr::Sub { rd, ra, rb } => write!(f, "sub {rd}, {ra}, {rb}"),
            Instr::AddImm { rd, ra, imm } => write!(f, "add {rd}, {ra}, #{imm}"),
            Instr::And { rd, ra, rb } => write!(f, "and {rd}, {ra}, {rb}"),
            Instr::Or { rd, ra, rb } => write!(f, "or {rd}, {ra}, {rb}"),
            Instr::Xor { rd, ra, rb } => write!(f, "xor {rd}, {ra}, {rb}"),
            Instr::ShlImm { rd, ra, amount } => write!(f, "shl {rd}, {ra}, #{amount}"),
            Instr::ShrImm { rd, ra, amount } => write!(f, "shr {rd}, {ra}, #{amount}"),
            Instr::Mul { rd, ra, rb } => write!(f, "mul {rd}, {ra}, {rb}"),
            Instr::LoadWord { rd, ra, offset } => write!(f, "ldr {rd}, [{ra}, #{offset}]"),
            Instr::StoreWord { rs, ra, offset } => write!(f, "str {rs}, [{ra}, #{offset}]"),
            Instr::LoadByte { rd, ra, offset } => write!(f, "ldrb {rd}, [{ra}, #{offset}]"),
            Instr::StoreByte { rs, ra, offset } => write!(f, "strb {rs}, [{ra}, #{offset}]"),
            Instr::Beq { ra, rb, target } => write!(f, "beq {ra}, {rb}, @{target}"),
            Instr::Bne { ra, rb, target } => write!(f, "bne {ra}, {rb}, @{target}"),
            Instr::Blt { ra, rb, target } => write!(f, "blt {ra}, {rb}, @{target}"),
            Instr::Bge { ra, rb, target } => write!(f, "bge {ra}, {rb}, @{target}"),
            Instr::Jump { target } => write!(f, "jmp @{target}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bounds() {
        assert_eq!(Reg::new(0), Some(Reg::R0));
        assert_eq!(Reg::new(15), Some(Reg::R15));
        assert_eq!(Reg::new(16), None);
        assert_eq!(Reg::new(255), None);
    }

    #[test]
    fn classification_helpers() {
        assert!(Instr::Jump { target: 0 }.is_branch());
        assert!(Instr::Beq {
            ra: Reg::R0,
            rb: Reg::R1,
            target: 0
        }
        .is_branch());
        assert!(!Instr::Nop.is_branch());
        assert!(Instr::LoadByte {
            rd: Reg::R0,
            ra: Reg::R1,
            offset: 0
        }
        .is_memory());
        assert!(!Instr::Add {
            rd: Reg::R0,
            ra: Reg::R0,
            rb: Reg::R0
        }
        .is_memory());
    }

    #[test]
    fn display_is_assembly_like() {
        let i = Instr::AddImm {
            rd: Reg::R2,
            ra: Reg::R3,
            imm: -4,
        };
        assert_eq!(i.to_string(), "add r2, r3, #-4");
        let b = Instr::Bne {
            ra: Reg::R0,
            rb: Reg::R1,
            target: 12,
        };
        assert_eq!(b.to_string(), "bne r0, r1, @12");
    }
}
