use crate::{Instr, Reg, SocError};

/// A forward-referenceable position in a program under construction.
///
/// Created by [`ProgramBuilder::new_label`], bound to the next instruction
/// position by [`ProgramBuilder::bind`], and referenced by the branch
/// helpers. All references are patched when [`ProgramBuilder::finish`]
/// resolves the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A finished, label-resolved instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// The instructions in execution order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Formats the program as an assembly listing.
    pub fn listing(&self) -> String {
        self.instrs
            .iter()
            .enumerate()
            .map(|(i, instr)| format!("{i:4}: {instr}\n"))
            .collect()
    }
}

/// Builds a [`Program`] with label-based control flow.
///
/// ```
/// # fn main() -> Result<(), clockmark_soc::SocError> {
/// use clockmark_soc::{Instr, ProgramBuilder, Reg};
///
/// // Count r0 from 0 to 10.
/// let mut pb = ProgramBuilder::new();
/// pb.push(Instr::MovImm { rd: Reg::R0, imm: 0 });
/// pb.push(Instr::MovImm { rd: Reg::R1, imm: 10 });
/// let top = pb.new_label();
/// pb.bind(top)?;
/// pb.push(Instr::AddImm { rd: Reg::R0, ra: Reg::R0, imm: 1 });
/// pb.branch_ne(Reg::R0, Reg::R1, top);
/// pb.push(Instr::Halt);
/// let program = pb.finish()?;
/// assert_eq!(program.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    labels: Vec<Option<u32>>,
    /// `(instruction index, label)` pairs to patch at finish.
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction and returns its index.
    pub fn push(&mut self, instr: Instr) -> usize {
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds a label to the position of the *next* pushed instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::LabelRebound`] when the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), SocError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(SocError::LabelRebound { label: label.0 });
        }
        *slot = Some(self.instrs.len() as u32);
        Ok(())
    }

    fn push_fixup(&mut self, instr: Instr, label: Label) {
        let idx = self.push(instr);
        self.fixups.push((idx, label));
    }

    /// Pushes `beq ra, rb, label`.
    pub fn branch_eq(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.push_fixup(Instr::Beq { ra, rb, target: 0 }, label);
    }

    /// Pushes `bne ra, rb, label`.
    pub fn branch_ne(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.push_fixup(Instr::Bne { ra, rb, target: 0 }, label);
    }

    /// Pushes `blt ra, rb, label` (unsigned).
    pub fn branch_lt(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.push_fixup(Instr::Blt { ra, rb, target: 0 }, label);
    }

    /// Pushes `bge ra, rb, label` (unsigned).
    pub fn branch_ge(&mut self, ra: Reg, rb: Reg, label: Label) {
        self.push_fixup(Instr::Bge { ra, rb, target: 0 }, label);
    }

    /// Pushes `jmp label`.
    pub fn jump(&mut self, label: Label) {
        self.push_fixup(Instr::Jump { target: 0 }, label);
    }

    /// Resolves all labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::UnboundLabel`] when a referenced label was never
    /// bound, and [`SocError::EmptyProgram`] for an instruction-less
    /// program.
    pub fn finish(mut self) -> Result<Program, SocError> {
        if self.instrs.is_empty() {
            return Err(SocError::EmptyProgram);
        }
        for (idx, label) in self.fixups {
            let target = self.labels[label.0].ok_or(SocError::UnboundLabel { label: label.0 })?;
            match &mut self.instrs[idx] {
                Instr::Beq { target: t, .. }
                | Instr::Bne { target: t, .. }
                | Instr::Blt { target: t, .. }
                | Instr::Bge { target: t, .. }
                | Instr::Jump { target: t } => *t = target,
                other => unreachable!("fixup on non-branch instruction {other}"),
            }
        }
        Ok(Program {
            instrs: self.instrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_are_patched() {
        let mut pb = ProgramBuilder::new();
        let end = pb.new_label();
        pb.jump(end);
        pb.push(Instr::Nop);
        pb.bind(end).expect("fresh label");
        pb.push(Instr::Halt);
        let p = pb.finish().expect("resolvable");
        assert_eq!(p.instrs()[0], Instr::Jump { target: 2 });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let nowhere = pb.new_label();
        pb.jump(nowhere);
        assert_eq!(
            pb.finish().unwrap_err(),
            SocError::UnboundLabel { label: 0 }
        );
    }

    #[test]
    fn rebinding_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let l = pb.new_label();
        pb.bind(l).expect("first bind");
        assert_eq!(pb.bind(l).unwrap_err(), SocError::LabelRebound { label: 0 });
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(
            ProgramBuilder::new().finish().unwrap_err(),
            SocError::EmptyProgram
        );
    }

    #[test]
    fn listing_shows_indices_and_mnemonics() {
        let mut pb = ProgramBuilder::new();
        pb.push(Instr::Nop);
        pb.push(Instr::Halt);
        let listing = pb.finish().expect("non-empty").listing();
        assert!(listing.contains("0: nop"));
        assert!(listing.contains("1: halt"));
    }

    #[test]
    fn all_branch_helpers_resolve() {
        let mut pb = ProgramBuilder::new();
        let top = pb.new_label();
        pb.bind(top).expect("fresh");
        pb.branch_eq(Reg::R0, Reg::R1, top);
        pb.branch_ne(Reg::R0, Reg::R1, top);
        pb.branch_lt(Reg::R0, Reg::R1, top);
        pb.branch_ge(Reg::R0, Reg::R1, top);
        pb.push(Instr::Halt);
        let p = pb.finish().expect("resolvable");
        for instr in &p.instrs()[..4] {
            assert!(instr.is_branch());
        }
    }
}
