//! A synthetic Dhrystone-like benchmark.
//!
//! Dhrystone "reflects the activities of the integer IP processor core,
//! such as integer arithmetic, string operations, logic decisions and
//! memory accesses in a general computing application" (the paper, quoting
//! ARM's benchmarking white paper). This module builds a program for the
//! in-house ISA exercising exactly those four activity classes per
//! iteration, so the background power it produces has the same *texture*
//! (bursty memory phases, branchy logic phases, steady arithmetic phases)
//! as the workload the silicon experiments ran.

use crate::{Instr, Memory, Program, ProgramBuilder, Reg, SocError};

/// Base address of the 16-byte source string.
const SRC: u32 = 0;
/// Base address of the 16-byte destination string.
const DST: u32 = 32;
/// Base address of the 16-entry word array.
const ARRAY: u32 = 64;
/// Length of the strings, in bytes.
const STR_LEN: u32 = 16;

/// Minimum memory size the benchmark needs.
pub const DHRYSTONE_MEMORY_BYTES: usize = 192;

/// Builds the benchmark program.
///
/// Each iteration performs, in order:
///
/// 1. **string copy** — 16 bytes from `SRC` to `DST` (byte loads/stores),
/// 2. **string compare** — the two buffers, with an early-out branch,
/// 3. **integer arithmetic** — a multiply-accumulate chain,
/// 4. **logic decisions** — parity tests steering two branches,
/// 5. **array access** — read-modify-write of a word indexed by the
///    iteration counter.
///
/// With `iterations = 0` the program still runs its setup and halts.
/// Register conventions: `r14` holds the iteration counter, `r15` the
/// iteration bound; `r0`–`r9` are scratch.
///
/// # Errors
///
/// Never fails in practice; the `Result` propagates builder invariants.
pub fn dhrystone_like(iterations: u32) -> Result<Program, SocError> {
    let mut pb = ProgramBuilder::new();
    let r = Reg::R0; // scratch naming below keeps the listing readable

    // -- setup -----------------------------------------------------------
    pb.push(Instr::MovImm {
        rd: Reg::R14,
        imm: 0,
    }); // iteration counter
    pb.push(Instr::MovImm {
        rd: Reg::R15,
        imm: iterations,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R10,
        imm: SRC,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R11,
        imm: DST,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R12,
        imm: ARRAY,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R9,
        imm: 0,
    }); // checksum accumulator

    let outer = pb.new_label();
    let done = pb.new_label();
    pb.bind(outer)?;
    // for (i = 0; i < iterations; ...)
    pb.branch_ge(Reg::R14, Reg::R15, done);

    // -- 1. string copy ----------------------------------------------------
    // for (j = 0; j < 16; j++) dst[j] = src[j];
    pb.push(Instr::MovImm {
        rd: Reg::R1,
        imm: 0,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R2,
        imm: STR_LEN,
    });
    let copy_top = pb.new_label();
    pb.bind(copy_top)?;
    pb.push(Instr::Add {
        rd: Reg::R3,
        ra: Reg::R10,
        rb: Reg::R1,
    });
    pb.push(Instr::LoadByte {
        rd: Reg::R4,
        ra: Reg::R3,
        offset: 0,
    });
    pb.push(Instr::Add {
        rd: Reg::R3,
        ra: Reg::R11,
        rb: Reg::R1,
    });
    pb.push(Instr::StoreByte {
        rs: Reg::R4,
        ra: Reg::R3,
        offset: 0,
    });
    pb.push(Instr::AddImm {
        rd: Reg::R1,
        ra: Reg::R1,
        imm: 1,
    });
    pb.branch_lt(Reg::R1, Reg::R2, copy_top);

    // -- 2. string compare --------------------------------------------------
    // Walk both buffers; r5 accumulates XOR of differences (0 = equal).
    pb.push(Instr::MovImm {
        rd: Reg::R1,
        imm: 0,
    });
    pb.push(Instr::MovImm {
        rd: Reg::R5,
        imm: 0,
    });
    let cmp_top = pb.new_label();
    let cmp_done = pb.new_label();
    pb.bind(cmp_top)?;
    pb.push(Instr::Add {
        rd: Reg::R3,
        ra: Reg::R10,
        rb: Reg::R1,
    });
    pb.push(Instr::LoadByte {
        rd: Reg::R4,
        ra: Reg::R3,
        offset: 0,
    });
    pb.push(Instr::Add {
        rd: Reg::R3,
        ra: Reg::R11,
        rb: Reg::R1,
    });
    pb.push(Instr::LoadByte {
        rd: Reg::R6,
        ra: Reg::R3,
        offset: 0,
    });
    pb.push(Instr::Xor {
        rd: Reg::R7,
        ra: Reg::R4,
        rb: Reg::R6,
    });
    pb.push(Instr::Or {
        rd: Reg::R5,
        ra: Reg::R5,
        rb: Reg::R7,
    });
    // Early out on mismatch (never taken after the copy, but the branch is
    // part of the workload shape).
    pb.push(Instr::MovImm {
        rd: Reg::R8,
        imm: 0,
    });
    pb.branch_ne(Reg::R5, Reg::R8, cmp_done);
    pb.push(Instr::AddImm {
        rd: Reg::R1,
        ra: Reg::R1,
        imm: 1,
    });
    pb.branch_lt(Reg::R1, Reg::R2, cmp_top);
    pb.bind(cmp_done)?;

    // -- 3. integer arithmetic ----------------------------------------------
    // checksum = checksum * 31 + i  (and a sub/shift to vary the mix)
    pb.push(Instr::MovImm {
        rd: Reg::R1,
        imm: 31,
    });
    pb.push(Instr::Mul {
        rd: Reg::R9,
        ra: Reg::R9,
        rb: Reg::R1,
    });
    pb.push(Instr::Add {
        rd: Reg::R9,
        ra: Reg::R9,
        rb: Reg::R14,
    });
    pb.push(Instr::ShrImm {
        rd: Reg::R3,
        ra: Reg::R9,
        amount: 7,
    });
    pb.push(Instr::Sub {
        rd: Reg::R9,
        ra: Reg::R9,
        rb: Reg::R3,
    });

    // -- 4. logic decisions ---------------------------------------------------
    // if (i & 1) checksum += 3; else checksum ^= 0x55;
    pb.push(Instr::MovImm {
        rd: Reg::R1,
        imm: 1,
    });
    pb.push(Instr::And {
        rd: Reg::R2,
        ra: Reg::R14,
        rb: Reg::R1,
    });
    let odd = pb.new_label();
    let after_logic = pb.new_label();
    pb.branch_eq(Reg::R2, Reg::R1, odd);
    pb.push(Instr::MovImm {
        rd: Reg::R3,
        imm: 0x55,
    });
    pb.push(Instr::Xor {
        rd: Reg::R9,
        ra: Reg::R9,
        rb: Reg::R3,
    });
    pb.jump(after_logic);
    pb.bind(odd)?;
    pb.push(Instr::AddImm {
        rd: Reg::R9,
        ra: Reg::R9,
        imm: 3,
    });
    pb.bind(after_logic)?;

    // -- 5. array access --------------------------------------------------------
    // array[i % 16] = array[i % 16] + checksum;
    pb.push(Instr::MovImm {
        rd: Reg::R1,
        imm: 15,
    });
    pb.push(Instr::And {
        rd: Reg::R2,
        ra: Reg::R14,
        rb: Reg::R1,
    });
    pb.push(Instr::ShlImm {
        rd: Reg::R2,
        ra: Reg::R2,
        amount: 2,
    });
    pb.push(Instr::Add {
        rd: Reg::R3,
        ra: Reg::R12,
        rb: Reg::R2,
    });
    pb.push(Instr::LoadWord {
        rd: Reg::R4,
        ra: Reg::R3,
        offset: 0,
    });
    pb.push(Instr::Add {
        rd: Reg::R4,
        ra: Reg::R4,
        rb: Reg::R9,
    });
    pb.push(Instr::StoreWord {
        rs: Reg::R4,
        ra: Reg::R3,
        offset: 0,
    });

    // -- loop back -----------------------------------------------------------
    pb.push(Instr::AddImm {
        rd: Reg::R14,
        ra: Reg::R14,
        imm: 1,
    });
    pb.jump(outer);
    pb.bind(done)?;
    pb.push(Instr::Halt);

    let _ = r;
    pb.finish()
}

/// Initialises data memory for the benchmark (the source string).
///
/// # Errors
///
/// Returns [`SocError::MemoryOutOfBounds`] when `mem` is smaller than
/// [`DHRYSTONE_MEMORY_BYTES`].
pub fn init_dhrystone_memory(mem: &mut Memory) -> Result<(), SocError> {
    mem.load_bytes(SRC, b"DHRYSTONE BENCH\0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cpu, CpuStepOutcome};

    fn run_iterations(iterations: u32) -> (Cpu, Memory, u64) {
        let program = dhrystone_like(iterations).expect("builds");
        let mut cpu = Cpu::new(program);
        let mut mem = Memory::new(DHRYSTONE_MEMORY_BYTES);
        init_dhrystone_memory(&mut mem).expect("fits");
        let cycles = cpu.run_to_halt(&mut mem, 10_000_000).expect("runs");
        (cpu, mem, cycles)
    }

    #[test]
    fn zero_iterations_halts_immediately() {
        let (cpu, _, cycles) = run_iterations(0);
        assert!(cpu.is_halted());
        assert!(cycles < 20);
    }

    #[test]
    fn string_copy_moves_the_source() {
        let (_, mem, _) = run_iterations(1);
        for j in 0..STR_LEN {
            assert_eq!(
                mem.read_u8(DST + j).expect("in range"),
                mem.read_u8(SRC + j).expect("in range"),
                "byte {j} copied"
            );
        }
    }

    #[test]
    fn checksum_is_deterministic_and_iteration_dependent() {
        let (cpu1, _, _) = run_iterations(5);
        let (cpu2, _, _) = run_iterations(5);
        let (cpu3, _, _) = run_iterations(6);
        assert_eq!(cpu1.reg(Reg::R9), cpu2.reg(Reg::R9));
        assert_ne!(cpu1.reg(Reg::R9), cpu3.reg(Reg::R9));
    }

    #[test]
    fn cycles_scale_linearly_with_iterations() {
        let (_, _, c10) = run_iterations(10);
        let (_, _, c20) = run_iterations(20);
        let (_, _, c30) = run_iterations(30);
        // Steady periodic activity: equal increments per 10 iterations.
        assert_eq!(c30 - c20, c20 - c10);
        let per_iter = (c20 - c10) as f64 / 10.0;
        assert!(per_iter > 100.0, "an iteration is a nontrivial workload");
    }

    #[test]
    fn workload_mixes_all_activity_classes() {
        let program = dhrystone_like(3).expect("builds");
        let mut cpu = Cpu::new(program);
        let mut mem = Memory::new(DHRYSTONE_MEMORY_BYTES);
        init_dhrystone_memory(&mut mem).expect("fits");

        let mut total = crate::InstrActivity::default();
        let mut branches = 0u32;
        while let CpuStepOutcome::Executed(act) = cpu.step(&mut mem).expect("runs") {
            total.alu_ops += act.alu_ops;
            total.mem_reads += act.mem_reads;
            total.mem_writes += act.mem_writes;
            total.reg_writes += act.reg_writes;
            branches += act.branch_taken as u32;
        }
        assert!(total.alu_ops > 50, "integer arithmetic present");
        assert!(total.mem_reads > 30, "loads present");
        assert!(total.mem_writes > 20, "stores present");
        assert!(branches > 20, "logic decisions present");
    }

    #[test]
    fn array_accumulates_across_iterations() {
        let (_, mem, _) = run_iterations(16);
        let mut nonzero = 0;
        for k in 0..16 {
            if mem.read_u32(ARRAY + 4 * k).expect("in range") != 0 {
                nonzero += 1;
            }
        }
        assert_eq!(nonzero, 16, "every array slot was touched once");
    }
}
