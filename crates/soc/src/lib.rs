//! A small embedded-SoC simulator producing realistic background power.
//!
//! The paper detects its watermark while an ARM Cortex-M0 runs the
//! Dhrystone benchmark — integer arithmetic, string operations, logic
//! decisions and memory accesses — so the background power the CPA detector
//! has to see through is *structured program activity*, not white noise.
//! This crate provides that substrate:
//!
//! - a small RISC ISA ([`Instr`], [`Cpu`], [`Memory`]) with per-instruction
//!   cycle costs and switching-activity accounting,
//! - a label-resolving [`ProgramBuilder`] and a synthetic
//!   [`dhrystone_like`] benchmark exercising the same activity classes as
//!   Dhrystone,
//! - a direct-mapped [`Cache`] model for the chip-II configuration, and
//! - two SoC configurations matching the paper's test chips:
//!   [`Soc::chip_i`] (Cortex-M0-class SoC) and [`Soc::chip_ii`]
//!   (adds a dual Cortex-A5-class subsystem with active clocks and caches,
//!   contributing "a significant portion of background noise").
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), clockmark_soc::SocError> {
//! use clockmark_soc::Soc;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut soc = Soc::chip_i()?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let background = soc.run(10_000, &mut rng)?;
//! assert_eq!(background.len(), 10_000);
//! // A few milliwatts of structured activity.
//! assert!(background.mean().milliwatts() > 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cpu;
mod crc;
mod dhrystone;
mod error;
mod isa;
mod program;
mod soc;

pub use cache::{Cache, CacheStats};
pub use cpu::{Cpu, CpuStepOutcome, InstrActivity, Memory};
pub use crc::{crc32_like, init_crc_memory, reference_crc32, CRC_MEMORY_BYTES};
pub use dhrystone::{dhrystone_like, init_dhrystone_memory, DHRYSTONE_MEMORY_BYTES};
pub use error::SocError;
pub use isa::{Instr, Reg};
pub use program::{Label, Program, ProgramBuilder};
pub use soc::{CpuPowerProfile, Soc, Workload};
