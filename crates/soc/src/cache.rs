/// Statistics accumulated by a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (causing a line fill).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (zero when no accesses were made).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            return 0.0;
        }
        self.misses as f64 / self.accesses() as f64
    }
}

/// A direct-mapped cache model.
///
/// Used by the chip-II configuration: the paper's second test chip carries
/// a dual Cortex-A5 cluster whose cores "did not execute any program" but
/// whose clocks, caches and bus were active, contributing a significant
/// share of background noise. Cache refill traffic is the bursty component
/// of that noise, so the model only tracks hit/miss — no data.
///
/// ```
/// let mut cache = clockmark_soc::Cache::new(16, 32);
/// assert!(!cache.access(0x40));        // cold miss
/// assert!(cache.access(0x44));         // same 32-byte line
/// assert!(!cache.access(0x40 + 512));  // conflict: same index, new tag
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cache {
    line_bytes: u32,
    tags: Vec<Option<u32>>,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cold cache with `lines` lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `lines` is zero or `line_bytes` is not a power of two.
    pub fn new(lines: usize, line_bytes: u32) -> Self {
        assert!(lines > 0, "cache needs at least one line");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            line_bytes,
            tags: vec![None; lines],
            stats: CacheStats::default(),
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.tags.len()
    }

    /// Looks up `addr`, filling the line on a miss. Returns `true` on hit.
    pub fn access(&mut self, addr: u32) -> bool {
        let line_addr = addr / self.line_bytes;
        let index = (line_addr as usize) % self.tags.len();
        let tag = line_addr / self.tags.len() as u32;
        let hit = self.tags[index] == Some(tag);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.tags[index] = Some(tag);
        }
        hit
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates every line and clears statistics.
    pub fn flush(&mut self) {
        self.tags.fill(None);
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sequential_walk_hits_within_lines() {
        let mut cache = Cache::new(64, 32);
        for addr in (0..2048u32).step_by(4) {
            cache.access(addr);
        }
        // One miss per 32-byte line, seven hits (8 word accesses per line).
        let stats = cache.stats();
        assert_eq!(stats.misses, 64);
        assert_eq!(stats.hits, 448);
    }

    #[test]
    fn conflicting_addresses_evict() {
        let mut cache = Cache::new(4, 16);
        // Two addresses 4*16 = 64 bytes apart map to the same index.
        assert!(!cache.access(0));
        assert!(!cache.access(64));
        assert!(!cache.access(0), "line was evicted by the conflict");
    }

    #[test]
    fn flush_resets_everything() {
        let mut cache = Cache::new(8, 32);
        cache.access(0);
        cache.access(0);
        cache.flush();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(!cache.access(0), "cold again after flush");
    }

    #[test]
    fn miss_ratio_edges() {
        let empty = Cache::new(2, 16);
        assert_eq!(empty.stats().miss_ratio(), 0.0);
        let mut all_miss = Cache::new(1, 16);
        all_miss.access(0);
        all_miss.access(16);
        all_miss.access(32);
        assert_eq!(all_miss.stats().miss_ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_is_rejected() {
        Cache::new(4, 24);
    }

    proptest! {
        #[test]
        fn hits_plus_misses_equals_accesses(addrs in proptest::collection::vec(0u32..1_000_000, 0..500)) {
            let mut cache = Cache::new(32, 64);
            for addr in &addrs {
                cache.access(*addr);
            }
            prop_assert_eq!(cache.stats().accesses(), addrs.len() as u64);
        }

        #[test]
        fn repeated_access_to_one_address_hits_after_first(addr in 0u32..1_000_000) {
            let mut cache = Cache::new(32, 64);
            cache.access(addr);
            for _ in 0..10 {
                prop_assert!(cache.access(addr));
            }
        }
    }
}
