use crate::{Complex64, DspError};

/// An iterative radix-2 Cooley–Tukey FFT plan for power-of-two lengths.
///
/// Construction precomputes the bit-reversal permutation and one table of
/// `n/2` forward twiddle factors; [`forward`](Radix2Plan::forward) and
/// [`inverse`](Radix2Plan::inverse) then run in place with no allocation,
/// so a plan amortises its setup across arbitrarily many transforms.
///
/// The inverse transform conjugates the shared twiddle table on the fly
/// and applies the `1/n` normalisation, so `inverse(forward(x)) == x` up
/// to rounding.
#[derive(Debug, Clone)]
pub struct Radix2Plan {
    n: usize,
    /// Butterfly twiddles `w_n^j = e^{-2πi·j/n}` for `j < n/2`.
    twiddles: Vec<Complex64>,
    /// Bit-reversal permutation of `0..n`.
    bit_rev: Vec<u32>,
}

impl Radix2Plan {
    /// Plans a transform of power-of-two length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyTransform`] for `n = 0` and
    /// [`DspError::NotPowerOfTwo`] for any other non-power-of-two `n`.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyTransform);
        }
        if !n.is_power_of_two() {
            return Err(DspError::NotPowerOfTwo { n });
        }
        let twiddles = (0..n / 2)
            .map(|j| Complex64::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let bit_rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Ok(Radix2Plan {
            n,
            twiddles,
            bit_rev,
        })
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for a length-0 transform (never true; kept for
    /// the conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT: `data[k] ← Σ_j data[j]·e^{-2πi·jk/n}`.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, false);
    }

    /// In-place inverse DFT, normalised by `1/n`.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, true);
        let scale = 1.0 / self.n as f64;
        for v in data {
            *v = v.scale(scale);
        }
    }

    fn transform(&self, data: &mut [Complex64], invert: bool) {
        let n = self.n;
        assert_eq!(
            data.len(),
            n,
            "buffer of length {} for a length-{n} radix-2 plan",
            data.len()
        );
        for i in 0..n {
            let j = self.bit_rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut half = 1usize;
        while half < n {
            let stride = n / (2 * half);
            for block in (0..n).step_by(2 * half) {
                for j in 0..half {
                    let mut w = self.twiddles[j * stride];
                    if invert {
                        w = w.conj();
                    }
                    let a = data[block + j];
                    let b = data[block + j + half] * w;
                    data[block + j] = a + b;
                    data[block + j + half] = a - b;
                }
            }
            half *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, naive_dft};

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(Radix2Plan::new(0).unwrap_err(), DspError::EmptyTransform);
        assert_eq!(
            Radix2Plan::new(12).unwrap_err(),
            DspError::NotPowerOfTwo { n: 12 }
        );
        assert!(Radix2Plan::new(1).is_ok());
    }

    #[test]
    fn matches_the_naive_dft() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let plan = Radix2Plan::new(n).expect("power of two");
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let want = naive_dft(&input);
            let mut got = input.clone();
            plan.forward(&mut got);
            assert_close(&got, &want, 1e-10, &format!("forward n={n}"));
        }
    }

    #[test]
    fn inverse_round_trips() {
        let plan = Radix2Plan::new(128).expect("power of two");
        let input: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-12, "round trip");
    }

    #[test]
    #[should_panic(expected = "length-8")]
    fn wrong_buffer_length_panics() {
        let plan = Radix2Plan::new(8).expect("power of two");
        let mut short = vec![Complex64::ZERO; 4];
        plan.forward(&mut short);
    }
}
