use crate::{Complex64, DspError};

/// An iterative radix-2 Cooley–Tukey FFT plan for power-of-two lengths.
///
/// Construction precomputes the bit-reversal permutation and one table of
/// `n/2` forward twiddle factors; [`forward`](Radix2Plan::forward) and
/// [`inverse`](Radix2Plan::inverse) then run in place with no allocation,
/// so a plan amortises its setup across arbitrarily many transforms.
///
/// The inverse transform conjugates the shared twiddle table on the fly
/// and applies the `1/n` normalisation, so `inverse(forward(x)) == x` up
/// to rounding.
#[derive(Debug, Clone)]
pub struct Radix2Plan {
    n: usize,
    /// Real parts of the butterfly twiddles `w_n^j = e^{-2πi·j/n}` for
    /// `j < n/2`, stored struct-of-arrays so the butterfly core streams
    /// plain `f64` lanes instead of shuffling interleaved pairs.
    tw_re: Vec<f64>,
    /// Imaginary parts of the twiddles (same indexing as `tw_re`).
    tw_im: Vec<f64>,
    /// Bit-reversal permutation of `0..n`.
    bit_rev: Vec<u32>,
}

impl Radix2Plan {
    /// Plans a transform of power-of-two length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyTransform`] for `n = 0` and
    /// [`DspError::NotPowerOfTwo`] for any other non-power-of-two `n`.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyTransform);
        }
        if !n.is_power_of_two() {
            return Err(DspError::NotPowerOfTwo { n });
        }
        let twiddles: Vec<Complex64> = (0..n / 2)
            .map(|j| Complex64::cis(-2.0 * std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        let tw_re = twiddles.iter().map(|w| w.re).collect();
        let tw_im = twiddles.iter().map(|w| w.im).collect();
        let bits = n.trailing_zeros();
        let bit_rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Ok(Radix2Plan {
            n,
            tw_re,
            tw_im,
            bit_rev,
        })
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for a length-0 transform (never true; kept for
    /// the conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT: `data[k] ← Σ_j data[j]·e^{-2πi·jk/n}`.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan length.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.transform(data, false);
    }

    /// In-place inverse DFT, normalised by `1/n`.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan length.
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.transform(data, true);
        let scale = 1.0 / self.n as f64;
        for v in data {
            *v = v.scale(scale);
        }
    }

    /// The struct-of-arrays butterfly core.
    ///
    /// The interleaved `Complex64` buffer is unpacked once into split
    /// `re[]`/`im[]` scratch (applying the bit-reversal permutation in
    /// the same pass), all `log2 n` butterfly stages run on the split
    /// lanes, and the result is packed back. Every per-element formula
    /// is the operand-for-operand expansion of the `Complex64`
    /// arithmetic of the interleaved loop this replaces — the complex
    /// multiply, the conjugation (a sign flip, exact in IEEE-754), and
    /// the add/sub — so the output is bit-identical (pinned by the
    /// `soa_butterflies_are_bit_identical_to_the_interleaved_reference`
    /// test); the split layout and the 4-lane unrolled inner loop are
    /// purely so the compiler can vectorize the lanes.
    fn transform(&self, data: &mut [Complex64], invert: bool) {
        let n = self.n;
        assert_eq!(
            data.len(),
            n,
            "buffer of length {} for a length-{n} radix-2 plan",
            data.len()
        );
        let mut scratch = vec![0.0f64; 2 * n];
        let (re, im) = scratch.split_at_mut(n);
        for i in 0..n {
            let v = data[self.bit_rev[i] as usize];
            re[i] = v.re;
            im[i] = v.im;
        }
        // Conjugating a twiddle flips the sign of its imaginary part;
        // multiplying by ±1.0 is exact, so hoisting the `invert` branch
        // into this factor changes no bits.
        let sgn = if invert { -1.0 } else { 1.0 };
        let mut half = 1usize;
        while half < n {
            let stride = n / (2 * half);
            let mut block = 0usize;
            while block < n {
                let lo = block;
                let hi = block + half;
                let mut j = 0usize;
                while j + 4 <= half {
                    butterfly(
                        re,
                        im,
                        &self.tw_re,
                        &self.tw_im,
                        lo + j,
                        hi + j,
                        j * stride,
                        sgn,
                    );
                    butterfly(
                        re,
                        im,
                        &self.tw_re,
                        &self.tw_im,
                        lo + j + 1,
                        hi + j + 1,
                        (j + 1) * stride,
                        sgn,
                    );
                    butterfly(
                        re,
                        im,
                        &self.tw_re,
                        &self.tw_im,
                        lo + j + 2,
                        hi + j + 2,
                        (j + 2) * stride,
                        sgn,
                    );
                    butterfly(
                        re,
                        im,
                        &self.tw_re,
                        &self.tw_im,
                        lo + j + 3,
                        hi + j + 3,
                        (j + 3) * stride,
                        sgn,
                    );
                    j += 4;
                }
                while j < half {
                    butterfly(
                        re,
                        im,
                        &self.tw_re,
                        &self.tw_im,
                        lo + j,
                        hi + j,
                        j * stride,
                        sgn,
                    );
                    j += 1;
                }
                block += 2 * half;
            }
            half *= 2;
        }
        for i in 0..n {
            data[i] = Complex64::new(re[i], im[i]);
        }
    }
}

/// One butterfly on the split lanes — the operand-for-operand expansion
/// of `b = data[hi] * w; data[lo] = a + b; data[hi] = a - b` from the
/// interleaved formulation (`w` conjugated via `sgn`).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn butterfly(
    re: &mut [f64],
    im: &mut [f64],
    tw_re: &[f64],
    tw_im: &[f64],
    lo: usize,
    hi: usize,
    tw: usize,
    sgn: f64,
) {
    let wr = tw_re[tw];
    let wi = tw_im[tw] * sgn;
    let ar = re[lo];
    let ai = im[lo];
    let xr = re[hi];
    let xi = im[hi];
    let br = xr * wr - xi * wi;
    let bi = xr * wi + xi * wr;
    re[lo] = ar + br;
    im[lo] = ai + bi;
    re[hi] = ar - br;
    im[hi] = ai - bi;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, naive_dft};

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(Radix2Plan::new(0).unwrap_err(), DspError::EmptyTransform);
        assert_eq!(
            Radix2Plan::new(12).unwrap_err(),
            DspError::NotPowerOfTwo { n: 12 }
        );
        assert!(Radix2Plan::new(1).is_ok());
    }

    #[test]
    fn matches_the_naive_dft() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let plan = Radix2Plan::new(n).expect("power of two");
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let want = naive_dft(&input);
            let mut got = input.clone();
            plan.forward(&mut got);
            assert_close(&got, &want, 1e-10, &format!("forward n={n}"));
        }
    }

    #[test]
    fn inverse_round_trips() {
        let plan = Radix2Plan::new(128).expect("power of two");
        let input: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-12, "round trip");
    }

    /// The interleaved scalar formulation the SoA core replaced, kept
    /// as the bit-identity reference.
    fn reference_transform(plan: &Radix2Plan, data: &mut [Complex64], invert: bool) {
        let n = plan.n;
        for i in 0..n {
            let j = plan.bit_rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut half = 1usize;
        while half < n {
            let stride = n / (2 * half);
            for block in (0..n).step_by(2 * half) {
                for j in 0..half {
                    let mut w = Complex64::new(plan.tw_re[j * stride], plan.tw_im[j * stride]);
                    if invert {
                        w = w.conj();
                    }
                    let a = data[block + j];
                    let b = data[block + j + half] * w;
                    data[block + j] = a + b;
                    data[block + j + half] = a - b;
                }
            }
            half *= 2;
        }
    }

    #[test]
    fn soa_butterflies_are_bit_identical_to_the_interleaved_reference() {
        for n in [1usize, 2, 4, 8, 64, 256, 1024] {
            let plan = Radix2Plan::new(n).expect("power of two");
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.73).sin() * 3.0, (i as f64 * 1.31).cos()))
                .collect();
            for invert in [false, true] {
                let mut want = input.clone();
                reference_transform(&plan, &mut want, invert);
                let mut got = input.clone();
                plan.transform(&mut got, invert);
                for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        a.re.to_bits(),
                        b.re.to_bits(),
                        "re[{i}] n={n} invert={invert}"
                    );
                    assert_eq!(
                        a.im.to_bits(),
                        b.im.to_bits(),
                        "im[{i}] n={n} invert={invert}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length-8")]
    fn wrong_buffer_length_panics() {
        let plan = Radix2Plan::new(8).expect("power of two");
        let mut short = vec![Complex64::ZERO; 4];
        plan.forward(&mut short);
    }
}
