use crate::{Complex64, DspError, Radix2Plan};

/// Bluestein's chirp-z FFT plan for arbitrary transform lengths.
///
/// Rewrites the length-`n` DFT as a convolution: with `w = e^{-2πi/n}`
/// and the *chirp* `u_k = w^{k²/2}`,
///
/// ```text
/// X[k] = Σ_j x_j·w^{jk}          and   jk = (j² + k² − (k−j)²)/2, so
/// X[k] = u_k · Σ_j (x_j·u_j) · conj(u_{k−j})
/// ```
///
/// — a linear convolution of the chirp-premultiplied input with the
/// conjugate chirp, which embeds into a circular convolution of any
/// length `m ≥ 2n−1`. Choosing `m` as the next power of two lets the
/// inner transforms run on a [`Radix2Plan`], giving O(n log n) for *any*
/// `n` — including the paper's watermark period P = 4095 = 2¹²−1, which
/// is maximally far from a power of two.
///
/// Construction precomputes the chirp, the FFT of the wrapped conjugate
/// chirp, and the inner radix-2 plan; each transform then costs two
/// inner FFTs plus O(n) chirp multiplies, reusing one scratch buffer
/// across calls (the plan/scratch API the repeated-spectrum hot path
/// relies on — see `docs/cpa-fft.md`).
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    n: usize,
    /// Inner circular-convolution length: the next power of two ≥ 2n−1.
    m: usize,
    inner: Radix2Plan,
    /// `u_k = e^{-iπk²/n}` for `k < n` (angles reduced via `k² mod 2n`).
    chirp: Vec<Complex64>,
    /// Forward FFT of the wrapped conjugate chirp `b`, where `b_0 = 1`,
    /// `b_j = b_{m−j} = e^{+iπj²/n}`.
    b_fft: Vec<Complex64>,
    /// Reused per-transform convolution buffer, length `m`.
    scratch: Vec<Complex64>,
}

impl BluesteinPlan {
    /// Plans a transform of arbitrary length `n ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyTransform`] for `n = 0`.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyTransform);
        }
        let m = (2 * n - 1).next_power_of_two();
        let inner = Radix2Plan::new(m)?;
        // e^{-iπk²/n}: reduce k² modulo 2n first — k² overflows nothing
        // (usize), but the *angle* πk²/n loses precision for large k if
        // taken literally, while k² mod 2n keeps it in (−2π, 0].
        let chirp: Vec<Complex64> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128 % (2 * n as u128)) as f64;
                Complex64::cis(-std::f64::consts::PI * k2 / n as f64)
            })
            .collect();
        let mut b = vec![Complex64::ZERO; m];
        b[0] = Complex64::ONE;
        for j in 1..n {
            let v = chirp[j].conj();
            b[j] = v;
            b[m - j] = v;
        }
        inner.forward(&mut b);
        Ok(BluesteinPlan {
            n,
            m,
            inner,
            chirp,
            b_fft: b,
            scratch: vec![Complex64::ZERO; m],
        })
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for a length-0 transform (never true; kept for
    /// the conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The inner power-of-two convolution length (exposed for benchmarks
    /// and tests; P = 4095 embeds into m = 8192).
    pub fn inner_len(&self) -> usize {
        self.m
    }

    /// In-place forward DFT, identical in meaning to
    /// [`Radix2Plan::forward`] but for any length.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan length.
    pub fn forward(&mut self, data: &mut [Complex64]) {
        assert_eq!(
            data.len(),
            self.n,
            "buffer of length {} for a length-{} Bluestein plan",
            data.len(),
            self.n
        );
        self.scratch.fill(Complex64::ZERO);
        for (k, (&x, &u)) in data.iter().zip(&self.chirp).enumerate() {
            self.scratch[k] = x * u;
        }
        self.inner.forward(&mut self.scratch);
        for (s, &b) in self.scratch.iter_mut().zip(&self.b_fft) {
            *s *= b;
        }
        self.inner.inverse(&mut self.scratch);
        for (out, (&s, &u)) in data.iter_mut().zip(self.scratch.iter().zip(&self.chirp)) {
            *out = s * u;
        }
    }

    /// In-place inverse DFT, normalised by `1/n`.
    ///
    /// Uses the conjugation identity `IDFT(x) = conj(DFT(conj(x)))/n`,
    /// so forward and inverse share every precomputed table.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan length.
    pub fn inverse(&mut self, data: &mut [Complex64]) {
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward(data);
        let scale = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.conj().scale(scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, naive_dft};
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_transforms() {
        assert_eq!(BluesteinPlan::new(0).unwrap_err(), DspError::EmptyTransform);
    }

    #[test]
    fn matches_the_naive_dft_on_awkward_lengths() {
        for n in [1usize, 2, 3, 5, 7, 12, 63, 100, 255] {
            let mut plan = BluesteinPlan::new(n).expect("valid");
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.9).cos(), (i as f64 * 0.4).sin()))
                .collect();
            let want = naive_dft(&input);
            let mut got = input.clone();
            plan.forward(&mut got);
            assert_close(&got, &want, 1e-9, &format!("bluestein n={n}"));
        }
    }

    #[test]
    fn inner_length_for_the_paper_period() {
        let plan = BluesteinPlan::new(4095).expect("valid");
        assert_eq!(plan.inner_len(), 8192);
    }

    #[test]
    fn inverse_round_trips_at_the_paper_period() {
        let n = 4095;
        let mut plan = BluesteinPlan::new(n).expect("valid");
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(((i * 37) % 101) as f64 - 50.0, 0.0))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data);
        plan.inverse(&mut data);
        assert_close(&data, &input, 1e-8, "round trip n=4095");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite proptest (c): on power-of-two lengths — where both
        /// algorithms apply — radix-2 and Bluestein agree.
        #[test]
        fn radix2_and_bluestein_agree_on_powers_of_two(
            log2n in 0u32..9,
            seed in 0u64..1000,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let n = 1usize << log2n;
            let mut rng = StdRng::seed_from_u64(seed);
            let input: Vec<Complex64> = (0..n)
                .map(|_| Complex64::new(rng.random_range(-10.0..10.0), rng.random_range(-10.0..10.0)))
                .collect();

            let radix2 = Radix2Plan::new(n).expect("power of two");
            let mut bluestein = BluesteinPlan::new(n).expect("valid");

            let mut a = input.clone();
            radix2.forward(&mut a);
            let mut b = input.clone();
            bluestein.forward(&mut b);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((*x - *y).abs() < 1e-8, "{x:?} vs {y:?}");
            }

            radix2.inverse(&mut a);
            bluestein.inverse(&mut b);
            for ((x, y), orig) in a.iter().zip(&b).zip(&input) {
                prop_assert!((*x - *y).abs() < 1e-8);
                prop_assert!((*x - *orig).abs() < 1e-8);
            }
        }
    }
}
