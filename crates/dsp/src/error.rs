use std::error::Error;
use std::fmt;

/// Errors produced when building or executing FFT plans.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// A transform of length zero was requested.
    EmptyTransform,
    /// A radix-2 plan was requested for a length that is not a power of
    /// two (use [`FftPlan`](crate::FftPlan), which falls back to
    /// Bluestein's algorithm, for arbitrary lengths).
    NotPowerOfTwo {
        /// The offending length.
        n: usize,
    },
    /// A buffer handed to a plan does not match the plan's length.
    LengthMismatch {
        /// The plan's transform length.
        expected: usize,
        /// The buffer's length.
        got: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptyTransform => write!(f, "cannot plan a length-0 transform"),
            DspError::NotPowerOfTwo { n } => {
                write!(f, "radix-2 FFT requires a power-of-two length, got {n}")
            }
            DspError::LengthMismatch { expected, got } => {
                write!(f, "buffer of length {got} for a length-{expected} plan")
            }
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
        assert!(DspError::NotPowerOfTwo { n: 12 }.to_string().contains("12"));
        assert!(DspError::LengthMismatch {
            expected: 8,
            got: 7
        }
        .to_string()
        .contains("length-8"));
    }
}
