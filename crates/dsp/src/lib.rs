//! std-only digital signal processing kernels for the clockmark
//! detection pipeline.
//!
//! The watermark detector's dominant cost is a circular cross-correlation
//! over the watermark period P (see `clockmark-cpa`); this crate provides
//! the O(P log P) machinery behind it with **no external dependencies**
//! (the build environment has no reachable crate registry):
//!
//! - [`Radix2Plan`]: an iterative in-place Cooley–Tukey FFT for
//!   power-of-two lengths, with precomputed twiddles and bit-reversal;
//! - [`BluesteinPlan`]: the chirp-z transform for *arbitrary* lengths —
//!   the paper's period P = 4095 = 2¹²−1 is as far from a power of two
//!   as it gets — built on an inner radix-2 convolution of length 8192;
//! - [`FftPlan`]: length-dispatched plan combining the two;
//! - [`CircularCorrelator`]: dual real circular cross-correlation against
//!   a cached reference spectrum, one packed complex FFT per call.
//!
//! Everything is a *plan*: construction precomputes twiddle tables and
//! allocates scratch once, and repeated transforms reuse both — the
//! plan-reuse-vs-per-call gap is pinned by the `spectrum_algos` bench.
//!
//! ```
//! use clockmark_dsp::{Complex64, FftPlan};
//!
//! // A single tone lands in a single bin.
//! let n = 48; // not a power of two → Bluestein under the hood
//! let mut plan = FftPlan::new(n)?;
//! let mut data: Vec<Complex64> = (0..n)
//!     .map(|i| Complex64::cis(2.0 * std::f64::consts::PI * 3.0 * i as f64 / n as f64))
//!     .collect();
//! plan.forward(&mut data);
//! assert!((data[3].re - n as f64).abs() < 1e-9);
//! assert!(data[7].abs() < 1e-9);
//! # Ok::<(), clockmark_dsp::DspError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bluestein;
mod complex;
mod correlate;
mod error;
mod multi;
mod plan;
mod radix2;

pub use bluestein::BluesteinPlan;
pub use complex::Complex64;
pub use correlate::{circular_cross_correlation_naive, CircularCorrelator};
pub use error::DspError;
pub use multi::MultiCorrelator;
pub use plan::FftPlan;
pub use radix2::Radix2Plan;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::Complex64;

    /// O(n²) reference DFT every kernel is pinned against.
    pub fn naive_dft(input: &[Complex64]) -> Vec<Complex64> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex64::ZERO;
                for (j, &x) in input.iter().enumerate() {
                    let angle = -2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                    acc += x * Complex64::cis(angle);
                }
                acc
            })
            .collect()
    }

    /// Asserts element-wise closeness with a scale-aware tolerance.
    pub fn assert_close(got: &[Complex64], want: &[Complex64], tol: f64, what: &str) {
        assert_eq!(got.len(), want.len(), "{what}: length");
        let scale = want.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (*g - *w).abs() <= tol * scale,
                "{what}: bin {i}: {g:?} vs {w:?} (scale {scale:.3e})"
            );
        }
    }
}
