use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// The minimal arithmetic the FFT kernels need — nothing more. Layout is
/// `repr(C)` so a `&[Complex64]` scratch buffer is just an interleaved
/// re/im array, the format every textbook FFT operates on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };

    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Builds a complex number from its parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// The unit phasor `e^{iθ} = cos θ + i·sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (sin, cos) = theta.sin_cos();
        Complex64 { re: cos, im: sin }
    }

    /// The complex conjugate.
    #[inline]
    pub const fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// The squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(3.0, -2.0);
        let b = Complex64::new(-1.0, 4.0);
        assert_eq!(a + b, Complex64::new(2.0, 2.0));
        assert_eq!(a - b, Complex64::new(4.0, -6.0));
        // (3 - 2i)(-1 + 4i) = -3 + 12i + 2i + 8 = 5 + 14i
        assert_eq!(a * b, Complex64::new(5.0, 14.0));
        assert_eq!(-a, Complex64::new(-3.0, 2.0));
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a + Complex64::ZERO, a);
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let p = a * a.conj();
        assert_eq!(p.re, 25.0);
        assert_eq!(p.im, 0.0);
    }

    #[test]
    fn cis_walks_the_unit_circle() {
        let q = Complex64::cis(std::f64::consts::FRAC_PI_2);
        assert!(q.re.abs() < 1e-15 && (q.im - 1.0).abs() < 1e-15);
        assert!((Complex64::cis(0.0) - Complex64::ONE).abs() < 1e-15);
    }
}
