use crate::{Complex64, DspError, FftPlan};

/// Many-pattern circular cross-correlation against one cached signal
/// transform — the batched dual of [`CircularCorrelator`](crate::CircularCorrelator).
///
/// [`CircularCorrelator`](crate::CircularCorrelator) caches the
/// *reference* (pattern) transform and streams signal pairs past it; the
/// identification workload is the transpose: one trace, many candidate
/// patterns. `MultiCorrelator` caches `Z = DFT(a + i·b)` for a signal
/// pair `(a, b)` once via [`set_signals`](Self::set_signals) and then
/// correlates any number of patterns against it:
///
/// - [`correlate_one`](Self::correlate_one) transforms a single pattern
///   (one forward + one inverse FFT) and produces outputs **bit-identical**
///   to `CircularCorrelator::correlate_dual` with that pattern as the
///   reference — the elementwise product `X ⊙ conj(Z)` and the inverse
///   transform see exactly the same operand bits, so downstream byte-
///   stability contracts survive the batching.
/// - [`correlate_pair`](Self::correlate_pair) extends the two-for-one
///   packing to *pattern pairs*: two real patterns ride one forward
///   transform as `x_p + i·x_q` and are split by Hermitian symmetry,
///   so a pair costs one forward + two inverse FFTs (1.5 per pattern
///   instead of 2). The split introduces its own rounding, so results
///   agree with `correlate_one` to FFT precision (~1e-12 relative), not
///   bit-for-bit.
///
/// ```
/// use clockmark_dsp::MultiCorrelator;
///
/// let mut multi = MultiCorrelator::new(4)?;
/// multi.set_signals(&[1.0, 2.0, 3.0, 4.0], &[1.0, 1.0, 0.0, 0.0])?;
/// let (mut f, mut g) = ([0.0; 4], [0.0; 4]);
/// multi.correlate_one(&[1.0, 0.0, 1.0, 0.0], &mut f, &mut g)?;
/// // f[0] = a[0] + a[2] = 4, f[1] = a[3] + a[1] = 6
/// assert!((f[0] - 4.0).abs() < 1e-12 && (f[1] - 6.0).abs() < 1e-12);
/// # Ok::<(), clockmark_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiCorrelator {
    n: usize,
    plan: FftPlan,
    /// `DFT(a + i·b)`, set by [`set_signals`](Self::set_signals).
    signals_fft: Option<Vec<Complex64>>,
    /// Packed pattern(s) → forward transform workspace.
    packed: Vec<Complex64>,
    /// Product → inverse transform workspace.
    work: Vec<Complex64>,
}

impl MultiCorrelator {
    /// Builds a correlator for signals of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyTransform`] for `n = 0`.
    pub fn new(n: usize) -> Result<Self, DspError> {
        Ok(MultiCorrelator {
            n,
            plan: FftPlan::new(n)?,
            signals_fft: None,
            packed: vec![Complex64::ZERO; n],
            work: vec![Complex64::ZERO; n],
        })
    }

    /// The signal length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the correlator is for length-0 signals (never true; kept
    /// for the conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether a signal-pair transform is cached.
    pub fn has_signals(&self) -> bool {
        self.signals_fft.is_some()
    }

    /// Computes and caches the packed signal-pair transform
    /// `Z = DFT(a + i·b)`; one forward FFT, reused by every subsequent
    /// correlate call.
    ///
    /// The packing is bit-identical to the one
    /// `CircularCorrelator::correlate_dual` performs per call, so the
    /// cached transform carries exactly the bits the per-call path would
    /// recompute.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when either signal's length
    /// differs from the correlator's.
    pub fn set_signals(&mut self, a: &[f64], b: &[f64]) -> Result<(), DspError> {
        let n = self.n;
        for len in [a.len(), b.len()] {
            if len != n {
                return Err(DspError::LengthMismatch {
                    expected: n,
                    got: len,
                });
            }
        }
        let mut fft: Vec<Complex64> = a
            .iter()
            .zip(b)
            .map(|(&va, &vb)| Complex64::new(va, vb))
            .collect();
        self.plan.forward(&mut fft);
        self.signals_fft = Some(fft);
        Ok(())
    }

    /// Correlates one real pattern `x` against the cached signal pair:
    /// `out_a[r] = Σ_j x[j]·a[(j−r) mod n]`, likewise for `b`.
    ///
    /// One forward + one inverse FFT. Outputs are bit-identical to
    /// `CircularCorrelator::correlate_dual(a, b, ..)` with reference `x`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when any buffer's length
    /// differs from the correlator's, or when no signals have been set
    /// (reported as a length-0 mismatch).
    pub fn correlate_one(
        &mut self,
        x: &[f64],
        out_a: &mut [f64],
        out_b: &mut [f64],
    ) -> Result<(), DspError> {
        let n = self.n;
        for len in [x.len(), out_a.len(), out_b.len()] {
            if len != n {
                return Err(DspError::LengthMismatch {
                    expected: n,
                    got: len,
                });
            }
        }
        let signals_fft = self.signals_fft.as_ref().ok_or(DspError::LengthMismatch {
            expected: n,
            got: 0,
        })?;

        for (slot, &v) in self.packed.iter_mut().zip(x) {
            *slot = Complex64::from(v);
        }
        self.plan.forward(&mut self.packed);
        // X ⊙ conj(Z): identical operand bits to the per-call dual path.
        for ((slot, &x_k), &z_k) in self.work.iter_mut().zip(&self.packed).zip(signals_fft) {
            *slot = x_k * z_k.conj();
        }
        self.plan.inverse(&mut self.work);
        for ((oa, ob), &g) in out_a.iter_mut().zip(out_b.iter_mut()).zip(&self.work) {
            *oa = g.re;
            *ob = -g.im;
        }
        Ok(())
    }

    /// Correlates a *pair* of real patterns against the cached signal
    /// pair in one packed forward transform: `x_p + i·x_q` is transformed
    /// once and split into `X_p`/`X_q` by Hermitian symmetry
    /// (`X_p(k) = (W(k) + conj(W(n−k)))/2`,
    /// `X_q(k) = −i·(W(k) − conj(W(n−k)))/2`), then each half is
    /// multiplied by `conj(Z)` and inverse-transformed.
    ///
    /// One forward + two inverse FFTs for two patterns — 1.5 transforms
    /// per pattern against `correlate_one`'s 2. The Hermitian split adds
    /// rounding of its own, so outputs match [`correlate_one`](Self::correlate_one) to FFT
    /// precision (~1e-12 relative), not bit-for-bit; callers that persist
    /// bytes should use [`correlate_one`](Self::correlate_one).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when any buffer's length
    /// differs from the correlator's, or when no signals have been set
    /// (reported as a length-0 mismatch).
    #[allow(clippy::too_many_arguments)]
    pub fn correlate_pair(
        &mut self,
        x_p: &[f64],
        x_q: &[f64],
        out_pa: &mut [f64],
        out_pb: &mut [f64],
        out_qa: &mut [f64],
        out_qb: &mut [f64],
    ) -> Result<(), DspError> {
        let n = self.n;
        for len in [
            x_p.len(),
            x_q.len(),
            out_pa.len(),
            out_pb.len(),
            out_qa.len(),
            out_qb.len(),
        ] {
            if len != n {
                return Err(DspError::LengthMismatch {
                    expected: n,
                    got: len,
                });
            }
        }
        if self.signals_fft.is_none() {
            return Err(DspError::LengthMismatch {
                expected: n,
                got: 0,
            });
        }

        // W = DFT(x_p + i·x_q): both patterns in one forward transform.
        for (slot, (&vp, &vq)) in self.packed.iter_mut().zip(x_p.iter().zip(x_q)) {
            *slot = Complex64::new(vp, vq);
        }
        self.plan.forward(&mut self.packed);

        self.product_half(Half::P);
        self.plan.inverse(&mut self.work);
        for ((oa, ob), &g) in out_pa.iter_mut().zip(out_pb.iter_mut()).zip(&self.work) {
            *oa = g.re;
            *ob = -g.im;
        }

        self.product_half(Half::Q);
        self.plan.inverse(&mut self.work);
        for ((oa, ob), &g) in out_qa.iter_mut().zip(out_qb.iter_mut()).zip(&self.work) {
            *oa = g.re;
            *ob = -g.im;
        }
        Ok(())
    }

    /// Unpacks one pattern's transform from the packed `W` by Hermitian
    /// symmetry and multiplies it by `conj(Z)` into the work buffer.
    fn product_half(&mut self, half: Half) {
        let n = self.n;
        let z = self
            .signals_fft
            .as_ref()
            .expect("checked by correlate_pair");
        for (k, z_k) in z.iter().enumerate().take(n) {
            let w_k = self.packed[k];
            let w_rev = self.packed[(n - k) % n].conj();
            let x_k = match half {
                // X_p(k) = (W(k) + conj(W(n−k))) / 2
                Half::P => (w_k + w_rev).scale(0.5),
                // X_q(k) = −i·(W(k) − conj(W(n−k))) / 2
                Half::Q => (w_k - w_rev) * Complex64::new(0.0, -0.5),
            };
            self.work[k] = x_k * z_k.conj();
        }
    }
}

/// Which pattern of a packed pair to unpack.
#[derive(Clone, Copy)]
enum Half {
    P,
    Q,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{circular_cross_correlation_naive, CircularCorrelator};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn missing_signals_is_an_error() {
        let mut multi = MultiCorrelator::new(4).expect("valid");
        let (mut a, mut b) = ([0.0; 4], [0.0; 4]);
        assert!(multi.correlate_one(&[0.0; 4], &mut a, &mut b).is_err());
        let (mut c, mut d) = ([0.0; 4], [0.0; 4]);
        assert!(multi
            .correlate_pair(&[0.0; 4], &[0.0; 4], &mut a, &mut b, &mut c, &mut d)
            .is_err());
    }

    #[test]
    fn length_mismatches_are_errors() {
        let mut multi = MultiCorrelator::new(4).expect("valid");
        assert_eq!(
            multi.set_signals(&[0.0; 3], &[0.0; 4]).unwrap_err(),
            DspError::LengthMismatch {
                expected: 4,
                got: 3
            }
        );
        multi.set_signals(&[0.0; 4], &[0.0; 4]).expect("valid");
        let (mut a, mut b) = ([0.0; 4], [0.0; 3]);
        assert_eq!(
            multi.correlate_one(&[0.0; 4], &mut a, &mut b).unwrap_err(),
            DspError::LengthMismatch {
                expected: 4,
                got: 3
            }
        );
    }

    #[test]
    fn correlate_one_is_bit_identical_to_the_dual_path() {
        let mut rng = StdRng::seed_from_u64(0x9e37);
        for n in [2usize, 3, 8, 31, 48, 127] {
            let a: Vec<f64> = (0..n).map(|_| rng.random_range(-4.0..4.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..9.0)).collect();
            let mut multi = MultiCorrelator::new(n).expect("valid");
            multi.set_signals(&a, &b).expect("valid");
            let mut corr = CircularCorrelator::new(n).expect("valid");
            for _ in 0..4 {
                let x: Vec<f64> = (0..n).map(|_| f64::from(rng.random_range(0..2))).collect();
                let (mut fa, mut fb) = (vec![0.0; n], vec![0.0; n]);
                multi.correlate_one(&x, &mut fa, &mut fb).expect("valid");
                corr.set_reference(&x);
                let (mut ga, mut gb) = (vec![0.0; n], vec![0.0; n]);
                corr.correlate_dual(&a, &b, &mut ga, &mut gb)
                    .expect("valid");
                for r in 0..n {
                    assert_eq!(fa[r].to_bits(), ga[r].to_bits(), "n={n} a lag {r}");
                    assert_eq!(fb[r].to_bits(), gb[r].to_bits(), "n={n} b lag {r}");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn packed_pairs_match_the_naive_loop(
            n in 2usize..70,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a: Vec<f64> = (0..n).map(|_| rng.random_range(-4.0..4.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..9.0)).collect();
            let x_p: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..2.0)).collect();
            let x_q: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..2.0)).collect();

            let mut multi = MultiCorrelator::new(n).expect("valid");
            multi.set_signals(&a, &b).expect("valid");
            let (mut pa, mut pb) = (vec![0.0; n], vec![0.0; n]);
            let (mut qa, mut qb) = (vec![0.0; n], vec![0.0; n]);
            multi
                .correlate_pair(&x_p, &x_q, &mut pa, &mut pb, &mut qa, &mut qb)
                .expect("valid");

            for (got, x, sig, what) in [
                (&pa, &x_p, &a, "pa"),
                (&pb, &x_p, &b, "pb"),
                (&qa, &x_q, &a, "qa"),
                (&qb, &x_q, &b, "qb"),
            ] {
                let want = circular_cross_correlation_naive(x, sig);
                for r in 0..n {
                    prop_assert!(
                        (got[r] - want[r]).abs() < 1e-8,
                        "{what} lag {r}: {} vs {}",
                        got[r],
                        want[r]
                    );
                }
            }
        }
    }
}
