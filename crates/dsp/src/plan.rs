use crate::{BluesteinPlan, Complex64, DspError, Radix2Plan};

/// An FFT plan for any length: radix-2 when the length is a power of two,
/// Bluestein's chirp-z otherwise.
///
/// Plans own their twiddle tables and (for Bluestein) a reused scratch
/// buffer, so the per-transform cost after construction is allocation-free
/// for radix-2 and amortised for Bluestein. Build one per transform
/// length and keep it alive across calls:
///
/// ```
/// use clockmark_dsp::{Complex64, FftPlan};
///
/// let mut plan = FftPlan::new(6)?; // not a power of two → Bluestein
/// let mut data: Vec<Complex64> = (0..6).map(|i| Complex64::from(i as f64)).collect();
/// plan.forward(&mut data);
/// // DC bin holds the sum 0+1+…+5.
/// assert!((data[0].re - 15.0).abs() < 1e-9);
/// plan.inverse(&mut data);
/// assert!((data[3].re - 3.0).abs() < 1e-9);
/// # Ok::<(), clockmark_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub enum FftPlan {
    /// Power-of-two length, handled by the iterative Cooley–Tukey kernel.
    Radix2(Radix2Plan),
    /// Arbitrary length, handled by the chirp-z convolution.
    Bluestein(BluesteinPlan),
}

impl FftPlan {
    /// Plans a transform of length `n ≥ 1`, selecting the kernel by
    /// length.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyTransform`] for `n = 0`.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyTransform);
        }
        if n.is_power_of_two() {
            Ok(FftPlan::Radix2(Radix2Plan::new(n)?))
        } else {
            Ok(FftPlan::Bluestein(BluesteinPlan::new(n)?))
        }
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        match self {
            FftPlan::Radix2(p) => p.len(),
            FftPlan::Bluestein(p) => p.len(),
        }
    }

    /// Whether the plan is for a length-0 transform (never true; kept for
    /// the conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-place forward DFT.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan length.
    pub fn forward(&mut self, data: &mut [Complex64]) {
        match self {
            FftPlan::Radix2(p) => p.forward(data),
            FftPlan::Bluestein(p) => p.forward(data),
        }
    }

    /// In-place inverse DFT, normalised by `1/n`.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` differs from the plan length.
    pub fn inverse(&mut self, data: &mut [Complex64]) {
        match self {
            FftPlan::Radix2(p) => p.inverse(data),
            FftPlan::Bluestein(p) => p.inverse(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_close, naive_dft};

    #[test]
    fn selects_the_kernel_by_length() {
        assert!(matches!(
            FftPlan::new(8).expect("valid"),
            FftPlan::Radix2(_)
        ));
        assert!(matches!(
            FftPlan::new(12).expect("valid"),
            FftPlan::Bluestein(_)
        ));
        assert_eq!(FftPlan::new(0).unwrap_err(), DspError::EmptyTransform);
    }

    #[test]
    fn both_kernels_match_the_naive_dft() {
        for n in [16usize, 21] {
            let mut plan = FftPlan::new(n).expect("valid");
            assert_eq!(plan.len(), n);
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new(i as f64 - 3.0, (i as f64 * 0.2).sin()))
                .collect();
            let want = naive_dft(&input);
            let mut got = input.clone();
            plan.forward(&mut got);
            assert_close(&got, &want, 1e-9, &format!("plan n={n}"));
            plan.inverse(&mut got);
            assert_close(&got, &input, 1e-9, &format!("plan round trip n={n}"));
        }
    }
}
