use crate::{Complex64, DspError, FftPlan};

/// Circular cross-correlation of real signals against a cached reference,
/// via the convolution theorem.
///
/// For a reference `x` and a signal `a`, both of length `n`, computes
///
/// ```text
/// f[r] = Σ_j x[j] · a[(j − r) mod n]      for every lag r in 0..n
/// ```
///
/// in O(n log n): `f = IDFT(DFT(x) ⊙ conj(DFT(a)))`. Two signals are
/// correlated per call by packing them into one complex transform
/// (`a + i·b`), so a [`correlate_dual`](CircularCorrelator::correlate_dual)
/// costs one forward and one inverse FFT — the reference's transform is
/// computed once by [`set_reference`](CircularCorrelator::set_reference)
/// and reused for every subsequent call.
///
/// This is exactly the shape of the rotational-CPA spectrum: both
/// per-rotation sums of the folded detector are circular correlations of
/// the per-residue fold against the watermark's ones-indicator (see
/// `docs/cpa-fft.md` for the derivation).
///
/// ```
/// use clockmark_dsp::CircularCorrelator;
///
/// let mut corr = CircularCorrelator::new(4)?;
/// corr.set_reference(&[1.0, 0.0, 1.0, 0.0]);
/// let mut f = [0.0; 4];
/// let mut g = [0.0; 4];
/// corr.correlate_dual(&[1.0, 2.0, 3.0, 4.0], &[1.0, 1.0, 0.0, 0.0], &mut f, &mut g)?;
/// // f[0] = a[0] + a[2] = 4, f[1] = a[3] + a[1] = 6
/// assert!((f[0] - 4.0).abs() < 1e-12 && (f[1] - 6.0).abs() < 1e-12);
/// # Ok::<(), clockmark_dsp::DspError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CircularCorrelator {
    n: usize,
    plan: FftPlan,
    /// `DFT(reference)`, set by [`set_reference`](Self::set_reference).
    reference_fft: Option<Vec<Complex64>>,
    /// Reused packed-signal buffer.
    buf: Vec<Complex64>,
}

impl CircularCorrelator {
    /// Builds a correlator for signals of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyTransform`] for `n = 0`.
    pub fn new(n: usize) -> Result<Self, DspError> {
        Ok(CircularCorrelator {
            n,
            plan: FftPlan::new(n)?,
            reference_fft: None,
            buf: vec![Complex64::ZERO; n],
        })
    }

    /// The signal length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the correlator is for length-0 signals (never true; kept
    /// for the conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether a reference transform is cached.
    pub fn has_reference(&self) -> bool {
        self.reference_fft.is_some()
    }

    /// Computes and caches the reference's transform; one forward FFT.
    ///
    /// # Panics
    ///
    /// Panics when `x.len()` differs from the correlator length.
    pub fn set_reference(&mut self, x: &[f64]) {
        assert_eq!(
            x.len(),
            self.n,
            "reference of length {} for a length-{} correlator",
            x.len(),
            self.n
        );
        let mut fft: Vec<Complex64> = x.iter().map(|&v| Complex64::from(v)).collect();
        self.plan.forward(&mut fft);
        self.reference_fft = Some(fft);
    }

    /// Correlates two real signals against the cached reference in one
    /// packed transform: `out_a[r] = Σ_j x[j]·a[(j−r) mod n]` and
    /// likewise for `b`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::LengthMismatch`] when any buffer's length
    /// differs from the correlator's, or when no reference has been set
    /// (reported as a length-0 mismatch).
    pub fn correlate_dual(
        &mut self,
        a: &[f64],
        b: &[f64],
        out_a: &mut [f64],
        out_b: &mut [f64],
    ) -> Result<(), DspError> {
        let n = self.n;
        for len in [a.len(), b.len(), out_a.len(), out_b.len()] {
            if len != n {
                return Err(DspError::LengthMismatch {
                    expected: n,
                    got: len,
                });
            }
        }
        let reference_fft = self
            .reference_fft
            .as_ref()
            .ok_or(DspError::LengthMismatch {
                expected: n,
                got: 0,
            })?;

        // Pack: z = a + i·b, so one transform carries both signals.
        for (slot, (&va, &vb)) in self.buf.iter_mut().zip(a.iter().zip(b)) {
            *slot = Complex64::new(va, vb);
        }
        self.plan.forward(&mut self.buf);
        // X ⊙ conj(Z) = X·conj(A) − i·X·conj(B); the inverse transform is
        // linear, so g = f_a − i·f_b with both correlations real.
        for (slot, &x) in self.buf.iter_mut().zip(reference_fft) {
            *slot = x * slot.conj();
        }
        self.plan.inverse(&mut self.buf);
        for ((oa, ob), &g) in out_a.iter_mut().zip(out_b.iter_mut()).zip(&self.buf) {
            *oa = g.re;
            *ob = -g.im;
        }
        Ok(())
    }
}

/// Reference O(n²) circular cross-correlation, kept public so callers and
/// benchmarks can pin the FFT path against it.
///
/// # Panics
///
/// Panics when the two signals' lengths differ.
pub fn circular_cross_correlation_naive(x: &[f64], a: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.len(), "signals must share a length");
    let n = x.len();
    (0..n)
        .map(|r| (0..n).map(|j| x[j] * a[(j + n - r) % n]).sum::<f64>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn missing_reference_is_an_error() {
        let mut corr = CircularCorrelator::new(4).expect("valid");
        let mut out = [0.0; 4];
        let mut out2 = [0.0; 4];
        assert!(corr
            .correlate_dual(&[0.0; 4], &[0.0; 4], &mut out, &mut out2)
            .is_err());
    }

    #[test]
    fn length_mismatches_are_errors() {
        let mut corr = CircularCorrelator::new(4).expect("valid");
        corr.set_reference(&[1.0, 0.0, 0.0, 0.0]);
        let mut out = [0.0; 4];
        let mut short = [0.0; 3];
        assert_eq!(
            corr.correlate_dual(&[0.0; 4], &[0.0; 4], &mut out, &mut short)
                .unwrap_err(),
            DspError::LengthMismatch {
                expected: 4,
                got: 3
            }
        );
    }

    #[test]
    fn identity_reference_rotates_the_signal() {
        // x = δ₀ → f[r] = a[(0 − r) mod n] = a[n − r].
        let n = 5;
        let mut corr = CircularCorrelator::new(n).expect("valid");
        let mut x = vec![0.0; n];
        x[0] = 1.0;
        corr.set_reference(&x);
        let a = [10.0, 20.0, 30.0, 40.0, 50.0];
        let mut f = [0.0; 5];
        let mut g = [0.0; 5];
        corr.correlate_dual(&a, &a, &mut f, &mut g).expect("valid");
        for r in 0..n {
            let want = a[(n - r) % n];
            assert!((f[r] - want).abs() < 1e-9, "r={r}: {} vs {want}", f[r]);
            assert!((g[r] - want).abs() < 1e-9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn fft_correlation_matches_the_naive_loop(
            n in 2usize..70,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let x: Vec<f64> = (0..n).map(|_| rng.random_range(-4.0..4.0)).collect();
            let a: Vec<f64> = (0..n).map(|_| rng.random_range(-4.0..4.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..9.0)).collect();

            let mut corr = CircularCorrelator::new(n).expect("valid");
            corr.set_reference(&x);
            let mut fa = vec![0.0; n];
            let mut fb = vec![0.0; n];
            corr.correlate_dual(&a, &b, &mut fa, &mut fb).expect("valid");

            let wa = circular_cross_correlation_naive(&x, &a);
            let wb = circular_cross_correlation_naive(&x, &b);
            for r in 0..n {
                prop_assert!((fa[r] - wa[r]).abs() < 1e-8, "a lag {r}: {} vs {}", fa[r], wa[r]);
                prop_assert!((fb[r] - wb[r]).abs() < 1e-8, "b lag {r}: {} vs {}", fb[r], wb[r]);
            }
        }
    }
}
