//! The fleet coordinator: shard scheduling, work stealing, death
//! detection, and the byte-identical merged report.
//!
//! The fleet directory **is** a campaign directory — `Campaign::create`
//! persists the full single-node spec into `fleet.json`'s sibling
//! `campaign.json`, the merged outcomes land in the same
//! `results.jsonl`, and the final `report.json` is written with the
//! exact bytes `Campaign::run` would have produced. `campaign status`
//! pointed at a fleet directory therefore renders the same one-line
//! progress a local run would show, fed by the aggregated
//! `progress.json` this module publishes from worker heartbeats.
//!
//! ## Scheduling
//!
//! Each worker gets two connections: a **work** connection that blocks
//! inside `ShardAssign` for as long as the shard runs, and a
//! **heartbeat** connection polled on a short interval. A shard's
//! preferred worker comes from the consistent-hash [`Ring`]; an idle
//! worker with no preferred shard pending *steals* the oldest pending
//! shard (counted in `fleet.shards_stolen`). A worker whose work
//! connection drops or whose heartbeat goes quiet for
//! [`FleetConfig::heartbeat_misses`] intervals is declared dead: its
//! in-flight shard is requeued (`fleet.shards_reassigned`) and resumes
//! from its on-disk checkpoints on whichever worker claims it next.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::FleetError;
use crate::hash::Ring;
use crate::plan::{shard_dir, shard_spec, FleetPlan};
use clockmark::{Campaign, CampaignProgress, CampaignSpec, JobOutcome};
use clockmark_corpus::Corpus;
use clockmark_serve::{Backoff, Client, WorkerHeartbeat};

/// How a fleet campaign is split and supervised.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The fleet (= campaign) directory; created if absent, resumed if
    /// it already holds a `campaign.json`.
    pub dir: PathBuf,
    /// Worker addresses (`host:port`), each a `clockmark-serve` node
    /// with a fleet service installed.
    pub workers: Vec<String>,
    /// Shards to split the trace set into; 0 picks `4 × workers`, the
    /// granularity sweet spot between steal opportunities and per-shard
    /// campaign overhead.
    pub shards: u64,
    /// Threads each worker runs its shard with (0 = worker default).
    pub worker_threads: u32,
    /// Heartbeat polling interval.
    pub heartbeat_interval: Duration,
    /// Consecutive missed heartbeats that declare a worker dead.
    pub heartbeat_misses: u32,
    /// Test hook: cap jobs per `ShardAssign` (0 = run shards to
    /// completion). An interrupted shard is requeued, so the fleet
    /// still drains — in more, smaller steps.
    pub max_jobs_per_assign: u64,
    /// Test hook: checkpoint-interrupt each job after this many cycles
    /// per assignment (0 = off); mirrors
    /// `CampaignLimits::interrupt_job_after_cycles`.
    pub interrupt_after_cycles: u64,
}

impl FleetConfig {
    /// A config over `dir` and `workers` with default supervision
    /// tuning.
    pub fn new(dir: impl Into<PathBuf>, workers: Vec<String>) -> Self {
        FleetConfig {
            dir: dir.into(),
            workers,
            shards: 0,
            worker_threads: 0,
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_misses: 4,
            max_jobs_per_assign: 0,
            interrupt_after_cycles: 0,
        }
    }

    fn effective_shards(&self) -> u64 {
        if self.shards > 0 {
            self.shards
        } else {
            (self.workers.len() as u64).max(1) * 4
        }
    }
}

/// A point-in-time summary of a finished fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSummary {
    /// Jobs in the campaign.
    pub total_jobs: usize,
    /// Jobs with a merged outcome (equals `total_jobs` on success).
    pub merged_jobs: usize,
    /// Non-empty shards in the plan.
    pub shards: usize,
    /// Shards run by a worker other than their ring-preferred one.
    pub shards_stolen: u64,
    /// Shard requeues caused by worker death.
    pub shards_reassigned: u64,
    /// Workers that died during the run.
    pub workers_lost: usize,
    /// Where the merged report was written.
    pub report_path: PathBuf,
}

/// A live snapshot of fleet-wide progress, aggregated from heartbeats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetProgress {
    /// Jobs merged plus jobs landed inside in-flight shards.
    pub done: u64,
    /// Total jobs.
    pub total: u64,
    /// Workers currently alive.
    pub workers_alive: usize,
    /// Summed ingest throughput of in-flight shards, cycles/second.
    pub cycles_per_sec: f64,
}

/// Shared scheduler state behind one mutex; the condvar wakes idle
/// work threads when shards are (re)queued or the run ends.
struct State {
    pending: VecDeque<u64>,
    /// worker → shard currently assigned on its work connection.
    running: HashMap<String, u64>,
    done: BTreeSet<u64>,
    /// Campaign-global job indices already merged into `results.jsonl`.
    landed: BTreeSet<usize>,
    alive: HashMap<String, bool>,
    heartbeats: HashMap<String, WorkerHeartbeat>,
    stolen: u64,
    reassigned: u64,
    /// Set when the run can no longer make progress.
    failed: bool,
}

impl State {
    fn finished(&self, shard_count: usize) -> bool {
        self.done.len() == shard_count || self.failed
    }

    fn workers_alive(&self) -> usize {
        self.alive.values().filter(|a| **a).count()
    }

    /// Declares `worker` dead, requeueing its in-flight shard (front of
    /// the queue: it has the freshest checkpoints, finish it first).
    fn bury(&mut self, worker: &str) {
        if self.alive.insert(worker.to_owned(), false) != Some(true) {
            return;
        }
        self.heartbeats.remove(worker);
        if let Some(shard) = self.running.remove(worker) {
            if !self.done.contains(&shard) && !self.pending.contains(&shard) {
                self.pending.push_front(shard);
                self.reassigned += 1;
                clockmark_obs::counter_add("fleet.shards_reassigned", 1);
            }
        }
    }
}

struct Scheduler {
    state: Mutex<State>,
    wake: Condvar,
    ring: Ring,
    shard_count: usize,
}

impl Scheduler {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until a shard is available for `worker` (preferring its
    /// own ring share, stealing otherwise) or the run ends.
    fn next_shard(&self, worker: &str) -> Option<u64> {
        let mut state = self.lock();
        loop {
            if state.finished(self.shard_count)
                || !state.alive.get(worker).copied().unwrap_or(false)
            {
                return None;
            }
            if let Some(pos) = self.pick(&state, worker) {
                let shard = state.pending.remove(pos).expect("position just found");
                let preferred = self.ring.preferred(shard);
                if preferred.is_some_and(|p| p != worker) {
                    let preferred_alive = preferred
                        .and_then(|p| state.alive.get(p))
                        .copied()
                        .unwrap_or(false);
                    // Taking over for a dead worker is reassignment
                    // pickup, already counted by `bury`; taking a shard
                    // from a live straggler is a steal.
                    if preferred_alive {
                        state.stolen += 1;
                        clockmark_obs::counter_add("fleet.shards_stolen", 1);
                    }
                }
                state.running.insert(worker.to_owned(), shard);
                return Some(shard);
            }
            state = self
                .wake
                .wait_timeout(state, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Index into `pending` of the shard `worker` should take next.
    fn pick(&self, state: &State, worker: &str) -> Option<usize> {
        let preferred = state
            .pending
            .iter()
            .position(|&s| self.ring.preferred(s) == Some(worker));
        preferred.or(if state.pending.is_empty() {
            None
        } else {
            Some(0)
        })
    }
}

/// Runs (or resumes) a fleet campaign to completion and writes the
/// merged report.
///
/// Blocks until every job has a merged outcome, then returns the run's
/// [`FleetSummary`]. The merged `report.json` is byte-identical to what
/// a single-node [`Campaign::run`] of the same spec writes.
///
/// # Errors
///
/// - [`FleetError::Config`] for an empty worker list.
/// - [`FleetError::WorkersLost`] when every worker died (or never
///   connected) with shards still pending; the directory stays
///   resumable.
/// - Campaign/corpus/I-O errors from spec persistence and merging.
pub fn run_fleet(config: &FleetConfig, spec: CampaignSpec) -> Result<FleetSummary, FleetError> {
    if config.workers.is_empty() {
        return Err(FleetError::config("no workers given"));
    }
    let _span = clockmark_obs::span("fleet.run")
        .field("workers", config.workers.len())
        .field("jobs", spec.traces.len());

    // The fleet directory is a campaign directory: create-or-resume.
    let campaign = if config.dir.join("campaign.json").exists() {
        Campaign::open(&config.dir)?
    } else {
        Campaign::create(&config.dir, spec)?
    };
    let spec = campaign.spec().clone();
    let shards = persisted_shard_count(&config.dir, config.effective_shards())?;
    let plan = FleetPlan::new(&spec, shards);
    let total_jobs = plan.total_jobs();

    // Outcomes already merged by an earlier (killed) coordinator run
    // count as landed; shards they fully cover are done before any
    // worker hears about them.
    let landed: BTreeSet<usize> = campaign
        .completed_outcomes()?
        .iter()
        .map(|o| o.index)
        .collect();
    let mut done = BTreeSet::new();
    let mut pending = VecDeque::new();
    for shard in &plan.plans {
        if shard.jobs.iter().all(|(index, _)| landed.contains(index)) {
            done.insert(shard.shard_id);
        } else {
            pending.push_back(shard.shard_id);
        }
    }

    // Shard-scoped corpus manifests: each shard directory records which
    // traces it covers, so a shard campaign is auditable on its own.
    let corpus = Corpus::open(&spec.corpus)?;
    for shard in &plan.plans {
        if done.contains(&shard.shard_id) {
            continue;
        }
        let dir = shard_dir(&config.dir, shard.shard_id);
        fs::create_dir_all(&dir)
            .map_err(|e| FleetError::io(format!("creating {}", dir.display()), e))?;
        corpus.subset_manifest(&shard.traces(), dir.join("manifest.jsonl"))?;
    }

    let results = OpenOptions::new()
        .append(true)
        .create(true)
        .open(campaign.dir().join("results.jsonl"))
        .map_err(|e| FleetError::io("opening merged results.jsonl", e))?;
    let results = Mutex::new(results);

    let ring = Ring::new(&config.workers, Ring::DEFAULT_VNODES);
    let workers = ring.workers().to_vec();
    let scheduler = Scheduler {
        state: Mutex::new(State {
            pending,
            running: HashMap::new(),
            done,
            landed,
            alive: workers.iter().map(|w| (w.clone(), true)).collect(),
            heartbeats: HashMap::new(),
            stolen: 0,
            reassigned: 0,
            failed: false,
        }),
        wake: Condvar::new(),
        ring,
        shard_count: plan.plans.len(),
    };

    std::thread::scope(|scope| {
        for worker in &workers {
            scope.spawn(|| work_loop(worker, config, &spec, &plan, &scheduler, &results));
            scope.spawn(|| heartbeat_loop(worker, config, &scheduler));
        }
        supervise(config, &scheduler, total_jobs as u64);
    });

    let state = scheduler.lock();
    let merged = state.landed.len();
    let stolen = state.stolen;
    let reassigned = state.reassigned;
    let workers_lost = workers.len() - state.workers_alive();
    let pending_shards: Vec<u64> = state.pending.iter().copied().collect();
    drop(state);

    if merged < total_jobs {
        return Err(FleetError::WorkersLost { pending_shards });
    }

    // All jobs merged: write the final report exactly as a single-node
    // run would (`Campaign::report` sorts by job index and the encoding
    // is canonical, so the bytes cannot depend on merge order).
    let report = campaign.report()?;
    let report_path = campaign.dir().join("report.json");
    write_atomic(&report_path, format!("{}\n", report.encode()).as_bytes())?;
    publish_progress(campaign.dir(), total_jobs as u64, total_jobs as u64, 0.0);

    Ok(FleetSummary {
        total_jobs,
        merged_jobs: merged,
        shards: plan.plans.len(),
        shards_stolen: stolen,
        shards_reassigned: reassigned,
        workers_lost,
        report_path,
    })
}

/// Reads the live fleet progress a coordinator (possibly in another
/// process) last published into the fleet directory.
pub fn read_progress(fleet_dir: &Path) -> Option<CampaignProgress> {
    let text = fs::read_to_string(fleet_dir.join("progress.json")).ok()?;
    CampaignProgress::decode(&text)
}

/// The shard count is part of the fleet's identity: shard directories
/// name hash buckets, so resuming with a different count would orphan
/// every checkpoint. First run persists it, later runs read it back.
fn persisted_shard_count(dir: &Path, requested: u64) -> Result<u64, FleetError> {
    let path = dir.join("fleet.json");
    match fs::read_to_string(&path) {
        Ok(text) => {
            let persisted = text
                .split("\"shards\":")
                .nth(1)
                .and_then(|rest| rest.trim_start().split(['}', ',']).next())
                .and_then(|num| num.trim().parse::<u64>().ok())
                .ok_or_else(|| {
                    FleetError::config(format!("unreadable shard count in {}", path.display()))
                })?;
            Ok(persisted)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            write_atomic(&path, format!("{{\"shards\":{requested}}}\n").as_bytes())?;
            Ok(requested)
        }
        Err(e) => Err(FleetError::io(format!("reading {}", path.display()), e)),
    }
}

/// One worker's work connection: claim a shard, run it remotely, merge
/// what came back, repeat until the run ends or the worker dies.
fn work_loop(
    worker: &str,
    config: &FleetConfig,
    spec: &CampaignSpec,
    plan: &FleetPlan,
    scheduler: &Scheduler,
    results: &Mutex<File>,
) {
    let mut client: Option<Client> = None;
    while let Some(shard_id) = scheduler.next_shard(worker) {
        let shard = plan.shard(shard_id).expect("scheduled shards are planned");
        let wire = shard_spec(
            // `spec.corpus`/`dir` travel as strings; the plan already
            // anchored them, so this cannot re-interpret paths.
            config_dir(config),
            spec,
            shard,
            config.worker_threads,
            config.max_jobs_per_assign,
            config.interrupt_after_cycles,
        );
        let outcome = connect(worker, &mut client)
            .and_then(|c| c.shard_assign(wire).map_err(|e| e.to_string()));
        match outcome {
            Ok((returned_shard, complete, outcomes)) => {
                let mut state = scheduler.lock();
                state.running.remove(worker);
                if returned_shard != shard_id {
                    // A worker answering for the wrong shard is not a
                    // peer we can schedule against.
                    state.bury(worker);
                    scheduler.wake.notify_all();
                    continue;
                }
                merge_outcomes(&outcomes, &mut state, results);
                if state.done.contains(&shard_id) {
                    // Another worker finished our shard while a
                    // heartbeat timeout had us presumed dead; nothing
                    // left to do for it.
                } else if complete {
                    state.done.insert(shard_id);
                    // A heartbeat-timeout race may have requeued the
                    // shard while we were (slowly) finishing it.
                    state.pending.retain(|&s| s != shard_id);
                    clockmark_obs::counter_add("fleet.shards_done", 1);
                } else {
                    // Interrupted by an injected limit: back of the
                    // queue so siblings get their turn first.
                    state.pending.push_back(shard_id);
                }
                scheduler.wake.notify_all();
            }
            Err(message) => {
                clockmark_obs::counter_add("fleet.worker_errors", 1);
                clockmark_obs::suppressed(|| {
                    eprintln!("fleet: worker {worker} lost: {message}");
                });
                let mut state = scheduler.lock();
                // next_shard put the shard into `running`; bury requeues
                // it and flags the worker dead, ending this loop.
                state.running.insert(worker.to_owned(), shard_id);
                state.bury(worker);
                scheduler.wake.notify_all();
                return;
            }
        }
    }
}

/// The fleet directory, borrowed with the lifetime the plan helpers
/// want.
fn config_dir(config: &FleetConfig) -> &Path {
    &config.dir
}

/// Appends not-yet-landed outcome lines to the merged `results.jsonl`.
///
/// Lines whose job index already landed (a resumed shard re-reporting
/// history, or a shard finished twice across a heartbeat-timeout race)
/// are dropped, so each job appears exactly once.
fn merge_outcomes(outcomes: &str, state: &mut State, results: &Mutex<File>) {
    let mut fresh = String::new();
    let mut fresh_jobs = 0u64;
    for line in outcomes.lines() {
        let Ok(outcome) = JobOutcome::decode(line) else {
            continue;
        };
        if state.landed.insert(outcome.index) {
            fresh.push_str(line);
            fresh.push('\n');
            fresh_jobs += 1;
        }
    }
    if fresh.is_empty() {
        return;
    }
    let mut file = results.lock().unwrap_or_else(|e| e.into_inner());
    if file
        .write_all(fresh.as_bytes())
        .and_then(|()| file.flush())
        .is_ok()
    {
        clockmark_obs::counter_add("fleet.jobs_merged", fresh_jobs);
    }
}

/// Connects (or reuses) the work connection to `worker`.
fn connect<'c>(worker: &str, client: &'c mut Option<Client>) -> Result<&'c mut Client, String> {
    if client.is_none() {
        let mut backoff = Backoff::new(fnv_seed(worker));
        *client =
            Some(Client::connect_with_backoff(worker, &mut backoff, 8).map_err(|e| e.to_string())?);
    }
    Ok(client.as_mut().expect("just connected"))
}

fn fnv_seed(worker: &str) -> u64 {
    crate::hash::fnv1a64(worker.as_bytes())
}

/// One worker's heartbeat connection: poll liveness and shard progress,
/// bury the worker after too many consecutive misses.
fn heartbeat_loop(worker: &str, config: &FleetConfig, scheduler: &Scheduler) {
    let timeout = config.heartbeat_interval.max(Duration::from_millis(50)) * 2;
    let mut client: Option<Client> = None;
    let mut misses = 0u32;
    loop {
        {
            let state = scheduler.lock();
            if state.finished(scheduler.shard_count)
                || !state.alive.get(worker).copied().unwrap_or(false)
            {
                return;
            }
        }
        let beat = match &mut client {
            Some(c) => c.heartbeat().map_err(|e| e.to_string()),
            None => Client::connect_with_timeout(worker, timeout)
                .and_then(|mut c| {
                    let beat = c.heartbeat()?;
                    client = Some(c);
                    Ok(beat)
                })
                .map_err(|e| e.to_string()),
        };
        match beat {
            Ok(hb) => {
                misses = 0;
                let mut state = scheduler.lock();
                state.heartbeats.insert(worker.to_owned(), hb);
            }
            Err(_) => {
                client = None;
                misses += 1;
                if misses >= config.heartbeat_misses.max(1) {
                    let mut state = scheduler.lock();
                    state.bury(worker);
                    scheduler.wake.notify_all();
                    return;
                }
            }
        }
        std::thread::sleep(config.heartbeat_interval);
    }
}

/// The coordinator's main loop: publish aggregated progress and gauges,
/// detect the no-progress-possible endgame.
fn supervise(config: &FleetConfig, scheduler: &Scheduler, total_jobs: u64) {
    let started = Instant::now();
    let tick = config
        .heartbeat_interval
        .min(Duration::from_millis(250))
        .max(Duration::from_millis(20));
    loop {
        let progress = {
            let mut state = scheduler.lock();
            if state.done.len() == scheduler.shard_count {
                scheduler.wake.notify_all();
                return;
            }
            if state.workers_alive() == 0 {
                state.failed = true;
                scheduler.wake.notify_all();
                return;
            }
            aggregate(&state, total_jobs)
        };
        clockmark_obs::gauge_set("fleet.workers_alive", progress.workers_alive as f64);
        clockmark_obs::gauge_set("fleet.jobs_done", progress.done as f64);
        publish_progress_timed(
            &config.dir,
            progress.done,
            total_jobs,
            progress.cycles_per_sec,
            started.elapsed(),
        );
        std::thread::sleep(tick);
    }
}

/// Fleet-wide progress: merged jobs plus whatever in-flight shards have
/// landed locally but not yet reported.
fn aggregate(state: &State, total: u64) -> FleetProgress {
    let in_flight: u64 = state
        .running
        .iter()
        .filter_map(|(worker, shard)| {
            let hb = state.heartbeats.get(worker)?;
            (hb.busy && hb.shard_id == *shard).then_some(hb.jobs_done)
        })
        .sum();
    let cycles_per_sec: f64 = state
        .heartbeats
        .values()
        .filter(|hb| hb.busy)
        .map(|hb| hb.cycles_per_sec)
        .sum();
    FleetProgress {
        done: (state.landed.len() as u64 + in_flight).min(total),
        total,
        workers_alive: state.workers_alive(),
        cycles_per_sec,
    }
}

fn publish_progress(dir: &Path, done: u64, total: u64, cycles_per_sec: f64) {
    publish_progress_timed(dir, done, total, cycles_per_sec, Duration::ZERO);
}

/// Writes the fleet's aggregated `progress.json` in the exact shape the
/// campaign publishes, so `campaign status <fleet-dir>` renders it.
fn publish_progress_timed(
    dir: &Path,
    done: u64,
    total: u64,
    cycles_per_sec: f64,
    elapsed: Duration,
) {
    let elapsed_s = elapsed.as_secs_f64();
    let jobs_per_sec = if elapsed_s > 0.0 {
        done as f64 / elapsed_s
    } else {
        0.0
    };
    let eta_seconds = if jobs_per_sec > 0.0 {
        (total.saturating_sub(done)) as f64 / jobs_per_sec
    } else {
        0.0
    };
    let progress = CampaignProgress {
        done,
        total,
        cycles: 0,
        cycles_per_sec,
        jobs_per_sec,
        eta_seconds,
        elapsed_ms: elapsed.as_millis() as u64,
    };
    let _ = write_atomic(
        &dir.join("progress.json"),
        format!("{}\n", progress.encode()).as_bytes(),
    );
}

/// Write-temp-then-rename, so readers never observe a torn file.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), FleetError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes).map_err(|e| FleetError::io(format!("writing {}", tmp.display()), e))?;
    fs::rename(&tmp, path)
        .map_err(|e| FleetError::io(format!("renaming into {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(pending: &[u64], workers: &[&str]) -> State {
        State {
            pending: pending.iter().copied().collect(),
            running: HashMap::new(),
            done: BTreeSet::new(),
            landed: BTreeSet::new(),
            alive: workers.iter().map(|w| ((*w).to_owned(), true)).collect(),
            heartbeats: HashMap::new(),
            stolen: 0,
            reassigned: 0,
            failed: false,
        }
    }

    #[test]
    fn burying_a_worker_requeues_its_shard_in_front() {
        let mut state = state_with(&[7], &["a", "b"]);
        state.running.insert("a".to_owned(), 3);
        state.bury("a");
        assert_eq!(state.pending, VecDeque::from(vec![3, 7]));
        assert_eq!(state.reassigned, 1);
        assert!(!state.alive["a"]);
        // Burying twice is idempotent.
        state.bury("a");
        assert_eq!(state.pending.len(), 2);
        assert_eq!(state.reassigned, 1);
    }

    #[test]
    fn merge_drops_duplicate_and_garbage_lines() {
        let outcome = JobOutcome {
            index: 4,
            trace: "t".to_owned(),
            cycles: 10,
            result: clockmark_cpa::DetectionResult {
                detected: true,
                peak_rotation: 1,
                peak_rho: 0.5,
                floor_max_abs: 0.1,
                ratio: 5.0,
                zscore: 9.0,
            },
        };
        let text = format!("{}\nnot json\n{}\n", outcome.encode(), outcome.encode());
        let mut state = state_with(&[], &[]);
        let path = std::env::temp_dir().join(format!(
            "cm_fleet_merge_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let file = Mutex::new(File::create(&path).expect("creates"));
        merge_outcomes(&text, &mut state, &file);
        merge_outcomes(&text, &mut state, &file);
        assert_eq!(state.landed.iter().copied().collect::<Vec<_>>(), vec![4]);
        let written = fs::read_to_string(&path).expect("reads");
        assert_eq!(written, format!("{}\n", outcome.encode()));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn aggregate_counts_only_matching_inflight_heartbeats() {
        let mut state = state_with(&[], &["a", "b"]);
        state.landed.extend([0, 1, 2]);
        state.running.insert("a".to_owned(), 5);
        state.heartbeats.insert(
            "a".to_owned(),
            WorkerHeartbeat {
                busy: true,
                shard_id: 5,
                jobs_done: 2,
                jobs_total: 3,
                cycles_per_sec: 100.0,
                ..WorkerHeartbeat::default()
            },
        );
        // Stale heartbeat from a shard `b` no longer runs: ignored.
        state.heartbeats.insert(
            "b".to_owned(),
            WorkerHeartbeat {
                busy: true,
                shard_id: 9,
                jobs_done: 7,
                cycles_per_sec: 50.0,
                ..WorkerHeartbeat::default()
            },
        );
        let progress = aggregate(&state, 10);
        assert_eq!(progress.done, 5);
        assert_eq!(progress.workers_alive, 2);
        assert!((progress.cycles_per_sec - 150.0).abs() < 1e-9);
    }

    #[test]
    fn shard_count_persists_across_runs() {
        let dir = std::env::temp_dir().join(format!(
            "cm_fleet_shards_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).expect("mkdir");
        assert_eq!(persisted_shard_count(&dir, 12).expect("first"), 12);
        // A later run asking for a different count gets the pinned one.
        assert_eq!(persisted_shard_count(&dir, 99).expect("second"), 12);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_file_round_trips_through_the_campaign_decoder() {
        let dir = std::env::temp_dir().join(format!(
            "cm_fleet_progress_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).expect("mkdir");
        publish_progress_timed(&dir, 3, 10, 1234.5, Duration::from_millis(2500));
        let progress = read_progress(&dir).expect("decodes");
        assert_eq!(progress.done, 3);
        assert_eq!(progress.total, 10);
        assert!((progress.jobs_per_sec - 1.2).abs() < 1e-9);
        assert!(progress.eta_seconds > 0.0);
        fs::remove_dir_all(&dir).ok();
    }
}
