//! Content-addressed shard placement: FNV-1a trace hashing plus a
//! consistent-hash ring of workers.
//!
//! Two independent mappings keep a fleet stable under change:
//!
//! 1. **trace → shard** is a plain `fnv1a64(name) % shards`. The shard
//!    count is fixed for the life of a fleet directory (persisted in
//!    `fleet.json`), so this mapping never moves — a shard's checkpoint
//!    and results files always describe the same trace subset.
//! 2. **shard → worker** rides a consistent-hash [`Ring`]. Workers come
//!    and go between (and during) runs; only the shards whose ring
//!    successor changes move to a different preferred worker, which is
//!    ~`S/N` of them per worker added or removed rather than all `S`.
//!
//! The preference is advisory — an idle worker steals shards preferred
//! elsewhere, and a dead worker's shards are requeued for anyone — but
//! honouring it when possible keeps page caches and half-finished shard
//! campaigns close to the node that was already working on them.

use std::collections::BTreeMap;

/// 64-bit FNV-1a over a byte string — the workspace's standing choice
/// for content-stable placement hashes (no keys, no allocation, stable
/// across platforms and releases).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The shard a corpus trace belongs to, out of `shards` buckets.
///
/// # Panics
///
/// Panics if `shards` is zero — a fleet plan always has at least one.
pub fn shard_of_trace(trace: &str, shards: u64) -> u64 {
    assert!(shards > 0, "a fleet needs at least one shard");
    fnv1a64(trace.as_bytes()) % shards
}

/// A consistent-hash ring mapping shard ids to preferred workers.
///
/// Each worker contributes `vnodes` points (hashes of `"addr#i"`) on a
/// `u64` circle; a shard is preferred by the worker owning the first
/// point at or after the shard id's hash, wrapping around.
#[derive(Debug, Clone)]
pub struct Ring {
    points: BTreeMap<u64, usize>,
    workers: Vec<String>,
}

impl Ring {
    /// Default virtual nodes per worker: enough that per-worker load
    /// imbalance stays in the few-percent range for small fleets.
    pub const DEFAULT_VNODES: usize = 64;

    /// Builds a ring over `workers` with `vnodes` points each.
    ///
    /// Duplicate worker names collapse onto the same points (the first
    /// occurrence wins), so a duplicated `--workers` entry cannot skew
    /// placement.
    pub fn new<S: AsRef<str>>(workers: &[S], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut names: Vec<String> = Vec::with_capacity(workers.len());
        let mut points = BTreeMap::new();
        for worker in workers {
            let name = worker.as_ref();
            if names.iter().any(|n| n == name) {
                continue;
            }
            let index = names.len();
            names.push(name.to_owned());
            for v in 0..vnodes {
                let point = fnv1a64(format!("{name}#{v}").as_bytes());
                // First owner of a colliding point keeps it: insertion
                // order must not depend on iteration order of a map.
                points.entry(point).or_insert(index);
            }
        }
        Ring {
            points,
            workers: names,
        }
    }

    /// The distinct workers on the ring, in first-seen order.
    pub fn workers(&self) -> &[String] {
        &self.workers
    }

    /// The preferred worker for `shard_id`, or `None` on an empty ring.
    pub fn preferred(&self, shard_id: u64) -> Option<&str> {
        let key = fnv1a64(&shard_id.to_le_bytes());
        let index = self
            .points
            .range(key..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, &i)| i)?;
        Some(&self.workers[index])
    }

    /// The full shard → preferred-worker assignment for `shards` shards.
    pub fn assignment(&self, shards: u64) -> Vec<Option<String>> {
        (0..shards)
            .map(|s| self.preferred(s).map(str::to_owned))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shard_of_trace_is_stable() {
        // These values are load-bearing: they pin the trace → shard map
        // across releases, which is what lets a fleet directory created
        // by one build be resumed by another.
        assert_eq!(shard_of_trace("chip_i_s1", 8), fnv1a64(b"chip_i_s1") % 8);
        assert_eq!(shard_of_trace("chip_i_s1", 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        shard_of_trace("x", 0);
    }

    #[test]
    fn empty_ring_prefers_nobody() {
        let ring = Ring::new::<&str>(&[], 64);
        assert!(ring.preferred(0).is_none());
    }

    #[test]
    fn duplicate_workers_collapse() {
        let ring = Ring::new(&["a:1", "a:1", "b:2"], 16);
        assert_eq!(ring.workers(), &["a:1".to_owned(), "b:2".to_owned()]);
    }

    fn worker_names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:4780")).collect()
    }

    proptest! {
        /// Adding one worker only moves shards *to* the new worker, and
        /// roughly its fair share of them: no shard changes hands
        /// between two workers that were both already present.
        #[test]
        fn adding_a_worker_moves_only_its_own_share(
            workers in 1usize..8,
            shards in 1u64..200,
        ) {
            let old = Ring::new(&worker_names(workers), Ring::DEFAULT_VNODES);
            let mut grown = worker_names(workers);
            grown.push("10.0.1.99:4780".to_owned());
            let new = Ring::new(&grown, Ring::DEFAULT_VNODES);

            let before = old.assignment(shards);
            let after = new.assignment(shards);
            let mut moved = 0u64;
            for (b, a) in before.iter().zip(&after) {
                if b != a {
                    prop_assert_eq!(
                        a.as_deref(),
                        Some("10.0.1.99:4780"),
                        "a shard moved between two pre-existing workers"
                    );
                    moved += 1;
                }
            }
            // Fair share is shards/(workers+1); vnode granularity makes
            // this noisy for small counts, so allow a generous factor
            // plus a constant floor.
            let fair = shards / (workers as u64 + 1);
            prop_assert!(
                moved <= 3 * fair + 8,
                "{moved} of {shards} shards moved; fair share {fair}"
            );
        }

        /// Removing one worker only moves the shards that worker owned;
        /// everything preferred elsewhere stays put.
        #[test]
        fn removing_a_worker_strands_only_its_shards(
            workers in 2usize..9,
            shards in 1u64..200,
            victim in 0usize..8,
        ) {
            let names = worker_names(workers);
            let victim = victim % workers;
            let old = Ring::new(&names, Ring::DEFAULT_VNODES);
            let survivors: Vec<String> = names
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != victim)
                .map(|(_, n)| n.clone())
                .collect();
            let new = Ring::new(&survivors, Ring::DEFAULT_VNODES);

            let before = old.assignment(shards);
            let after = new.assignment(shards);
            for (s, (b, a)) in before.iter().zip(&after).enumerate() {
                if b != a {
                    prop_assert_eq!(
                        b.as_deref(),
                        Some(names[victim].as_str()),
                        "shard {} moved although its worker survived",
                        s
                    );
                }
            }
        }

        /// The preferred worker is a pure function of (workers, shard):
        /// rebuilding the ring from a rotated worker list changes
        /// nothing, so every coordinator restart computes the same
        /// placement.
        #[test]
        fn placement_ignores_worker_list_order(
            workers in 1usize..8,
            shards in 1u64..200,
            rot in 0usize..8,
        ) {
            let names = worker_names(workers);
            let mut rotated = names.clone();
            rotated.rotate_left(rot % workers);
            let a = Ring::new(&names, Ring::DEFAULT_VNODES);
            let b = Ring::new(&rotated, Ring::DEFAULT_VNODES);
            prop_assert_eq!(a.assignment(shards), b.assignment(shards));
        }
    }
}
