//! Turning one campaign spec into a set of shard campaigns.
//!
//! A [`FleetPlan`] is a pure function of the campaign spec and the
//! shard count: every trace keeps its *campaign-global* job index (its
//! position in `spec.traces`, exactly as a single-node run numbers it)
//! and lands in the shard [`shard_of_trace`] names. Workers never see
//! the global campaign — they run the shard directory as an ordinary
//! mini-campaign — so the plan also carries the global index of each
//! shard-local job, which is what rides the wire in
//! [`ShardJob::index`](clockmark_serve::ShardJob) and lets the
//! coordinator merge results under single-node numbering.

use crate::hash::shard_of_trace;
use clockmark::CampaignSpec;
use clockmark_serve::{ShardJob, ShardSpec};
use std::path::{Path, PathBuf};

/// One shard of a fleet campaign: a stable id plus the jobs it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shard's stable id (hash bucket), in `0..plan.shards`.
    pub shard_id: u64,
    /// The shard's jobs as `(global_index, trace)` in global order.
    pub jobs: Vec<(usize, String)>,
}

impl ShardPlan {
    /// The shard's trace names, in shard-local job order.
    pub fn traces(&self) -> Vec<String> {
        self.jobs.iter().map(|(_, t)| t.clone()).collect()
    }
}

/// The full shard decomposition of one campaign spec.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// Shard count the traces were bucketed into.
    pub shards: u64,
    /// Non-empty shards, ordered by shard id. Hash buckets that caught
    /// no trace are omitted — they have nothing to run.
    pub plans: Vec<ShardPlan>,
}

impl FleetPlan {
    /// Buckets every trace of `spec` into `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero (like [`shard_of_trace`]).
    pub fn new(spec: &CampaignSpec, shards: u64) -> Self {
        let mut buckets: Vec<Vec<(usize, String)>> = vec![Vec::new(); shards as usize];
        for (index, trace) in spec.traces.iter().enumerate() {
            let shard = shard_of_trace(trace, shards) as usize;
            buckets[shard].push((index, trace.clone()));
        }
        let plans = buckets
            .into_iter()
            .enumerate()
            .filter(|(_, jobs)| !jobs.is_empty())
            .map(|(shard_id, jobs)| ShardPlan {
                shard_id: shard_id as u64,
                jobs,
            })
            .collect();
        FleetPlan { shards, plans }
    }

    /// Total jobs across all shards.
    pub fn total_jobs(&self) -> usize {
        self.plans.iter().map(|p| p.jobs.len()).sum()
    }

    /// The shard plan with id `shard_id`, if it is non-empty.
    pub fn shard(&self, shard_id: u64) -> Option<&ShardPlan> {
        self.plans.iter().find(|p| p.shard_id == shard_id)
    }
}

/// The on-disk directory of one shard's mini-campaign.
pub fn shard_dir(fleet_dir: &Path, shard_id: u64) -> PathBuf {
    fleet_dir.join("shards").join(format!("shard_{shard_id}"))
}

/// Builds the wire [`ShardSpec`] that asks a worker to run `shard` of
/// the fleet campaign rooted at `fleet_dir`.
///
/// `threads`, `max_jobs` and `interrupt_after_cycles` are passed through
/// (zero means "no override" for each, mirroring the frame layout).
pub fn shard_spec(
    fleet_dir: &Path,
    spec: &CampaignSpec,
    shard: &ShardPlan,
    threads: u32,
    max_jobs: u64,
    interrupt_after_cycles: u64,
) -> ShardSpec {
    ShardSpec {
        shard_id: shard.shard_id,
        dir: shard_dir(fleet_dir, shard.shard_id)
            .to_string_lossy()
            .into_owned(),
        corpus: spec.corpus.to_string_lossy().into_owned(),
        pattern: spec.pattern.clone(),
        criterion: spec.criterion,
        algo: spec.algo,
        checkpoint_cycles: spec.checkpoint_cycles,
        chunk_cycles: spec.chunk_cycles as u64,
        threads,
        max_jobs,
        interrupt_after_cycles,
        jobs: shard
            .jobs
            .iter()
            .map(|(index, trace)| ShardJob {
                index: *index as u64,
                trace: trace.clone(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(traces: &[&str]) -> CampaignSpec {
        let mut spec = CampaignSpec::new(
            "/tmp/corpus",
            vec![true, false, true],
            traces.iter().map(|s| (*s).to_owned()).collect(),
        );
        spec.algo = clockmark_cpa::CpaAlgo::Folded;
        spec
    }

    #[test]
    fn every_job_lands_in_exactly_one_shard_with_its_global_index() {
        let traces = ["a", "b", "c", "d", "e", "f", "g"];
        let plan = FleetPlan::new(&spec(&traces), 4);
        assert_eq!(plan.total_jobs(), traces.len());
        let mut seen = vec![false; traces.len()];
        for shard in &plan.plans {
            for (index, trace) in &shard.jobs {
                assert_eq!(traces[*index], trace, "global index points at its trace");
                assert_eq!(
                    shard.shard_id,
                    shard_of_trace(trace, 4),
                    "job sits in its hash bucket"
                );
                assert!(!seen[*index], "job {index} appears twice");
                seen[*index] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every job is planned");
    }

    #[test]
    fn empty_buckets_are_omitted() {
        let plan = FleetPlan::new(&spec(&["only"]), 64);
        assert_eq!(plan.plans.len(), 1);
        assert_eq!(plan.total_jobs(), 1);
        assert_eq!(plan.shard(plan.plans[0].shard_id).unwrap().jobs.len(), 1);
    }

    #[test]
    fn shard_spec_pins_the_campaign_tuning() {
        let spec0 = spec(&["a", "b"]);
        let plan = FleetPlan::new(&spec0, 1);
        let wire = shard_spec(Path::new("/work/fleet"), &spec0, &plan.plans[0], 2, 0, 0);
        assert_eq!(wire.shard_id, 0);
        assert_eq!(wire.dir, "/work/fleet/shards/shard_0");
        assert_eq!(wire.corpus, "/tmp/corpus");
        assert_eq!(wire.pattern, spec0.pattern);
        assert_eq!(wire.algo, spec0.algo);
        assert_eq!(wire.checkpoint_cycles, spec0.checkpoint_cycles);
        assert_eq!(wire.chunk_cycles, spec0.chunk_cycles as u64);
        assert_eq!(wire.threads, 2);
        assert_eq!(wire.jobs.len(), 2);
        assert_eq!(wire.jobs[0].index, 0);
        assert_eq!(wire.jobs[1].trace, "b");
    }
}
