//! The worker side of a fleet: a [`FleetService`] that runs shard
//! campaigns on the local node.
//!
//! A [`ShardWorker`] turns every `ShardAssign` frame into an ordinary
//! [`Campaign`] over the shard directory named in the spec. Nothing
//! about the campaign machinery is fleet-specific: checkpoints,
//! torn-tail recovery and byte-stable outcomes all come from the
//! existing single-node code path, which is precisely why a shard can
//! hop between workers mid-flight — the next node just `open`s the same
//! directory and resumes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use clockmark::{Campaign, CampaignError, CampaignLimits, CampaignProgress, CampaignSpec};
use clockmark_serve::{ErrorCode, FleetService, ShardOutcome, ShardSpec, WorkerHeartbeat};

/// What the worker is currently running, published to the heartbeat.
#[derive(Debug, Clone)]
struct InFlight {
    shard_id: u64,
    dir: PathBuf,
    jobs_total: u64,
}

/// A [`FleetService`] that executes shards as local campaigns.
///
/// Install one into a server to make the node a fleet worker:
///
/// ```no_run
/// # fn main() -> Result<(), clockmark_serve::ServeError> {
/// use std::sync::Arc;
/// let handle = clockmark_serve::Server::new()
///     .with_fleet(Arc::new(clockmark_fleet::ShardWorker::new()))
///     .bind("0.0.0.0:4780")?;
/// # drop(handle);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ShardWorker {
    /// Worker-thread default for shards that do not pin `threads`.
    threads: usize,
    in_flight: Mutex<Option<InFlight>>,
    shards_done: AtomicU64,
}

impl ShardWorker {
    /// A worker that lets each shard spec (or the campaign default)
    /// choose its thread count.
    pub fn new() -> Self {
        ShardWorker::default()
    }

    /// Overrides the default per-shard thread count (0 = campaign
    /// default); a spec with a non-zero `threads` still wins.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn run_shard(&self, spec: &ShardSpec) -> Result<ShardOutcome, CampaignError> {
        let dir = PathBuf::from(&spec.dir);
        let campaign_spec = CampaignSpec {
            corpus: PathBuf::from(&spec.corpus),
            pattern: spec.pattern.clone(),
            traces: spec.jobs.iter().map(|j| j.trace.clone()).collect(),
            criterion: spec.criterion,
            checkpoint_cycles: spec.checkpoint_cycles,
            chunk_cycles: spec.chunk_cycles as usize,
            algo: spec.algo,
            // Distributed shards run fixed-budget jobs: the shard wire
            // format predates sequential and scenario campaigns, and a
            // shard's report must stay byte-identical across
            // mixed-version workers.
            sequential: None,
            scenario: None,
        };
        // Create the shard campaign on first contact, open (resume) it on
        // every later one — including the reassignment of a shard some
        // other worker died inside.
        let campaign = if dir.join("campaign.json").exists() {
            Campaign::open(&dir)?
        } else {
            match Campaign::create(&dir, campaign_spec) {
                Ok(c) => c,
                // Another assignment of the same shard raced us to the
                // create; its spec is identical, so just open it.
                Err(CampaignError::Io { source, .. })
                    if source.kind() == std::io::ErrorKind::AlreadyExists =>
                {
                    Campaign::open(&dir)?
                }
                Err(e) => return Err(e),
            }
        };
        let threads = if spec.threads > 0 {
            spec.threads as usize
        } else {
            self.threads
        };
        let campaign = if threads > 0 {
            campaign.with_threads(threads)
        } else {
            campaign
        };

        *self.in_flight.lock().unwrap_or_else(|e| e.into_inner()) = Some(InFlight {
            shard_id: spec.shard_id,
            dir: dir.clone(),
            jobs_total: spec.jobs.len() as u64,
        });

        let limits = CampaignLimits {
            max_jobs: (spec.max_jobs > 0).then_some(spec.max_jobs as usize),
            interrupt_job_after_cycles: (spec.interrupt_after_cycles > 0)
                .then_some(spec.interrupt_after_cycles),
        };
        let run = campaign.run(&limits);
        *self.in_flight.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let status = run?;

        // Remap shard-local job indices to the campaign-global ones the
        // coordinator merges by; sort so the payload is deterministic.
        let mut outcomes = campaign.completed_outcomes()?;
        for outcome in &mut outcomes {
            outcome.index = spec.jobs[outcome.index].index as usize;
        }
        outcomes.sort_by_key(|o| o.index);
        let mut text = String::with_capacity(outcomes.len() * 160);
        for outcome in &outcomes {
            text.push_str(&outcome.encode());
            text.push('\n');
        }

        if status.is_complete() {
            self.shards_done.fetch_add(1, Ordering::Relaxed);
            clockmark_obs::counter_add("fleet.worker_shards_done", 1);
        }
        clockmark_obs::counter_add("fleet.worker_jobs_done", outcomes.len() as u64);
        Ok(ShardOutcome {
            shard_id: spec.shard_id,
            complete: status.is_complete(),
            outcomes: text,
        })
    }
}

impl FleetService for ShardWorker {
    fn assign(&self, spec: &ShardSpec) -> Result<ShardOutcome, (ErrorCode, String)> {
        if spec.jobs.is_empty() {
            return Err((
                ErrorCode::Malformed,
                format!("shard {} carries no jobs", spec.shard_id),
            ));
        }
        self.run_shard(spec).map_err(|e| {
            let code = match &e {
                CampaignError::Corpus(_) => ErrorCode::Corpus,
                CampaignError::Cpa(_) => ErrorCode::Cpa,
                _ => ErrorCode::Internal,
            };
            (code, format!("shard {}: {e}", spec.shard_id))
        })
    }

    fn heartbeat(&self) -> WorkerHeartbeat {
        let shards_done = self.shards_done.load(Ordering::Relaxed);
        let in_flight = self
            .in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        match in_flight {
            None => WorkerHeartbeat {
                busy: false,
                shard_id: u64::MAX,
                shards_done,
                ..WorkerHeartbeat::default()
            },
            Some(run) => {
                // The shard campaign's own workers publish progress.json
                // after every landed job; a torn or missing file just
                // means "no progress to report yet".
                let progress = std::fs::read_to_string(run.dir.join("progress.json"))
                    .ok()
                    .and_then(|text| CampaignProgress::decode(&text));
                let (jobs_done, cycles, cycles_per_sec) = match progress {
                    Some(p) => (p.done, p.cycles, p.cycles_per_sec),
                    None => (0, 0, 0.0),
                };
                WorkerHeartbeat {
                    busy: true,
                    shard_id: run.shard_id,
                    jobs_done,
                    jobs_total: run.jobs_total,
                    cycles,
                    cycles_per_sec,
                    shards_done,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_idle_worker_heartbeats_idle() {
        let worker = ShardWorker::new();
        let hb = worker.heartbeat();
        assert!(!hb.busy);
        assert_eq!(hb.shard_id, u64::MAX);
        assert_eq!(hb.shards_done, 0);
    }

    #[test]
    fn an_empty_shard_is_rejected_as_malformed() {
        let worker = ShardWorker::new();
        let spec = ShardSpec {
            shard_id: 9,
            dir: "/nonexistent".to_owned(),
            corpus: "/nonexistent".to_owned(),
            pattern: vec![true, false],
            criterion: clockmark_cpa::DetectionCriterion::default(),
            algo: clockmark_cpa::CpaAlgo::Folded,
            checkpoint_cycles: 0,
            chunk_cycles: 256,
            threads: 0,
            max_jobs: 0,
            interrupt_after_cycles: 0,
            jobs: Vec::new(),
        };
        let (code, message) = worker.assign(&spec).expect_err("no jobs");
        assert_eq!(code, ErrorCode::Malformed);
        assert!(message.contains("shard 9"), "{message}");
    }
}
