//! Distributed detection campaigns over a fleet of CMRPC1 workers.
//!
//! A single [`Campaign`](clockmark::Campaign) drains a corpus with the
//! threads of one process. This crate scales the same campaign across
//! worker *nodes* without giving up any of the campaign's guarantees:
//!
//! - **Sharding is content-addressed.** Every trace hashes (FNV-1a 64)
//!   to a shard, and every shard hashes onto a consistent-hash ring of
//!   workers ([`hash`]). Adding or removing one worker only moves the
//!   shards that land on that worker's ring points — everything else
//!   stays put, so a mostly-warm fleet stays warm.
//! - **Shards are campaigns.** Each shard directory under
//!   `<fleet>/shards/shard_<k>/` is a full mini-campaign over its trace
//!   subset ([`plan`]): the PR-3 checkpoint machinery applies verbatim,
//!   so a worker SIGKILLed mid-trace leaves a checkpoint that *any*
//!   other worker resumes byte-identically.
//! - **The merged report is byte-identical.** Job outcomes carry their
//!   campaign-global indices over the wire; the coordinator merges them
//!   into one `results.jsonl` and writes the same `report.json` a
//!   single-node run of the same spec would have written
//!   ([`coordinator`]).
//! - **Stragglers get stolen, corpses get reaped.** More shards than
//!   workers means an idle worker steals pending shards preferred
//!   elsewhere; missed heartbeats or a dropped work connection requeue
//!   a dead worker's shard for the survivors.
//!
//! The wire protocol is plain CMRPC1 version 3 (`ShardAssign` /
//! `ShardResult` / `Heartbeat` frames, see `docs/fleet.md`): a fleet
//! worker is just a `clockmark-serve` server with a [`ShardWorker`]
//! installed, and keeps answering ping / status / detect / metrics like
//! any other node.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod hash;
pub mod plan;
pub mod worker;

mod error;

pub use coordinator::{run_fleet, FleetConfig, FleetProgress, FleetSummary};
pub use error::FleetError;
pub use hash::{fnv1a64, shard_of_trace, Ring};
pub use plan::{FleetPlan, ShardPlan};
pub use worker::ShardWorker;
