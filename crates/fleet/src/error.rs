//! The fleet crate's error type.

use clockmark::CampaignError;
use clockmark_corpus::CorpusError;

/// Why a fleet run could not produce its merged report.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// The underlying campaign machinery failed (spec validation, shard
    /// campaign I/O, report assembly).
    Campaign(CampaignError),
    /// The corpus could not be opened or a shard manifest not written.
    Corpus(CorpusError),
    /// A filesystem operation on the fleet directory failed.
    Io {
        /// What the coordinator was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The fleet configuration is unusable (no workers, no traces, …).
    Config {
        /// What is wrong with it.
        message: String,
    },
    /// Every worker died (or never answered) while shards were still
    /// pending; the named shards remain on disk, resumable.
    WorkersLost {
        /// Shards that still had no complete result.
        pending_shards: Vec<u64>,
    },
}

impl FleetError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        FleetError::Io {
            context: context.into(),
            source,
        }
    }

    pub(crate) fn config(message: impl Into<String>) -> Self {
        FleetError::Config {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Campaign(e) => write!(f, "campaign: {e}"),
            FleetError::Corpus(e) => write!(f, "corpus: {e}"),
            FleetError::Io { context, source } => write!(f, "{context}: {source}"),
            FleetError::Config { message } => write!(f, "fleet config: {message}"),
            FleetError::WorkersLost { pending_shards } => write!(
                f,
                "all workers lost with {} shard(s) pending ({:?}); \
                 the fleet directory is resumable",
                pending_shards.len(),
                pending_shards
            ),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Campaign(e) => Some(e),
            FleetError::Corpus(e) => Some(e),
            FleetError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CampaignError> for FleetError {
    fn from(e: CampaignError) -> Self {
        FleetError::Campaign(e)
    }
}

impl From<CorpusError> for FleetError {
    fn from(e: CorpusError) -> Self {
        FleetError::Corpus(e)
    }
}
