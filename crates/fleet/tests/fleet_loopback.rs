//! End-to-end fleet contract over loopback, all in one process:
//!
//! 1. the merged fleet `report.json` is byte-identical to a single-node
//!    run of the same campaign spec;
//! 2. a worker address that never answers does not sink the fleet —
//!    its shards are reassigned to the survivors;
//! 3. interrupted shard assignments (the straggler/test hook) are
//!    requeued and drained to the same bytes.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use clockmark::{Campaign, CampaignLimits, CampaignSpec};
use clockmark_corpus::{Corpus, TraceHeader};
use clockmark_fleet::{run_fleet, FleetConfig, ShardWorker};
use clockmark_serve::{ServeLimits, Server, ServerHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "cm_fleet_e2e_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&path).ok();
        fs::create_dir_all(&path).expect("mkdir");
        TempDir(path)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

fn pattern() -> Vec<bool> {
    use clockmark_seq::{Lfsr, SequenceGenerator};
    let mut lfsr = Lfsr::maximal(6).expect("valid");
    (0..63).map(|_| lfsr.next_bit()).collect()
}

fn trace(pattern: &[bool], n: usize, phase: usize, amp: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let wm = if pattern[(i + phase) % pattern.len()] {
                amp
            } else {
                0.0
            };
            wm + rng.random_range(-2.0..2.0)
        })
        .collect()
}

/// A corpus of `marked` watermarked traces plus one unmarked control,
/// and the campaign spec naming all of them.
fn build_fixture(dir: &Path, pattern: &[bool], marked: usize, cycles: usize) -> CampaignSpec {
    let corpus_dir = dir.join("corpus");
    let mut corpus = Corpus::create(&corpus_dir).expect("creates");
    let mut names = Vec::new();
    for i in 0..marked {
        let name = format!("marked_{i}");
        let w = trace(pattern, cycles, 7 + i, 1.0, 100 + i as u64);
        corpus.add(&name, TraceHeader::bare(0), &w).expect("adds");
        names.push(name);
    }
    let w = trace(pattern, cycles, 0, 0.0, 999);
    corpus
        .add("unmarked", TraceHeader::bare(0), &w)
        .expect("adds");
    names.push("unmarked".to_owned());
    let mut spec = CampaignSpec::new(corpus_dir, pattern.to_vec(), names);
    spec.checkpoint_cycles = 1_000;
    spec.chunk_cycles = 256;
    spec
}

fn spawn_worker() -> ServerHandle {
    Server::new()
        .with_fleet(Arc::new(ShardWorker::new().with_threads(1)))
        .with_limits(ServeLimits {
            max_sessions: 16,
            idle_timeout: Duration::from_secs(120),
            ..ServeLimits::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind worker")
}

fn reference_report(dir: &Path, spec: CampaignSpec) -> Vec<u8> {
    let campaign = Campaign::create(dir.join("reference"), spec)
        .expect("creates")
        .with_threads(1);
    let status = campaign.run(&CampaignLimits::none()).expect("runs");
    assert!(status.is_complete());
    fs::read(dir.join("reference").join("report.json")).expect("reads reference")
}

#[test]
fn fleet_report_is_byte_identical_to_single_node() {
    let dir = TempDir::new("identity");
    let pattern = pattern();
    let spec = build_fixture(&dir.0, &pattern, 5, 3_000);
    let reference = reference_report(&dir.0, spec.clone());

    let workers: Vec<ServerHandle> = (0..2).map(|_| spawn_worker()).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();

    let mut config = FleetConfig::new(dir.0.join("fleet"), addrs);
    config.shards = 4;
    config.worker_threads = 1;
    config.heartbeat_interval = Duration::from_millis(100);
    let summary = run_fleet(&config, spec).expect("fleet completes");
    assert_eq!(summary.merged_jobs, summary.total_jobs);
    assert_eq!(summary.total_jobs, 6);
    assert!(summary.shards <= 4);
    assert_eq!(summary.workers_lost, 0);

    let merged = fs::read(&summary.report_path).expect("reads merged");
    assert_eq!(
        merged, reference,
        "fleet report.json must be byte-identical to the single-node run"
    );

    // The aggregated progress file is campaign-status compatible and
    // settled at done == total.
    let progress = clockmark_fleet::coordinator::read_progress(&dir.0.join("fleet"))
        .expect("fleet progress.json decodes");
    assert_eq!(progress.done, 6);
    assert_eq!(progress.total, 6);

    for worker in workers {
        worker.shutdown();
    }
}

#[test]
fn a_dead_worker_address_reassigns_its_shards() {
    let dir = TempDir::new("deadworker");
    let pattern = pattern();
    let spec = build_fixture(&dir.0, &pattern, 3, 2_000);
    let reference = reference_report(&dir.0, spec.clone());

    let live = spawn_worker();
    // A listener that never speaks CMRPC1: connects succeed, the
    // handshake times out, and the coordinator must bury the address.
    let mute = std::net::TcpListener::bind("127.0.0.1:0").expect("bind mute");
    let mute_addr = mute.local_addr().expect("addr").to_string();

    let mut config = FleetConfig::new(
        dir.0.join("fleet"),
        vec![live.local_addr().to_string(), mute_addr],
    );
    config.shards = 4;
    config.worker_threads = 1;
    config.heartbeat_interval = Duration::from_millis(100);
    config.heartbeat_misses = 2;
    let summary = run_fleet(&config, spec).expect("fleet completes on the survivor");
    assert_eq!(summary.merged_jobs, summary.total_jobs);
    assert_eq!(summary.workers_lost, 1);

    let merged = fs::read(&summary.report_path).expect("reads merged");
    assert_eq!(merged, reference, "report bytes survive a dead worker");
    live.shutdown();
    drop(mute);
}

#[test]
fn interrupted_assignments_drain_to_the_same_bytes() {
    let dir = TempDir::new("interrupt");
    let pattern = pattern();
    let spec = build_fixture(&dir.0, &pattern, 3, 2_000);
    let reference = reference_report(&dir.0, spec.clone());

    let worker = spawn_worker();
    let mut config = FleetConfig::new(dir.0.join("fleet"), vec![worker.local_addr().to_string()]);
    config.shards = 2;
    config.worker_threads = 1;
    config.heartbeat_interval = Duration::from_millis(100);
    // Every assignment lands at most one job and interrupts mid-trace:
    // shards cycle through the queue with live checkpoints many times
    // before draining.
    config.max_jobs_per_assign = 1;
    config.interrupt_after_cycles = 700;
    let summary = run_fleet(&config, spec).expect("fleet completes");
    assert_eq!(summary.merged_jobs, summary.total_jobs);

    let merged = fs::read(&summary.report_path).expect("reads merged");
    assert_eq!(
        merged, reference,
        "checkpoint-interrupted shards still merge to identical bytes"
    );
    worker.shutdown();
}
