use clockmark_power::Frequency;

/// A first-order model of the power delivery network between the die and
/// the shunt resistor.
///
/// On a real board the chip's cycle-by-cycle current steps are smoothed by
/// the package inductance and decoupling capacitance before they reach the
/// shunt: the board current follows the die current with a single-pole
/// response of time constant `τ = R·C`. For the watermark this matters —
/// the `WMARK` square wave is low-pass filtered, attenuating the
/// cycle-aligned amplitude the CPA detector correlates against.
///
/// The default [`PdnModel::typical`] uses τ = 20 ns, a mild filter against
/// the paper's 100 ns clock period; [`PdnModel::none`] bypasses filtering
/// (the idealisation used unless a sweep asks otherwise).
///
/// ```
/// use clockmark_measure::PdnModel;
///
/// let pdn = PdnModel::typical();
/// let mut samples = vec![0.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// pdn.filter_samples(&mut samples, 2e-9);
/// // The step is smoothed: the first post-step sample is well below 1.
/// assert!(samples[1] < 0.2);
/// // …and the response keeps rising towards the plateau.
/// assert!(samples[5] > samples[2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdnModel {
    /// The RC time constant, in seconds. Zero disables filtering.
    pub time_constant_s: f64,
}

impl PdnModel {
    /// No PDN filtering (ideal measurement).
    pub fn none() -> Self {
        PdnModel {
            time_constant_s: 0.0,
        }
    }

    /// A typical small-package network: τ = 20 ns.
    pub fn typical() -> Self {
        PdnModel {
            time_constant_s: 20e-9,
        }
    }

    /// Whether the model actually filters.
    pub fn is_active(&self) -> bool {
        self.time_constant_s > 0.0
    }

    /// The single-pole smoothing factor for a sample interval `dt`.
    pub fn alpha(&self, dt: f64) -> f64 {
        if !self.is_active() {
            return 1.0;
        }
        1.0 - (-dt / self.time_constant_s).exp()
    }

    /// Filters an oversampled waveform in place (board current given die
    /// current), starting from the first sample's value at rest.
    pub fn filter_samples(&self, samples: &mut [f64], dt: f64) {
        if !self.is_active() || samples.is_empty() {
            return;
        }
        let alpha = self.alpha(dt);
        let mut state = samples[0];
        for v in samples.iter_mut() {
            state += alpha * (*v - state);
            *v = state;
        }
    }

    /// The attenuation of a cycle-alternating square wave after per-cycle
    /// averaging, relative to the unfiltered wave — the worst-case
    /// (fastest) spectral component of the watermark, for SNR predictions
    /// (1.0 = no attenuation).
    ///
    /// At steady alternation with period `T` per level, the filtered state
    /// bounces between `1/(1+e^(−r))` and its mirror (`r = T/τ`), and each
    /// per-cycle average loses `q = (τ/T)(1 − e^(−r))` of the approach, so
    /// the swing of the averages is `1 − q·(1 + tanh(r/2))`.
    pub fn square_wave_attenuation(&self, f_clk: Frequency) -> f64 {
        if !self.is_active() {
            return 1.0;
        }
        let t = f_clk.period_seconds();
        let tau = self.time_constant_s;
        let r = t / tau;
        let q = (1.0 - (-r).exp()) / r;
        (1.0 - q * (1.0 + (r / 2.0).tanh())).clamp(0.0, 1.0)
    }
}

impl Default for PdnModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_is_a_passthrough() {
        let pdn = PdnModel::none();
        let original = vec![0.5, -1.0, 3.0, 0.0];
        let mut filtered = original.clone();
        pdn.filter_samples(&mut filtered, 2e-9);
        assert_eq!(filtered, original);
        assert_eq!(
            pdn.square_wave_attenuation(Frequency::from_megahertz(10.0)),
            1.0
        );
    }

    #[test]
    fn step_response_settles_exponentially() {
        let pdn = PdnModel {
            time_constant_s: 10e-9,
        };
        let dt = 2e-9;
        let mut samples = vec![0.0];
        samples.extend(std::iter::repeat_n(1.0, 30));
        pdn.filter_samples(&mut samples, dt);
        // Monotone rise…
        assert!(samples.windows(2).all(|w| w[1] >= w[0]));
        // …to within 1% after 5τ (25 samples).
        assert!(samples[26] > 0.99, "settled to {}", samples[26]);
        // One τ in (5 samples): ~63 %.
        assert!((samples[5] - 0.63).abs() < 0.05, "1τ point {}", samples[5]);
    }

    #[test]
    fn attenuation_grows_with_time_constant() {
        let f = Frequency::from_megahertz(10.0);
        let mut last = 1.0;
        for tau_ns in [5.0, 20.0, 50.0, 200.0] {
            let pdn = PdnModel {
                time_constant_s: tau_ns * 1e-9,
            };
            let a = pdn.square_wave_attenuation(f);
            assert!(a < last, "τ={tau_ns} ns: {a} !< {last}");
            assert!((0.0..=1.0).contains(&a));
            last = a;
        }
    }

    #[test]
    fn analytic_attenuation_matches_filtered_average() {
        // Filter an alternating-cycle square wave and compare per-cycle
        // averages with the analytic figure.
        let pdn = PdnModel {
            time_constant_s: 25e-9,
        };
        let samples_per_cycle = 50usize;
        let dt = 2e-9;
        let cycles = 400usize;
        let mut wave: Vec<f64> = (0..cycles * samples_per_cycle)
            .map(|i| {
                if (i / samples_per_cycle).is_multiple_of(2) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        pdn.filter_samples(&mut wave, dt);

        // Per-cycle averages, skipping the settling prefix.
        let averages: Vec<f64> = (4..cycles - 1)
            .map(|c| {
                wave[c * samples_per_cycle..(c + 1) * samples_per_cycle]
                    .iter()
                    .sum::<f64>()
                    / samples_per_cycle as f64
            })
            .collect();
        let hi: f64 =
            averages.iter().step_by(2).sum::<f64>() / averages.iter().step_by(2).count() as f64;
        let lo: f64 = averages.iter().skip(1).step_by(2).sum::<f64>()
            / averages.iter().skip(1).step_by(2).count() as f64;
        let measured = (hi - lo).abs();
        let predicted = pdn.square_wave_attenuation(Frequency::from_megahertz(10.0));
        assert!(
            (measured - predicted).abs() < 0.05,
            "measured swing {measured:.3} vs analytic {predicted:.3}"
        );
    }

    proptest! {
        #[test]
        fn filtering_preserves_bounds(values in proptest::collection::vec(-5.0f64..5.0, 1..200), tau_ns in 1.0f64..100.0) {
            let pdn = PdnModel { time_constant_s: tau_ns * 1e-9 };
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut filtered = values.clone();
            pdn.filter_samples(&mut filtered, 2e-9);
            for v in filtered {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }

        #[test]
        fn alpha_in_unit_interval(tau_ns in 0.0f64..1000.0, dt_ns in 0.1f64..100.0) {
            let pdn = PdnModel { time_constant_s: tau_ns * 1e-9 };
            let a = pdn.alpha(dt_ns * 1e-9);
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }
}
