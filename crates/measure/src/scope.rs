use clockmark_power::Frequency;

/// A digital storage oscilloscope front end.
///
/// Models the three effects that matter for per-cycle power averaging:
/// sample rate (how many points land in one clock cycle), additive vertical
/// front-end noise, and ADC quantisation.
///
/// ```
/// use clockmark_measure::Oscilloscope;
///
/// let scope = Oscilloscope::mso6032a();
/// assert_eq!(scope.sample_rate.megahertz(), 500.0);
/// assert_eq!(scope.adc_bits, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oscilloscope {
    /// Real-time sample rate (500 MS/s in the paper's setup).
    pub sample_rate: Frequency,
    /// ADC resolution in bits (8 for the MSO6032A).
    pub adc_bits: u32,
    /// Full-scale input range in volts (bipolar: ±`full_scale_volts / 2`
    /// around the configured offset).
    pub full_scale_volts: f64,
    /// RMS of the additive per-sample vertical noise, in volts. This is the
    /// reproduction's calibration knob: it lumps probe noise, board di/dt
    /// ringing and decoupling ripple into one white source.
    pub vertical_noise_volts: f64,
}

impl Oscilloscope {
    /// An Agilent MSO6032A-like configuration as used on the paper's test
    /// board, with the noise knob calibrated for Fig. 5-scale correlation
    /// peaks (see crate docs).
    pub fn mso6032a() -> Self {
        Oscilloscope {
            sample_rate: Frequency::from_megahertz(500.0),
            adc_bits: 8,
            full_scale_volts: 0.8,
            vertical_noise_volts: 72e-3,
        }
    }

    /// Returns a copy with a different noise level (ablation use).
    pub fn with_vertical_noise(mut self, volts_rms: f64) -> Self {
        self.vertical_noise_volts = volts_rms;
        self
    }

    /// Returns a copy with a different ADC resolution (ablation use).
    pub fn with_adc_bits(mut self, bits: u32) -> Self {
        self.adc_bits = bits;
        self
    }

    /// The voltage step of one ADC code.
    pub fn lsb_volts(&self) -> f64 {
        self.full_scale_volts / (1u64 << self.adc_bits) as f64
    }

    /// Quantises a voltage (relative to the configured offset) to the ADC
    /// grid, clipping at the full-scale limits.
    pub fn quantize(&self, volts: f64) -> f64 {
        let half = self.full_scale_volts / 2.0;
        let clipped = volts.clamp(-half, half);
        let lsb = self.lsb_volts();
        (clipped / lsb).round() * lsb
    }
}

impl Default for Oscilloscope {
    fn default() -> Self {
        Self::mso6032a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_scope_takes_50_samples_per_10mhz_cycle() {
        let scope = Oscilloscope::mso6032a();
        let per_cycle = scope.sample_rate.hertz() / Frequency::from_megahertz(10.0).hertz();
        assert_eq!(per_cycle, 50.0);
    }

    #[test]
    fn lsb_matches_bits_and_range() {
        let scope = Oscilloscope::mso6032a();
        assert!((scope.lsb_volts() - 0.8 / 256.0).abs() < 1e-15);
        let hi_res = scope.with_adc_bits(12);
        assert!((hi_res.lsb_volts() - 0.8 / 4096.0).abs() < 1e-15);
    }

    #[test]
    fn quantize_clips_at_full_scale() {
        let scope = Oscilloscope::mso6032a();
        assert_eq!(scope.quantize(10.0), scope.quantize(0.4));
        assert_eq!(scope.quantize(-10.0), scope.quantize(-0.4));
    }

    #[test]
    fn quantize_is_idempotent() {
        let scope = Oscilloscope::mso6032a();
        for v in [-0.3, -0.001, 0.0, 0.017, 0.39] {
            let q = scope.quantize(v);
            assert_eq!(scope.quantize(q), q);
        }
    }

    proptest! {
        #[test]
        fn quantization_error_is_bounded_by_half_lsb(v in -0.39f64..0.39) {
            let scope = Oscilloscope::mso6032a();
            let q = scope.quantize(v);
            prop_assert!((q - v).abs() <= scope.lsb_volts() / 2.0 + 1e-15);
        }
    }
}
