//! A model of the paper's measurement chain.
//!
//! The silicon experiments in Kufel et al. (DATE 2014) measure the total
//! chip current through a **270 mΩ shunt resistor** with an Agilent
//! MSO6032A oscilloscope and a 1130A active differential probe, sampling at
//! **500 MS/s** while the chip runs at **10 MHz** — 50 samples per clock
//! cycle, which are averaged into one value per cycle to form the measured
//! vector `Y` of the CPA detector.
//!
//! This crate reproduces that chain numerically:
//!
//! 1. per-cycle chip power → shunt voltage ([`ShuntProbe`]),
//! 2. oversampling with front-end noise, supply ripple and slow drift
//!    ([`Oscilloscope`], [`NoiseModel`]),
//! 3. ADC quantisation,
//! 4. per-cycle averaging back into a power-equivalent trace
//!    ([`Acquisition::acquire`]).
//!
//! The front-end noise level is the single calibration knob of the whole
//! reproduction: it lumps board-level di/dt ringing, decoupling ripple,
//! probe noise and quantisation into one per-sample σ. The default is
//! calibrated so that the paper-scale experiment (1.5 mW watermark,
//! 300,000 cycles) produces correlation peaks of the magnitude reported in
//! Fig. 5 (ρ ≈ 0.015–0.02 over a ±0.005 floor).
//!
//! ```
//! use clockmark_measure::Acquisition;
//! use clockmark_power::{Frequency, Power, PowerTrace};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let chain = Acquisition::paper_chain(Frequency::from_megahertz(10.0));
//! assert_eq!(chain.samples_per_cycle(), 50);
//!
//! let power = PowerTrace::constant(Power::from_milliwatts(5.0), 1000);
//! let mut rng = StdRng::seed_from_u64(1);
//! let y = chain.acquire(&power, &mut rng);
//! assert_eq!(y.len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acquisition;
mod noise;
mod pdn;
mod scope;
mod shunt;

pub use acquisition::{Acquisition, CaptureAttack, MeasuredTrace};
pub use noise::{gaussian, NoiseModel};
pub use pdn::PdnModel;
pub use scope::Oscilloscope;
pub use shunt::ShuntProbe;
