use clockmark_power::Frequency;
use rand::Rng;

/// Draws one standard-normal sample using the Marsaglia polar method.
///
/// Kept local so the crate needs no distribution dependency; the quality is
/// ample for noise injection.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let mean: f64 = (0..10_000).map(|_| clockmark_measure::gaussian(&mut rng)).sum::<f64>() / 1e4;
/// assert!(mean.abs() < 0.05);
/// ```
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Deterministic (non-white) disturbances on the measured rail.
///
/// Two components beyond the scope's white noise:
///
/// - a sinusoidal **supply ripple** (voltage-regulator switching residue),
///   which adds a periodic component the CPA floor has to reject, and
/// - a slow random-walk **drift** (thermal / regulator wander) applied per
///   clock cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Peak amplitude of the supply ripple, in volts at the probe.
    pub ripple_amplitude_volts: f64,
    /// Frequency of the supply ripple.
    pub ripple_frequency: Frequency,
    /// Per-cycle standard deviation of the drift random walk, in volts.
    pub drift_volts_per_cycle: f64,
}

impl NoiseModel {
    /// A regulator-like default: 1 mV ripple at 133 kHz plus a slow
    /// sub-microvolt drift.
    pub fn regulator_default() -> Self {
        NoiseModel {
            ripple_amplitude_volts: 1e-3,
            ripple_frequency: Frequency::from_hertz(133_000.0),
            drift_volts_per_cycle: 2e-8,
        }
    }

    /// A noiseless configuration (white scope noise still applies).
    pub fn none() -> Self {
        NoiseModel {
            ripple_amplitude_volts: 0.0,
            ripple_frequency: Frequency::from_hertz(1.0),
            drift_volts_per_cycle: 0.0,
        }
    }

    /// The ripple contribution at absolute time `t` seconds.
    pub fn ripple_at(&self, t_seconds: f64) -> f64 {
        if self.ripple_amplitude_volts == 0.0 {
            return 0.0;
        }
        self.ripple_amplitude_volts
            * (2.0 * std::f64::consts::PI * self.ripple_frequency.hertz() * t_seconds).sin()
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::regulator_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn ripple_is_periodic_and_bounded() {
        let noise = NoiseModel::regulator_default();
        let period = 1.0 / noise.ripple_frequency.hertz();
        for i in 0..100 {
            let t = i as f64 * 1e-7;
            let v = noise.ripple_at(t);
            assert!(v.abs() <= noise.ripple_amplitude_volts + 1e-15);
            assert!((v - noise.ripple_at(t + period)).abs() < 1e-12);
        }
    }

    #[test]
    fn none_model_is_silent() {
        let noise = NoiseModel::none();
        assert_eq!(noise.ripple_at(0.123), 0.0);
        assert_eq!(noise.drift_volts_per_cycle, 0.0);
    }
}
