use clockmark_power::Power;

/// The shunt resistor and supply rail converting chip power into the
/// voltage an oscilloscope probe observes.
///
/// The chip draws `I = P / V_dd` from the rail; the probe measures
/// `V = I · R_shunt` across the shunt. The conversion is linear, so CPA
/// (which is scale- and offset-invariant) is unaffected by the exact
/// values — they matter only for realistic noise bookkeeping.
///
/// ```
/// use clockmark_measure::ShuntProbe;
/// use clockmark_power::Power;
///
/// let probe = ShuntProbe::paper();
/// let v = probe.power_to_volts(Power::from_milliwatts(5.0));
/// // 5 mW at 1.2 V is ~4.17 mA; across 270 mΩ that is ~1.13 mV.
/// assert!((v - 1.125e-3).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShuntProbe {
    /// Shunt resistance in ohms (the paper uses 270 mΩ).
    pub resistance_ohms: f64,
    /// Nominal supply voltage in volts (1.2 V for the 65 nm chips).
    pub supply_volts: f64,
}

impl ShuntProbe {
    /// The paper's test-board configuration: 270 mΩ shunt on a 1.2 V rail.
    pub fn paper() -> Self {
        ShuntProbe {
            resistance_ohms: 0.270,
            supply_volts: 1.2,
        }
    }

    /// Voltage across the shunt for a given chip power draw.
    pub fn power_to_volts(&self, power: Power) -> f64 {
        power.watts() / self.supply_volts * self.resistance_ohms
    }

    /// Chip power corresponding to a shunt voltage.
    pub fn volts_to_power(&self, volts: f64) -> Power {
        Power::from_watts(volts / self.resistance_ohms * self.supply_volts)
    }
}

impl Default for ShuntProbe {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions_are_inverse() {
        let probe = ShuntProbe::paper();
        let p = Power::from_milliwatts(7.3);
        let v = probe.power_to_volts(p);
        let back = probe.volts_to_power(v);
        assert!((back.watts() - p.watts()).abs() < 1e-15);
    }

    #[test]
    fn zero_power_reads_zero_volts() {
        assert_eq!(ShuntProbe::paper().power_to_volts(Power::ZERO), 0.0);
    }

    proptest! {
        #[test]
        fn conversion_is_linear(mw in 0.0f64..1e3, scale in 0.1f64..10.0) {
            let probe = ShuntProbe::paper();
            let v1 = probe.power_to_volts(Power::from_milliwatts(mw));
            let v2 = probe.power_to_volts(Power::from_milliwatts(mw * scale));
            prop_assert!((v2 - v1 * scale).abs() < 1e-12);
        }
    }
}
