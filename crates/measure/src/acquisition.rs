use crate::{gaussian, NoiseModel, Oscilloscope, PdnModel, ShuntProbe};
use clockmark_power::{Frequency, Power, PowerTrace};
use rand::Rng;

/// The per-cycle measured vector `Y` of the CPA detector.
///
/// Stored in power-equivalent watts (converted back through the shunt), so
/// detection code can reason in the same units as the simulation. CPA is
/// affine-invariant, so the unit choice does not influence ρ.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeasuredTrace {
    watts: Vec<f64>,
}

impl MeasuredTrace {
    /// The per-cycle power-equivalent values.
    pub fn as_watts(&self) -> &[f64] {
        &self.watts
    }

    /// Number of measured cycles.
    pub fn len(&self) -> usize {
        self.watts.len()
    }

    /// Whether no cycles were measured.
    pub fn is_empty(&self) -> bool {
        self.watts.is_empty()
    }

    /// Converts into a plain [`PowerTrace`].
    pub fn into_power_trace(self) -> PowerTrace {
        PowerTrace::from_watts(self.watts)
    }
}

/// Capture-time desynchronization: what an adversary (or a hostile
/// operating point) does to the *device clock* while the verifier's scope
/// samples on its own, nominal timebase.
///
/// Two effects compose, both deterministic in [`CaptureAttack::seed`]:
///
/// - **Clock jitter** — every device cycle's duration is perturbed by
///   `N(0, jitter_sigma_cycles)` nominal cycles, so the alignment between
///   device cycles and the scope's averaging windows random-walks.
/// - **DVFS scaling** — every `dvfs_dwell_cycles` the device hops to a new
///   frequency drawn uniformly from `±dvfs_scale_span / 2` around nominal,
///   stretching or compressing whole dwell segments of the capture.
///
/// The verifier still bins `samples_per_cycle()` scope samples per
/// *nominal* cycle (it cannot know the device's true timebase — that is
/// the attack), so the measured vector keeps its length while its contents
/// smear across device cycles. [`CaptureAttack::none`] is the exact
/// identity: [`Acquisition::acquire_attacked`] then delegates to
/// [`Acquisition::acquire`] and produces byte-identical output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureAttack {
    /// σ of the per-cycle duration perturbation, in nominal cycles.
    pub jitter_sigma_cycles: f64,
    /// Device cycles between DVFS frequency hops.
    pub dvfs_dwell_cycles: u64,
    /// Full width of the uniform frequency-scale window (0.1 = ±5 %).
    pub dvfs_scale_span: f64,
    /// Seed of the attack's own deterministic draws (independent of the
    /// acquisition rng, so the same physical noise can be captured with
    /// and without the attack).
    pub seed: u64,
}

impl CaptureAttack {
    /// No attack: the identity capture.
    pub fn none() -> Self {
        CaptureAttack {
            jitter_sigma_cycles: 0.0,
            dvfs_dwell_cycles: 1,
            dvfs_scale_span: 0.0,
            seed: 0,
        }
    }

    /// Whether this attack is the exact identity.
    pub fn is_none(&self) -> bool {
        self.jitter_sigma_cycles == 0.0 && self.dvfs_scale_span == 0.0
    }

    /// splitmix64 of `(seed, counter)` — counter-based so the timewarp is
    /// a pure function of the attack spec, never of evaluation order.
    fn hash(&self, counter: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(counter.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn uniform(&self, counter: u64) -> f64 {
        (self.hash(counter) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn gaussian(&self, counter: u64) -> f64 {
        let u1 = self.uniform(counter.wrapping_mul(2)).max(1e-12);
        let u2 = self.uniform(counter.wrapping_mul(2).wrapping_add(1));
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Duration of device cycle `c` in units of the nominal cycle period.
    /// Clamped below so a large jitter draw cannot run time backwards.
    fn cycle_duration(&self, c: u64) -> f64 {
        let segment = c / self.dvfs_dwell_cycles.max(1);
        // Hash streams: even counters feed DVFS, odd feed jitter — the
        // two effects stay independent under a shared seed.
        let scale = 1.0 + self.dvfs_scale_span * (self.uniform(segment.wrapping_mul(2)) - 0.5);
        let jitter = self.jitter_sigma_cycles * self.gaussian(c.wrapping_mul(2).wrapping_add(1));
        (scale + jitter).max(0.05)
    }
}

/// The full acquisition chain: power → shunt voltage → oversampled, noisy,
/// quantised scope samples → per-cycle averages.
///
/// See the [crate documentation](crate) for the model and an example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Acquisition {
    /// Shunt/probe conversion.
    pub shunt: ShuntProbe,
    /// Scope front end.
    pub scope: Oscilloscope,
    /// Deterministic disturbances.
    pub noise: NoiseModel,
    /// Power-delivery-network smoothing between die and shunt (defaults to
    /// none; see [`PdnModel`]).
    pub pdn: PdnModel,
    /// Device clock frequency (sets the averaging window).
    pub f_clk: Frequency,
}

impl Acquisition {
    /// The paper's chain: 270 mΩ shunt at 1.2 V, MSO6032A-like scope at
    /// 500 MS/s, regulator-like ripple, at the given device clock.
    pub fn paper_chain(f_clk: Frequency) -> Self {
        Acquisition {
            shunt: ShuntProbe::paper(),
            scope: Oscilloscope::mso6032a(),
            noise: NoiseModel::regulator_default(),
            pdn: PdnModel::none(),
            f_clk,
        }
    }

    /// Scope samples averaged into one cycle value (50 in the paper).
    pub fn samples_per_cycle(&self) -> usize {
        (self.scope.sample_rate.hertz() / self.f_clk.hertz()).round() as usize
    }

    /// Effective white-noise σ of one *cycle-averaged* sample, expressed as
    /// power. Useful for analytic SNR predictions: averaging `k` samples
    /// divides the per-sample σ by √k.
    pub fn cycle_noise_sigma(&self) -> Power {
        let k = self.samples_per_cycle().max(1) as f64;
        let sigma_v = self.scope.vertical_noise_volts / k.sqrt();
        self.shunt.volts_to_power(sigma_v)
    }

    /// Digitises a per-cycle power trace into the measured vector `Y`.
    ///
    /// For each clock cycle the true shunt voltage is held constant (the
    /// simulator already averages within the cycle), `samples_per_cycle()`
    /// scope samples are drawn with ripple, drift and white noise, each is
    /// quantised, and their mean becomes the cycle's measurement. The DC
    /// level is auto-offset to the trace mean so the signal stays inside
    /// the ADC range, exactly like centring the trace on a scope screen.
    pub fn acquire<R: Rng + ?Sized>(&self, power: &PowerTrace, rng: &mut R) -> MeasuredTrace {
        let k = self.samples_per_cycle().max(1);
        let _span = clockmark_obs::span("measure.acquire")
            .field("cycles", power.len())
            .field("samples_per_cycle", k);
        let dt = 1.0 / self.scope.sample_rate.hertz();
        let t_cycle = self.f_clk.period_seconds();
        let dc_offset = self.shunt.power_to_volts(power.mean());

        let mut watts = Vec::with_capacity(power.len());
        let mut drift = 0.0f64;
        // PDN state: board voltage tracking the die voltage with a
        // single-pole lag that persists across cycle boundaries.
        let pdn_alpha = self.pdn.alpha(dt);
        let mut pdn_state = power
            .get(0)
            .map(|p| self.shunt.power_to_volts(p) - dc_offset)
            .unwrap_or(0.0);
        for (cycle, p) in power.iter().enumerate() {
            let v_true = self.shunt.power_to_volts(p) - dc_offset;
            drift += gaussian(rng) * self.noise.drift_volts_per_cycle;
            let t0 = cycle as f64 * t_cycle;
            let mut acc = 0.0f64;
            for s in 0..k {
                let t = t0 + s as f64 * dt;
                let v_board = if self.pdn.is_active() {
                    pdn_state += pdn_alpha * (v_true - pdn_state);
                    pdn_state
                } else {
                    v_true
                };
                let v = v_board
                    + drift
                    + self.noise.ripple_at(t)
                    + gaussian(rng) * self.scope.vertical_noise_volts;
                acc += self.scope.quantize(v);
            }
            let v_avg = acc / k as f64 + dc_offset;
            watts.push(self.shunt.volts_to_power(v_avg).watts());
        }
        clockmark_obs::counter_add("measure.cycles", power.len() as u64);
        clockmark_obs::counter_add("measure.samples", (power.len() * k) as u64);
        MeasuredTrace { watts }
    }

    /// Digitises a per-cycle power trace while the device clock is under a
    /// capture-time desynchronization attack.
    ///
    /// The scope keeps its nominal timebase — `samples_per_cycle()`
    /// samples are still averaged into each *nominal* cycle bin — but the
    /// device's cycles last `CaptureAttack::cycle_duration` nominal
    /// periods each, so a scope sample at time `t` reads whichever device
    /// cycle is actually live at `t`. Drift still advances once per
    /// nominal cycle and white noise once per sample, so the rng draw
    /// count matches [`Acquisition::acquire`] exactly; with
    /// [`CaptureAttack::none`] this method delegates to `acquire` and is
    /// byte-identical to it.
    pub fn acquire_attacked<R: Rng + ?Sized>(
        &self,
        power: &PowerTrace,
        attack: &CaptureAttack,
        rng: &mut R,
    ) -> MeasuredTrace {
        if attack.is_none() {
            return self.acquire(power, rng);
        }
        let k = self.samples_per_cycle().max(1);
        let _span = clockmark_obs::span("measure.acquire_attacked")
            .field("cycles", power.len())
            .field("samples_per_cycle", k);
        let dt = 1.0 / self.scope.sample_rate.hertz();
        let t_cycle = self.f_clk.period_seconds();
        let dc_offset = self.shunt.power_to_volts(power.mean());

        // Two-pointer walk over the device's warped timebase: `dev_end`
        // is when (in nominal seconds) device cycle `dev` finishes.
        let mut dev: usize = 0;
        let mut dev_end = t_cycle * attack.cycle_duration(0);
        let last = power.len().saturating_sub(1);

        let mut watts = Vec::with_capacity(power.len());
        let mut drift = 0.0f64;
        let pdn_alpha = self.pdn.alpha(dt);
        let mut pdn_state = power
            .get(0)
            .map(|p| self.shunt.power_to_volts(p) - dc_offset)
            .unwrap_or(0.0);
        for cycle in 0..power.len() {
            drift += gaussian(rng) * self.noise.drift_volts_per_cycle;
            let t0 = cycle as f64 * t_cycle;
            let mut acc = 0.0f64;
            for s in 0..k {
                let t = t0 + s as f64 * dt;
                while t >= dev_end && dev < last {
                    dev += 1;
                    dev_end += t_cycle * attack.cycle_duration(dev as u64);
                }
                let p = power.get(dev).unwrap_or_default();
                let v_true = self.shunt.power_to_volts(p) - dc_offset;
                let v_board = if self.pdn.is_active() {
                    pdn_state += pdn_alpha * (v_true - pdn_state);
                    pdn_state
                } else {
                    v_true
                };
                let v = v_board
                    + drift
                    + self.noise.ripple_at(t)
                    + gaussian(rng) * self.scope.vertical_noise_volts;
                acc += self.scope.quantize(v);
            }
            let v_avg = acc / k as f64 + dc_offset;
            watts.push(self.shunt.volts_to_power(v_avg).watts());
        }
        clockmark_obs::counter_add("measure.cycles", power.len() as u64);
        clockmark_obs::counter_add("measure.samples", (power.len() * k) as u64);
        MeasuredTrace { watts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> Acquisition {
        Acquisition::paper_chain(Frequency::from_megahertz(10.0))
    }

    #[test]
    fn fifty_samples_per_cycle_at_paper_settings() {
        assert_eq!(chain().samples_per_cycle(), 50);
    }

    #[test]
    fn acquisition_preserves_length_and_mean() {
        let power = PowerTrace::constant(Power::from_milliwatts(5.0), 20_000);
        let mut rng = StdRng::seed_from_u64(11);
        let y = chain().acquire(&power, &mut rng);
        assert_eq!(y.len(), 20_000);
        // The calibrated chain noise is ~45 mW per averaged cycle, so the
        // 20k-cycle mean has σ ≈ 0.32 mW.
        let mean = y.as_watts().iter().sum::<f64>() / y.len() as f64;
        assert!(
            (mean - 5e-3).abs() < 1.2e-3,
            "mean {mean} should be near 5 mW"
        );
    }

    #[test]
    fn averaging_reduces_noise_by_sqrt_k() {
        // Empirical σ of the cycle-averaged trace should be close to the
        // per-sample σ divided by √50 (drift/ripple/quantisation add a bit).
        let power = PowerTrace::constant(Power::from_milliwatts(5.0), 4000);
        let mut acq = chain();
        acq.noise = NoiseModel::none();
        let mut rng = StdRng::seed_from_u64(12);
        let y = acq.acquire(&power, &mut rng);
        let mean = y.as_watts().iter().sum::<f64>() / y.len() as f64;
        let sigma = (y
            .as_watts()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / y.len() as f64)
            .sqrt();
        let predicted = acq.cycle_noise_sigma().watts();
        assert!(
            (sigma - predicted).abs() / predicted < 0.15,
            "sigma {sigma:.3e} vs predicted {predicted:.3e}"
        );
    }

    #[test]
    fn acquisition_is_deterministic_per_seed() {
        let power = PowerTrace::constant(Power::from_milliwatts(3.0), 100);
        let a = chain().acquire(&power, &mut StdRng::seed_from_u64(5));
        let b = chain().acquire(&power, &mut StdRng::seed_from_u64(5));
        let c = chain().acquire(&power, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn watermark_amplitude_survives_the_chain() {
        // A square-wave power signal must still be visible (in the mean
        // difference sense) after digitisation.
        let hi = Power::from_milliwatts(6.5);
        let lo = Power::from_milliwatts(5.0);
        let power: PowerTrace = (0..100_000)
            .map(|i| if i % 2 == 0 { hi } else { lo })
            .collect();
        let mut rng = StdRng::seed_from_u64(13);
        let y = chain().acquire(&power, &mut rng);

        let (mut sum_hi, mut sum_lo) = (0.0, 0.0);
        for (i, v) in y.as_watts().iter().enumerate() {
            if i % 2 == 0 {
                sum_hi += v;
            } else {
                sum_lo += v;
            }
        }
        let delta = (sum_hi - sum_lo) / (y.len() / 2) as f64;
        // The calibrated front-end noise is ~45 mW per averaged cycle, so
        // the mean-difference estimator over 50k cycle pairs has σ ≈ 0.3 mW.
        assert!(
            (delta - 1.5e-3).abs() < 1.0e-3,
            "recovered amplitude {delta:.3e} should be near 1.5 mW"
        );
    }

    #[test]
    fn pdn_filtering_attenuates_the_recovered_square_wave() {
        use crate::PdnModel;
        let hi = Power::from_milliwatts(6.5);
        let lo = Power::from_milliwatts(5.0);
        let power: PowerTrace = (0..60_000)
            .map(|i| if i % 2 == 0 { hi } else { lo })
            .collect();

        let mut ideal = chain();
        ideal.noise = NoiseModel::none();
        ideal.scope = ideal.scope.with_vertical_noise(1e-3);
        let mut filtered = ideal;
        filtered.pdn = PdnModel {
            time_constant_s: 25e-9,
        };

        let swing = |acq: &Acquisition, seed: u64| {
            let y = acq.acquire(&power, &mut StdRng::seed_from_u64(seed));
            let (mut s_hi, mut s_lo) = (0.0, 0.0);
            for (i, v) in y.as_watts().iter().enumerate() {
                if i % 2 == 0 {
                    s_hi += v;
                } else {
                    s_lo += v;
                }
            }
            (s_hi - s_lo) / (y.len() / 2) as f64
        };

        let ideal_swing = swing(&ideal, 21);
        let filtered_swing = swing(&filtered, 21);
        let measured_attenuation = filtered_swing / ideal_swing;
        let predicted = filtered.pdn.square_wave_attenuation(filtered.f_clk);
        assert!(
            (measured_attenuation - predicted).abs() < 0.05,
            "attenuation {measured_attenuation:.3} vs analytic {predicted:.3}"
        );
    }

    #[test]
    fn empty_trace_acquires_empty() {
        let y = chain().acquire(&PowerTrace::new(), &mut StdRng::seed_from_u64(1));
        assert!(y.is_empty());
        assert_eq!(y.into_power_trace().len(), 0);
    }

    /// A period-2 square wave for desynchronization tests: any whole-cycle
    /// slip flips its polarity, so the recovered swing is a direct
    /// alignment meter.
    fn square_wave(cycles: usize) -> PowerTrace {
        let hi = Power::from_milliwatts(6.5);
        let lo = Power::from_milliwatts(5.0);
        (0..cycles)
            .map(|i| if i % 2 == 0 { hi } else { lo })
            .collect()
    }

    fn recovered_swing(y: &MeasuredTrace) -> f64 {
        let (mut s_hi, mut s_lo) = (0.0, 0.0);
        for (i, v) in y.as_watts().iter().enumerate() {
            if i % 2 == 0 {
                s_hi += v;
            } else {
                s_lo += v;
            }
        }
        (s_hi - s_lo) / (y.len() / 2) as f64
    }

    #[test]
    fn no_attack_capture_is_byte_identical_to_acquire() {
        let power = square_wave(2_000);
        let plain = chain().acquire(&power, &mut StdRng::seed_from_u64(31));
        let attacked = chain().acquire_attacked(
            &power,
            &CaptureAttack::none(),
            &mut StdRng::seed_from_u64(31),
        );
        let bits =
            |y: &MeasuredTrace| -> Vec<u64> { y.as_watts().iter().map(|w| w.to_bits()).collect() };
        assert_eq!(bits(&plain), bits(&attacked));
    }

    #[test]
    fn attacked_capture_is_deterministic_per_seed_pair() {
        let power = square_wave(1_000);
        let attack = CaptureAttack {
            jitter_sigma_cycles: 0.2,
            dvfs_dwell_cycles: 64,
            dvfs_scale_span: 0.1,
            seed: 5,
        };
        let a = chain().acquire_attacked(&power, &attack, &mut StdRng::seed_from_u64(7));
        let b = chain().acquire_attacked(&power, &attack, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let other_rng = chain().acquire_attacked(&power, &attack, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, other_rng);
        let other_attack = chain().acquire_attacked(
            &power,
            &CaptureAttack { seed: 6, ..attack },
            &mut StdRng::seed_from_u64(7),
        );
        assert_ne!(a, other_attack);
        assert_eq!(a.len(), power.len(), "attack preserves nominal length");
    }

    #[test]
    fn dvfs_scaling_destroys_alignment_with_the_nominal_timebase() {
        // Quiet front end so the swing measures alignment, not noise.
        let mut acq = chain();
        acq.noise = NoiseModel::none();
        acq.scope = acq.scope.with_vertical_noise(1e-3);
        let power = square_wave(40_000);

        let clean = acq.acquire(&power, &mut StdRng::seed_from_u64(41));
        let attack = CaptureAttack {
            jitter_sigma_cycles: 0.0,
            dvfs_dwell_cycles: 512,
            dvfs_scale_span: 0.2,
            seed: 9,
        };
        let warped = acq.acquire_attacked(&power, &attack, &mut StdRng::seed_from_u64(41));

        let clean_swing = recovered_swing(&clean);
        let warped_swing = recovered_swing(&warped);
        assert!(clean_swing > 1.0e-3, "clean swing {clean_swing:.3e}");
        assert!(
            warped_swing.abs() < 0.5 * clean_swing,
            "DVFS smears the recovered swing ({clean_swing:.3e} -> {warped_swing:.3e})"
        );
    }

    #[test]
    fn jitter_random_walk_degrades_alignment() {
        let mut acq = chain();
        acq.noise = NoiseModel::none();
        acq.scope = acq.scope.with_vertical_noise(1e-3);
        let power = square_wave(40_000);

        let clean = acq.acquire(&power, &mut StdRng::seed_from_u64(43));
        let attack = CaptureAttack {
            jitter_sigma_cycles: 0.05,
            dvfs_dwell_cycles: 1,
            dvfs_scale_span: 0.0,
            seed: 3,
        };
        let jittered = acq.acquire_attacked(&power, &attack, &mut StdRng::seed_from_u64(43));
        let clean_swing = recovered_swing(&clean);
        let jittered_swing = recovered_swing(&jittered);
        assert!(
            jittered_swing.abs() < 0.5 * clean_swing,
            "jitter walks off the timebase ({clean_swing:.3e} -> {jittered_swing:.3e})"
        );
    }
}
