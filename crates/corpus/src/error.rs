use std::error::Error;
use std::fmt;

/// Errors produced by the trace corpus.
#[derive(Debug)]
#[non_exhaustive]
pub enum CorpusError {
    /// An I/O operation failed.
    Io {
        /// What was being done (usually a path).
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A trace file (or checkpoint blob) violated the binary format.
    Format {
        /// What was wrong.
        message: String,
    },
    /// The CRC-32 footer did not match the stored payload.
    Corrupt {
        /// Checksum recorded in the footer.
        expected: u32,
        /// Checksum recomputed over the payload.
        actual: u32,
    },
    /// A sample was not a finite number (traces store physical watts).
    NonFinite {
        /// 0-based sample index.
        index: u64,
    },
    /// A streaming writer finished with a different cycle count than the
    /// header declared.
    CycleCountMismatch {
        /// Cycles the header declared.
        declared: u64,
        /// Cycles actually written.
        written: u64,
    },
    /// A manifest line was malformed.
    Manifest {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A trace name was not found in the corpus.
    UnknownTrace {
        /// The requested name.
        name: String,
    },
    /// A trace name is already present in the corpus.
    DuplicateTrace {
        /// The clashing name.
        name: String,
    },
    /// A trace name contains characters outside `[A-Za-z0-9._-]`.
    InvalidName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { context, source } => write!(f, "{context}: {source}"),
            CorpusError::Format { message } => write!(f, "trace format: {message}"),
            CorpusError::Corrupt { expected, actual } => write!(
                f,
                "integrity check failed: footer CRC32 {expected:#010x}, payload {actual:#010x}"
            ),
            CorpusError::NonFinite { index } => {
                write!(
                    f,
                    "sample {index} is not finite; traces store physical watts"
                )
            }
            CorpusError::CycleCountMismatch { declared, written } => write!(
                f,
                "header declared {declared} cycles but {written} were written"
            ),
            CorpusError::Manifest { line, message } => {
                write!(f, "manifest line {line}: {message}")
            }
            CorpusError::UnknownTrace { name } => write!(f, "no trace named `{name}` in corpus"),
            CorpusError::DuplicateTrace { name } => {
                write!(f, "trace `{name}` already exists in corpus")
            }
            CorpusError::InvalidName { name } => write!(
                f,
                "invalid trace name `{name}`; use only letters, digits, `.`, `_`, `-`"
            ),
        }
    }
}

impl Error for CorpusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CorpusError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl CorpusError {
    /// Wraps an I/O error with its context (usually the path involved).
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CorpusError::Io {
            context: context.into(),
            source,
        }
    }

    /// A format error from a message.
    pub fn format(message: impl Into<String>) -> Self {
        CorpusError::Format {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CorpusError>();
        let err = CorpusError::Corrupt {
            expected: 0xDEADBEEF,
            actual: 0x12345678,
        };
        assert!(err.to_string().contains("0xdeadbeef"), "{err}");
        assert!(CorpusError::NonFinite { index: 7 }
            .to_string()
            .contains('7'));
    }
}
