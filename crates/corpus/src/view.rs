//! Zero-copy trace readers over in-memory `.cmt` bytes.
//!
//! [`TraceBytes`] walks a borrowed byte slice with exactly the same
//! validation pipeline as the buffered [`TraceReader`](crate::TraceReader)
//! — header decode, per-sample finiteness checks, streaming CRC, footer
//! magic + CRC compare — but the sample bytes are decoded straight out of
//! the slice instead of being copied through an intermediate read buffer.
//! [`MappedTrace`] is the owning form over an [`Mmap`], which is what
//! campaign workers and the detection service hold while streaming.
//!
//! One deliberate strengthening over the buffered reader: because the
//! whole file length is known up front, a header whose declared payload
//! cannot fit in the bytes is refused at open (via the same
//! `check_declared_size` guard as [`decode_trace`](crate::decode_trace)),
//! instead of surfacing as a short-read I/O error mid-stream. On any
//! trace that actually validates, every sample, every error index, and
//! the final CRC verdict are identical to the buffered path — pinned by
//! the proptests below.

use crate::codec;
use crate::crc32::Crc32;
use crate::format::{self, TraceHeader, FOOTER_LEN, HEADER_LEN};
use crate::mmap::Mmap;
use crate::CorpusError;

/// The cursor state shared by [`TraceBytes`] and [`MappedTrace`]:
/// everything except the bytes themselves.
#[derive(Debug, Clone)]
struct Cursor {
    crc: Crc32,
    header: TraceHeader,
    consumed: u64,
}

impl Cursor {
    /// Decodes and validates the header, refusing payloads that cannot
    /// fit in `bytes`.
    fn new(bytes: &[u8]) -> Result<Self, CorpusError> {
        if bytes.len() < HEADER_LEN {
            return Err(CorpusError::format(format!(
                "trace is {} bytes, need at least {HEADER_LEN}",
                bytes.len()
            )));
        }
        let header = TraceHeader::decode(&bytes[..HEADER_LEN])?;
        format::check_declared_size(&header, bytes.len() as u64)?;
        let mut crc = Crc32::new();
        crc.update(&bytes[..HEADER_LEN]);
        Ok(Cursor {
            crc,
            header,
            consumed: 0,
        })
    }

    fn remaining(&self) -> u64 {
        self.header.cycles - self.consumed
    }

    /// The slice-walking twin of `TraceReader::read_chunk`: same clamp,
    /// same CRC accumulation, same finite check with the same absolute
    /// sample index — minus the copy into an intermediate byte buffer.
    fn read_chunk(&mut self, bytes: &[u8], buf: &mut [f64]) -> Result<usize, CorpusError> {
        let want = (buf.len() as u64).min(self.remaining()) as usize;
        if want == 0 {
            return Ok(0);
        }
        let start = HEADER_LEN + self.consumed as usize * 8;
        let chunk = &bytes[start..start + want * 8];
        self.crc.update(chunk);
        clockmark_obs::counter_add("corpus.bytes_read", chunk.len() as u64);
        for (i, slot) in buf[..want].iter_mut().enumerate() {
            let v = codec::get_f64(chunk, i * 8)?;
            if !v.is_finite() {
                return Err(CorpusError::NonFinite {
                    index: self.consumed + i as u64,
                });
            }
            *slot = v;
        }
        self.consumed += want as u64;
        Ok(want)
    }

    /// Skips `n` samples; like the buffered reader they still feed the
    /// CRC *and* the finiteness check, so skipping never weakens
    /// validation relative to reading.
    fn skip_samples(&mut self, bytes: &[u8], n: u64) -> Result<(), CorpusError> {
        if n > self.remaining() {
            return Err(CorpusError::format(format!(
                "cannot skip {n} samples; only {} remain",
                self.remaining()
            )));
        }
        let mut buf = [0.0f64; 1024];
        let mut left = n;
        while left > 0 {
            let take = (left as usize).min(buf.len());
            let got = self.read_chunk(bytes, &mut buf[..take])?;
            debug_assert_eq!(got, take);
            left -= got as u64;
        }
        Ok(())
    }

    /// Consumes the remaining samples and validates the footer; same
    /// error cases and ordering as `TraceReader::finish`.
    fn finish(mut self, bytes: &[u8]) -> Result<TraceHeader, CorpusError> {
        self.skip_samples(bytes, self.remaining())?;
        let at = HEADER_LEN + self.header.cycles as usize * 8;
        // `check_declared_size` at construction guarantees the footer is
        // in bounds.
        let footer = &bytes[at..at + FOOTER_LEN];
        let expected = codec::get_u32(footer, 0)?;
        if &footer[4..8] != format::END_MAGIC {
            return Err(CorpusError::format("bad end magic; truncated trace?"));
        }
        let actual = self.crc.finish();
        if expected != actual {
            return Err(CorpusError::Corrupt { expected, actual });
        }
        Ok(self.header)
    }
}

/// A streaming trace reader borrowing a `.cmt` byte slice — typically
/// the contents of an [`Mmap`], but any `&[u8]` works.
///
/// ```
/// # fn main() -> Result<(), clockmark_corpus::CorpusError> {
/// use clockmark_corpus::{encode_trace, TraceBytes, TraceHeader};
///
/// let bytes = encode_trace(TraceHeader::bare(0), &[1.0, 2.0, 3.0])?;
/// let mut view = TraceBytes::new(&bytes)?;
/// let mut buf = [0.0f64; 8];
/// assert_eq!(view.read_chunk(&mut buf)?, 3);
/// view.finish()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceBytes<'a> {
    bytes: &'a [u8],
    cursor: Cursor,
}

impl<'a> TraceBytes<'a> {
    /// Decodes and validates the header, returning the streaming view.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Format`] for a malformed header or one
    /// whose declared payload cannot fit in `bytes`.
    pub fn new(bytes: &'a [u8]) -> Result<Self, CorpusError> {
        Ok(TraceBytes {
            bytes,
            cursor: Cursor::new(bytes)?,
        })
    }

    /// The trace metadata.
    pub fn header(&self) -> &TraceHeader {
        &self.cursor.header
    }

    /// Samples not yet read.
    pub fn remaining(&self) -> u64 {
        self.cursor.remaining()
    }

    /// Samples already read.
    pub fn consumed(&self) -> u64 {
        self.cursor.consumed
    }

    /// Fills `buf` with up to `buf.len()` samples; returns how many were
    /// read (0 once the trace is exhausted).
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::NonFinite`] (with the absolute sample
    /// index) for corrupted bytes that decode to NaN or infinity.
    pub fn read_chunk(&mut self, buf: &mut [f64]) -> Result<usize, CorpusError> {
        self.cursor.read_chunk(self.bytes, buf)
    }

    /// Skips `n` samples (they still feed the CRC and finiteness check).
    ///
    /// # Errors
    ///
    /// Same conditions as [`read_chunk`](TraceBytes::read_chunk), plus a
    /// [`CorpusError::Format`] when `n` exceeds the remaining samples.
    pub fn skip_samples(&mut self, n: u64) -> Result<(), CorpusError> {
        self.cursor.skip_samples(self.bytes, n)
    }

    /// Consumes the remaining samples and validates the CRC footer.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Corrupt`] on a CRC mismatch and
    /// [`CorpusError::Format`] for a bad end magic.
    pub fn finish(self) -> Result<TraceHeader, CorpusError> {
        self.cursor.finish(self.bytes)
    }
}

/// Mapped `.cmt` bytes feed [`Detector::detect_trace`] exactly like the
/// buffered reader: chunks stream into the fold, and the CRC footer is
/// validated before any verdict is produced.
///
/// [`Detector::detect_trace`]: clockmark_cpa::Detector::detect_trace
impl clockmark_cpa::TraceInput for TraceBytes<'_> {
    type Error = CorpusError;

    fn next_chunk(&mut self, buf: &mut [f64]) -> Result<usize, CorpusError> {
        self.read_chunk(buf)
    }

    fn finish(self) -> Result<(), CorpusError> {
        TraceBytes::finish(self).map(|_| ())
    }
}

/// An owning [`TraceBytes`]: the mapping and the read cursor in one
/// value, so it can be returned from a corpus lookup and moved into a
/// detection worker.
#[derive(Debug)]
pub struct MappedTrace {
    map: Mmap,
    cursor: Cursor,
}

impl MappedTrace {
    /// Validates the header of the mapped file and returns the reader.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceBytes::new`].
    pub fn new(map: Mmap) -> Result<Self, CorpusError> {
        let cursor = Cursor::new(map.as_bytes())?;
        Ok(MappedTrace { map, cursor })
    }

    /// Maps (or, off-unix, buffers) `path` and validates its header.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mmap::open`] and [`TraceBytes::new`].
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, CorpusError> {
        Self::new(Mmap::open(path)?)
    }

    /// The trace metadata.
    pub fn header(&self) -> &TraceHeader {
        &self.cursor.header
    }

    /// Samples not yet read.
    pub fn remaining(&self) -> u64 {
        self.cursor.remaining()
    }

    /// Samples already read.
    pub fn consumed(&self) -> u64 {
        self.cursor.consumed
    }

    /// Whether the underlying bytes are a zero-copy page-cache mapping.
    pub fn is_zero_copy(&self) -> bool {
        self.map.is_zero_copy()
    }

    /// Fills `buf` with up to `buf.len()` samples; returns how many were
    /// read (0 once the trace is exhausted).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceBytes::read_chunk`].
    pub fn read_chunk(&mut self, buf: &mut [f64]) -> Result<usize, CorpusError> {
        self.cursor.read_chunk(self.map.as_bytes(), buf)
    }

    /// Skips `n` samples (they still feed the CRC and finiteness check).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceBytes::skip_samples`].
    pub fn skip_samples(&mut self, n: u64) -> Result<(), CorpusError> {
        self.cursor.skip_samples(self.map.as_bytes(), n)
    }

    /// Consumes the remaining samples and validates the CRC footer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceBytes::finish`].
    pub fn finish(self) -> Result<TraceHeader, CorpusError> {
        self.cursor.finish(self.map.as_bytes())
    }
}

/// See the [`TraceBytes`] impl — identical semantics, owning form.
impl clockmark_cpa::TraceInput for MappedTrace {
    type Error = CorpusError;

    fn next_chunk(&mut self, buf: &mut [f64]) -> Result<usize, CorpusError> {
        self.read_chunk(buf)
    }

    fn finish(self) -> Result<(), CorpusError> {
        MappedTrace::finish(self).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_trace, TraceReader};
    use proptest::prelude::*;

    fn watts(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 1000) as f64 * 1e-6)
            .collect()
    }

    /// Drains a reader through `read_chunk` with the given split sizes
    /// (cycling), returning the samples and the finish outcome.
    fn drain_view(bytes: &[u8], splits: &[usize]) -> (Vec<f64>, Result<(), String>) {
        let mut view = match TraceBytes::new(bytes) {
            Ok(view) => view,
            Err(e) => return (Vec::new(), Err(e.to_string())),
        };
        let mut got = Vec::new();
        let mut i = 0usize;
        loop {
            let size = splits[i % splits.len()].max(1);
            i += 1;
            let mut buf = vec![0.0f64; size];
            match view.read_chunk(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) => return (got, Err(e.to_string())),
            }
        }
        (got, view.finish().map(|_| ()).map_err(|e| e.to_string()))
    }

    fn drain_buffered(bytes: &[u8], splits: &[usize]) -> (Vec<f64>, Result<(), String>) {
        let mut reader = match TraceReader::new(bytes) {
            Ok(reader) => reader,
            Err(e) => return (Vec::new(), Err(e.to_string())),
        };
        let mut got = Vec::new();
        let mut i = 0usize;
        loop {
            let size = splits[i % splits.len()].max(1);
            i += 1;
            let mut buf = vec![0.0f64; size];
            match reader.read_chunk(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) => return (got, Err(e.to_string())),
            }
        }
        (got, reader.finish().map(|_| ()).map_err(|e| e.to_string()))
    }

    #[test]
    fn view_round_trips_bit_exactly() {
        let w = watts(700, 3);
        let bytes = encode_trace(TraceHeader::bare(0), &w).expect("encodes");
        let mut view = TraceBytes::new(&bytes).expect("opens");
        assert_eq!(view.header().cycles, 700);
        let mut got = vec![0.0f64; 700];
        let mut filled = 0;
        while filled < got.len() {
            filled += view.read_chunk(&mut got[filled..]).expect("reads");
        }
        view.finish().expect("valid crc");
        for (a, b) in got.iter().zip(&w) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunk_clamped_at_the_crc_footer_boundary() {
        // A read buffer larger than the remaining samples must clamp at
        // the last sample and leave the footer for finish() — the chunk
        // boundary crossing the CRC footer is the classic off-by-one.
        let w = watts(10, 5);
        let bytes = encode_trace(TraceHeader::bare(0), &w).expect("encodes");
        let mut view = TraceBytes::new(&bytes).expect("opens");
        let mut buf = [0.0f64; 7];
        assert_eq!(view.read_chunk(&mut buf).expect("reads"), 7);
        // 3 samples remain; the 7-slot buffer crosses into the footer.
        assert_eq!(view.read_chunk(&mut buf).expect("reads"), 3);
        assert_eq!(view.read_chunk(&mut buf).expect("reads"), 0);
        view.finish().expect("footer intact and crc valid");
    }

    #[test]
    fn skip_preserves_crc_and_finite_semantics() {
        let w = watts(500, 9);
        let bytes = encode_trace(TraceHeader::bare(0), &w).expect("encodes");
        let mut view = TraceBytes::new(&bytes).expect("opens");
        view.skip_samples(123).expect("skips");
        assert_eq!(view.consumed(), 123);
        let mut buf = [0.0f64; 8];
        view.read_chunk(&mut buf).expect("reads");
        assert_eq!(buf[0].to_bits(), w[123].to_bits());
        view.finish().expect("crc still validates");

        // Skipping over a non-finite sample fails with its index, same
        // as reading it would.
        let mut bad = encode_trace(TraceHeader::bare(0), &w).expect("encodes");
        let at = HEADER_LEN + 200 * 8;
        bad[at..at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        let mut view = TraceBytes::new(&bad).expect("opens");
        let err = view.skip_samples(300).expect_err("NaN under a skip");
        assert!(
            matches!(err, CorpusError::NonFinite { index: 200 }),
            "{err}"
        );
    }

    #[test]
    fn forged_headers_are_refused_at_open() {
        let mut forged = TraceHeader::bare(u64::MAX / 16).encode();
        forged.extend_from_slice(&[0u8; 64]);
        let err = TraceBytes::new(&forged).expect_err("forged header");
        assert!(err.to_string().contains("cycles"), "{err}");
    }

    #[test]
    fn mapped_trace_detects_like_the_buffered_reader() {
        use clockmark_cpa::Detector;

        let dir = std::env::temp_dir().join(format!(
            "cm_view_detect_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pattern = [true, false, true, true, false, false, true];
        let w: Vec<f64> = (0..2100)
            .map(|i| {
                let wm = if pattern[(i + 3) % 7] { 1.0 } else { 0.0 };
                wm + ((i * 37 % 100) as f64) * 0.01
            })
            .collect();
        let bytes = encode_trace(TraceHeader::bare(0), &w).expect("encodes");
        let path = dir.join("t.cmt");
        std::fs::write(&path, &bytes).expect("writes");

        let detector = Detector::new(&pattern).expect("valid pattern");
        let mapped = MappedTrace::open(&path).expect("maps");
        let via_map = detector.detect_trace(mapped).expect("detects");
        let via_buf = detector
            .detect_trace(TraceReader::new(bytes.as_slice()).expect("opens"))
            .expect("detects");
        assert_eq!(via_map.cycles, via_buf.cycles);
        assert_eq!(
            via_map.result.peak_rho.to_bits(),
            via_buf.result.peak_rho.to_bits()
        );
        assert_eq!(
            via_map.result.zscore.to_bits(),
            via_buf.result.zscore.to_bits()
        );
        assert_eq!(via_map.result.detected, via_buf.result.detected);
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        /// The zero-copy view and the buffered reader agree bit-for-bit
        /// on every sample and on the final verdict, whatever the chunk
        /// sizes — including chunks that straddle the CRC footer — on
        /// clean traces and on traces with one corrupted byte.
        #[test]
        fn view_is_bit_identical_to_the_buffered_reader(
            n in 0usize..300,
            salt in 0u64..1000,
            splits in proptest::collection::vec(1usize..40, 1..5),
            corrupt_at in proptest::option::of(0usize..2000),
        ) {
            let w = watts(n, salt);
            let mut bytes = encode_trace(TraceHeader::bare(0), &w).expect("encodes");
            if let Some(at) = corrupt_at {
                prop_assume!(at < bytes.len());
                bytes[at] ^= 0x01;
            }
            if TraceBytes::new(&bytes).is_err() {
                // The view refuses corrupted/forged headers at open (its
                // declared-size check has the file length up front). The
                // buffered reader must also fail — possibly later, after
                // yielding samples — so only the verdict is comparable.
                let (_, fin_b) = drain_buffered(&bytes, &splits);
                prop_assert!(fin_b.is_err(), "view refused but buffered passed");
                return Ok(());
            }
            let (got_v, fin_v) = drain_view(&bytes, &splits);
            let (got_b, fin_b) = drain_buffered(&bytes, &splits);
            prop_assert_eq!(got_v.len(), got_b.len());
            for (a, b) in got_v.iter().zip(&got_b) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(fin_v.is_ok(), fin_b.is_ok(), "{:?} vs {:?}", fin_v, fin_b);
        }
    }
}
