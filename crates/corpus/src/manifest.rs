//! The `manifest.jsonl` index at the root of a corpus directory.
//!
//! One JSON object per line, one line per stored trace. The manifest is
//! always rewritten whole through a temp-file + `rename` so readers never
//! observe a half-written index, and a crash mid-update leaves the old
//! manifest intact.
//!
//! `seed` is serialised as a decimal *string* because JSON numbers travel
//! as `f64` and a 64-bit seed must survive bit-exactly.

use crate::{CorpusError, TraceHeader};
use clockmark_obs::json::{self, Json};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One manifest line: everything needed to locate and verify a trace
/// without opening it.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Corpus-unique trace name.
    pub name: String,
    /// File name relative to the corpus `traces/` directory.
    pub file: String,
    /// Sample count.
    pub cycles: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// CRC-32 recorded in the trace footer.
    pub crc32: u32,
    /// Format version of the stored file.
    pub version: u16,
    /// Device clock in hertz (0.0 when unknown).
    pub f_clk_hz: f64,
    /// Capture seed.
    pub seed: u64,
    /// Chip tag (see [`crate::format::source`]).
    pub source: u32,
}

impl ManifestEntry {
    /// Builds an entry from a trace header plus its stored identity.
    pub fn from_header(name: &str, file: &str, header: &TraceHeader, crc32: u32) -> Self {
        ManifestEntry {
            name: name.to_owned(),
            file: file.to_owned(),
            cycles: header.cycles,
            bytes: header.file_size(),
            crc32,
            version: crate::format::VERSION,
            f_clk_hz: header.f_clk_hz,
            seed: header.seed,
            source: header.source,
        }
    }

    /// The trace header this entry describes.
    pub fn header(&self) -> TraceHeader {
        TraceHeader {
            cycles: self.cycles,
            f_clk_hz: self.f_clk_hz,
            seed: self.seed,
            source: self.source,
        }
    }

    /// Serialises the entry as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"name\":");
        json::write_str(&mut out, &self.name);
        out.push_str(",\"file\":");
        json::write_str(&mut out, &self.file);
        let _ = write!(
            out,
            ",\"cycles\":{},\"bytes\":{},\"crc32\":{},\"version\":{},\"f_clk_hz\":",
            self.cycles, self.bytes, self.crc32, self.version
        );
        json::write_f64(&mut out, self.f_clk_hz);
        let _ = write!(
            out,
            ",\"seed\":\"{}\",\"source\":{}}}",
            self.seed, self.source
        );
        out
    }

    /// Parses one manifest line.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Manifest`] naming the 1-based `line` for
    /// malformed JSON or missing/ill-typed fields.
    pub fn decode(text: &str, line: usize) -> Result<Self, CorpusError> {
        let bad = |message: String| CorpusError::Manifest { line, message };
        let value = json::parse(text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        let str_field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad(format!("missing string field `{key}`")))
        };
        let num_field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(format!("missing numeric field `{key}`")))
        };
        // JSON numbers travel as f64, so every integer field must be
        // checked for integrality and range instead of being narrowed
        // with `as`, which silently saturates: a tampered manifest would
        // otherwise round-trip to a *different* value and mis-verify.
        let int_field = |key: &str, max: u64| -> Result<u64, CorpusError> {
            let raw = num_field(key)?;
            if raw.fract() != 0.0 || !raw.is_finite() {
                return Err(bad(format!("field `{key}` is not an integer: {raw}")));
            }
            if raw < 0.0 || raw > max as f64 {
                return Err(bad(format!("field `{key}` is out of range: {raw}")));
            }
            // Past 2^53 an f64 cannot represent every integer, so a
            // value that survived the range check could still be an
            // approximation of what was written. Such sizes are far
            // beyond any real trace; refuse rather than guess.
            const EXACT_MAX: f64 = 9_007_199_254_740_992.0; // 2^53
            if raw > EXACT_MAX {
                return Err(bad(format!(
                    "field `{key}` exceeds the exact-integer range of JSON: {raw}"
                )));
            }
            Ok(raw as u64)
        };
        let seed: u64 = str_field("seed")?
            .parse()
            .map_err(|_| bad("`seed` is not a u64 string".to_owned()))?;
        Ok(ManifestEntry {
            name: str_field("name")?,
            file: str_field("file")?,
            cycles: int_field("cycles", u64::MAX)?,
            bytes: int_field("bytes", u64::MAX)?,
            crc32: int_field("crc32", u32::MAX as u64)? as u32,
            version: int_field("version", u16::MAX as u64)? as u16,
            f_clk_hz: num_field("f_clk_hz")?,
            seed,
            source: int_field("source", u32::MAX as u64)? as u32,
        })
    }
}

/// Reads a manifest file into entries.
///
/// # Errors
///
/// Returns [`CorpusError::Io`] when the file cannot be read and
/// [`CorpusError::Manifest`] for a malformed line.
pub fn read_manifest(path: &Path) -> Result<Vec<ManifestEntry>, CorpusError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CorpusError::io(format!("reading {}", path.display()), e))?;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        entries.push(ManifestEntry::decode(line, i + 1)?);
    }
    Ok(entries)
}

/// Atomically replaces the manifest: writes `<path>.tmp`, flushes, then
/// renames over `path`.
///
/// # Errors
///
/// Returns [`CorpusError::Io`] on any filesystem failure.
pub fn write_manifest(path: &Path, entries: &[ManifestEntry]) -> Result<(), CorpusError> {
    let mut text = String::with_capacity(entries.len() * 160);
    for entry in entries {
        text.push_str(&entry.encode());
        text.push('\n');
    }
    let tmp = path.with_extension("jsonl.tmp");
    fs::write(&tmp, &text).map_err(|e| CorpusError::io(format!("writing {}", tmp.display()), e))?;
    fs::rename(&tmp, path).map_err(|e| {
        CorpusError::io(
            format!("renaming {} over {}", tmp.display(), path.display()),
            e,
        )
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> ManifestEntry {
        ManifestEntry {
            name: "chip_i_s7".to_owned(),
            file: "chip_i_s7.cmt".to_owned(),
            cycles: 30_000,
            bytes: 240_072,
            crc32: 0xDEAD_BEEF,
            version: 1,
            f_clk_hz: 1.0e7,
            seed: u64::MAX - 3,
            source: 2,
        }
    }

    #[test]
    fn encode_decode_round_trips_including_u64_seed() {
        let original = entry();
        let line = original.encode();
        let back = ManifestEntry::decode(&line, 1).expect("valid line");
        assert_eq!(back, original, "line was: {line}");
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err = ManifestEntry::decode("not json", 7).unwrap_err();
        assert!(err.to_string().contains("line 7"), "{err}");
        let err = ManifestEntry::decode("{\"name\":\"x\"}", 3).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn tampered_numeric_fields_are_refused_not_saturated() {
        let line = entry().encode();
        // Each tampered value used to round-trip through `as u32`/`as
        // u16` into a *different* entry; all must now be refused.
        for (field, bad_value) in [
            ("crc32", "-1"),
            ("crc32", "4294967296"),   // u32::MAX + 1
            ("crc32", "3735928559.5"), // fractional
            ("source", "-7"),
            ("source", "1e300"),
            ("version", "65536"), // u16::MAX + 1
            ("cycles", "30000.25"),
            ("bytes", "-240072"),
            ("bytes", "1e17"), // integral but beyond 2^53
        ] {
            let needle = match field {
                "crc32" => format!("\"crc32\":{}", 0xDEAD_BEEFu32),
                "source" => "\"source\":2".to_owned(),
                "version" => "\"version\":1".to_owned(),
                "cycles" => "\"cycles\":30000".to_owned(),
                "bytes" => "\"bytes\":240072".to_owned(),
                _ => unreachable!(),
            };
            let tampered = line.replace(&needle, &format!("\"{field}\":{bad_value}"));
            assert_ne!(tampered, line, "tamper target `{needle}` not found");
            let err = ManifestEntry::decode(&tampered, 1)
                .expect_err(&format!("{field}={bad_value} must be refused"));
            assert!(err.to_string().contains(field), "{err}");
        }
    }

    #[test]
    fn manifest_file_round_trips_atomically() {
        let dir = std::env::temp_dir().join(format!("cm_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("manifest.jsonl");
        let entries = vec![entry(), {
            let mut e = entry();
            e.name = "chip_ii_s1".to_owned();
            e
        }];
        write_manifest(&path, &entries).expect("writes");
        assert_eq!(read_manifest(&path).expect("reads"), entries);
        // No temp residue after the rename.
        assert!(!dir.join("manifest.jsonl.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
