//! The on-disk corpus: a directory of `.cmt` traces indexed by
//! `manifest.jsonl`.
//!
//! ```text
//! corpus/
//!   manifest.jsonl      # one line per trace (atomic tmp+rename updates)
//!   traces/
//!     <name>.cmt        # binary traces (written via tmp+rename)
//! ```
//!
//! Trace files are written first (through a temp name), the manifest is
//! updated last — so a crash at any point leaves either the old corpus or
//! the new one, never a manifest entry pointing at a half-written file.

use crate::format::{self, TraceHeader, TraceReader, TraceWriter};
use crate::manifest::{read_manifest, write_manifest, ManifestEntry};
use crate::mmap::Mmap;
use crate::view::MappedTrace;
use crate::CorpusError;
use clockmark_power::PowerTrace;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// How one trace fared under [`Corpus::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// The trace name.
    pub name: String,
    /// Whether the stored file matched its manifest entry and CRC.
    pub ok: bool,
    /// Human-readable detail (the failure reason, or `"ok"`).
    pub detail: String,
}

/// Environment variable that forces [`Corpus::source`] onto the
/// buffered reader path (any value other than `0` or empty).
pub const NO_MMAP_ENV: &str = "CLOCKMARK_NO_MMAP";

/// A streaming reader over one stored trace: memory-mapped when the
/// platform allows it, buffered otherwise.
///
/// Returned by [`Corpus::source`]. Both variants run the identical
/// validation pipeline (header decode, per-sample finiteness, streaming
/// CRC, footer check) and produce bit-identical samples; the only
/// difference is whether the sample bytes are copied through a read
/// buffer on the way in.
#[derive(Debug)]
pub enum TraceSource {
    /// Zero-copy page-cache mapping (see [`MappedTrace`]).
    Mapped(Box<MappedTrace>),
    /// Buffered chunked reads (see [`TraceReader`]).
    Buffered(TraceReader<BufReader<File>>),
}

impl TraceSource {
    /// The trace metadata.
    pub fn header(&self) -> &TraceHeader {
        match self {
            TraceSource::Mapped(t) => t.header(),
            TraceSource::Buffered(r) => r.header(),
        }
    }

    /// Samples not yet read.
    pub fn remaining(&self) -> u64 {
        match self {
            TraceSource::Mapped(t) => t.remaining(),
            TraceSource::Buffered(r) => r.remaining(),
        }
    }

    /// Samples already read.
    pub fn consumed(&self) -> u64 {
        match self {
            TraceSource::Mapped(t) => t.consumed(),
            TraceSource::Buffered(r) => r.consumed(),
        }
    }

    /// Whether the samples stream straight out of the page cache.
    pub fn is_zero_copy(&self) -> bool {
        matches!(self, TraceSource::Mapped(t) if t.is_zero_copy())
    }

    /// Fills `buf` with up to `buf.len()` samples; returns how many were
    /// read (0 once the trace is exhausted).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceReader::read_chunk`].
    pub fn read_chunk(&mut self, buf: &mut [f64]) -> Result<usize, CorpusError> {
        match self {
            TraceSource::Mapped(t) => t.read_chunk(buf),
            TraceSource::Buffered(r) => r.read_chunk(buf),
        }
    }

    /// Skips `n` samples (they still feed the CRC and finite checks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceReader::skip_samples`].
    pub fn skip_samples(&mut self, n: u64) -> Result<(), CorpusError> {
        match self {
            TraceSource::Mapped(t) => t.skip_samples(n),
            TraceSource::Buffered(r) => r.skip_samples(n),
        }
    }

    /// Consumes the remaining samples and validates the CRC footer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceReader::finish`].
    pub fn finish(self) -> Result<TraceHeader, CorpusError> {
        match self {
            TraceSource::Mapped(t) => t.finish(),
            TraceSource::Buffered(r) => r.finish(),
        }
    }
}

/// Either variant plugs into
/// [`Detector::detect_trace`](clockmark_cpa::Detector::detect_trace)
/// with the CRC footer validated before any verdict.
impl clockmark_cpa::TraceInput for TraceSource {
    type Error = CorpusError;

    fn next_chunk(&mut self, buf: &mut [f64]) -> Result<usize, CorpusError> {
        self.read_chunk(buf)
    }

    fn finish(self) -> Result<(), CorpusError> {
        TraceSource::finish(self).map(|_| ())
    }
}

/// A durable trace corpus rooted at a directory.
///
/// ```no_run
/// # fn main() -> Result<(), clockmark_corpus::CorpusError> {
/// use clockmark_corpus::{Corpus, TraceHeader};
///
/// let mut corpus = Corpus::create("fleet_corpus")?;
/// corpus.add("chip_i_s1", TraceHeader::bare(0), &[1.0e-3, 2.0e-3])?;
/// for entry in corpus.entries() {
///     println!("{}: {} cycles", entry.name, entry.cycles);
/// }
/// for outcome in corpus.verify()? {
///     assert!(outcome.ok, "{}: {}", outcome.name, outcome.detail);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Corpus {
    root: PathBuf,
    entries: Vec<ManifestEntry>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && !name.starts_with('.')
}

impl Corpus {
    /// Creates a new corpus directory (with an empty manifest). Fails if
    /// a manifest already exists there.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] on filesystem failure or when the
    /// directory already holds a corpus.
    pub fn create(root: impl Into<PathBuf>) -> Result<Self, CorpusError> {
        let root = root.into();
        let manifest = root.join("manifest.jsonl");
        if manifest.exists() {
            return Err(CorpusError::io(
                format!("creating corpus at {}", root.display()),
                std::io::Error::new(std::io::ErrorKind::AlreadyExists, "manifest already exists"),
            ));
        }
        fs::create_dir_all(root.join("traces"))
            .map_err(|e| CorpusError::io(format!("creating {}", root.display()), e))?;
        write_manifest(&manifest, &[])?;
        Ok(Corpus {
            root,
            entries: Vec::new(),
        })
    }

    /// Opens an existing corpus by reading its manifest.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] when the manifest cannot be read and
    /// [`CorpusError::Manifest`] when it is malformed.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CorpusError> {
        let root = root.into();
        let entries = read_manifest(&root.join("manifest.jsonl"))?;
        Ok(Corpus { root, entries })
    }

    /// Opens the corpus at `root`, creating it when absent.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Corpus::open`] / [`Corpus::create`].
    pub fn open_or_create(root: impl Into<PathBuf>) -> Result<Self, CorpusError> {
        let root = root.into();
        if root.join("manifest.jsonl").exists() {
            Self::open(root)
        } else {
            Self::create(root)
        }
    }

    /// The corpus root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All manifest entries, in insertion order.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus holds no traces.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up one entry by name.
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    fn trace_path(&self, file: &str) -> PathBuf {
        self.root.join("traces").join(file)
    }

    /// Stores a trace under `name` and indexes it in the manifest.
    ///
    /// `header.cycles` is overwritten with `watts.len()`; the other
    /// header fields carry the capture metadata. The file lands through a
    /// temp name + rename, then the manifest is atomically rewritten.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::InvalidName`] / [`CorpusError::DuplicateTrace`]
    /// for bad names, [`CorpusError::NonFinite`] for non-finite samples,
    /// and [`CorpusError::Io`] on filesystem failure.
    pub fn add(
        &mut self,
        name: &str,
        mut header: TraceHeader,
        watts: &[f64],
    ) -> Result<&ManifestEntry, CorpusError> {
        let _span = clockmark_obs::span("corpus.add")
            .field("name", name.to_owned())
            .field("cycles", watts.len());
        if !valid_name(name) {
            return Err(CorpusError::InvalidName {
                name: name.to_owned(),
            });
        }
        if self.entry(name).is_some() {
            return Err(CorpusError::DuplicateTrace {
                name: name.to_owned(),
            });
        }
        header.cycles = watts.len() as u64;

        let file = format!("{name}.cmt");
        let final_path = self.trace_path(&file);
        let tmp_path = self.trace_path(&format!(".{name}.cmt.tmp"));
        let out = File::create(&tmp_path)
            .map_err(|e| CorpusError::io(format!("creating {}", tmp_path.display()), e))?;
        let mut writer = TraceWriter::new(BufWriter::new(out), header)?;
        writer.write_samples(watts)?;
        writer.finish()?;
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| CorpusError::io(format!("renaming {}", tmp_path.display()), e))?;

        // Recover the footer CRC for the manifest without re-reading the
        // samples: it sits in the last 8 bytes.
        let crc32 = read_footer_crc(&final_path)?;
        self.entries
            .push(ManifestEntry::from_header(name, &file, &header, crc32));
        write_manifest(&self.root.join("manifest.jsonl"), &self.entries)?;
        clockmark_obs::counter_add("corpus.traces_added", 1);
        Ok(self.entries.last().expect("just pushed"))
    }

    /// Stores a [`PowerTrace`] (convenience over [`Corpus::add`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Corpus::add`].
    pub fn add_power_trace(
        &mut self,
        name: &str,
        header: TraceHeader,
        trace: &PowerTrace,
    ) -> Result<&ManifestEntry, CorpusError> {
        self.add(name, header, trace.as_watts())
    }

    /// Opens a chunked reader over one stored trace.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::UnknownTrace`] for an unindexed name and
    /// [`CorpusError::Io`] / [`CorpusError::Format`] for open failures.
    pub fn reader(&self, name: &str) -> Result<TraceReader<BufReader<File>>, CorpusError> {
        let entry = self.entry(name).ok_or_else(|| CorpusError::UnknownTrace {
            name: name.to_owned(),
        })?;
        let path = self.trace_path(&entry.file);
        let file = File::open(&path)
            .map_err(|e| CorpusError::io(format!("opening {}", path.display()), e))?;
        TraceReader::new(BufReader::new(file))
    }

    /// Opens the fastest available streaming reader over one stored
    /// trace: a zero-copy memory mapping where the platform provides one
    /// (unix), the buffered [`Corpus::reader`] otherwise.
    ///
    /// Setting the [`NO_MMAP_ENV`] environment variable (to anything but
    /// `0` or the empty string) forces the buffered path — an escape
    /// hatch for filesystems where mapping misbehaves. Both paths
    /// produce bit-identical samples and verdicts.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::UnknownTrace`] for an unindexed name,
    /// [`CorpusError::Io`] on open failure, and [`CorpusError::Format`]
    /// for a malformed header or one declaring more samples than the
    /// file holds.
    pub fn source(&self, name: &str) -> Result<TraceSource, CorpusError> {
        let entry = self.entry(name).ok_or_else(|| CorpusError::UnknownTrace {
            name: name.to_owned(),
        })?;
        if std::env::var(NO_MMAP_ENV).is_ok_and(|v| !v.is_empty() && v != "0") {
            return Ok(TraceSource::Buffered(self.reader(name)?));
        }
        let path = self.trace_path(&entry.file);
        match Mmap::open(&path) {
            Ok(map) => Ok(TraceSource::Mapped(Box::new(MappedTrace::new(map)?))),
            // Mapping (or the fallback whole-file read) failed — the
            // chunked buffered reader may still manage.
            Err(_) => Ok(TraceSource::Buffered(self.reader(name)?)),
        }
    }

    /// Reads a stored trace fully into memory, validating its CRC.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Corpus::reader`], plus
    /// [`CorpusError::Corrupt`] on a CRC mismatch and
    /// [`CorpusError::Format`] when the on-disk header declares more
    /// samples than the file actually holds (a corrupt or forged header
    /// must not drive the allocation).
    pub fn read_all(&self, name: &str) -> Result<(TraceHeader, Vec<f64>), CorpusError> {
        let entry = self.entry(name).ok_or_else(|| CorpusError::UnknownTrace {
            name: name.to_owned(),
        })?;
        let path = self.trace_path(&entry.file);
        let actual_len = fs::metadata(&path)
            .map_err(|e| CorpusError::io(format!("stat {}", path.display()), e))?
            .len();
        let mut reader = self.reader(name)?;
        crate::format::check_declared_size(reader.header(), actual_len)?;
        let mut watts = vec![0.0f64; reader.header().cycles as usize];
        let mut filled = 0;
        while filled < watts.len() {
            filled += reader.read_chunk(&mut watts[filled..])?;
        }
        let header = reader.finish()?;
        Ok((header, watts))
    }

    /// Verifies every stored trace against the manifest: file size,
    /// header metadata, and a full streaming CRC check. Never stops at
    /// the first failure — fleet verification wants the complete picture.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] only for failures reading the corpus
    /// *directory* itself; per-trace failures land in the outcomes.
    pub fn verify(&self) -> Result<Vec<VerifyOutcome>, CorpusError> {
        let _span = clockmark_obs::span("corpus.verify").field("traces", self.entries.len());
        let mut outcomes = Vec::with_capacity(self.entries.len());
        for entry in &self.entries {
            let detail = self.verify_entry(entry);
            clockmark_obs::counter_add("corpus.traces_verified", 1);
            outcomes.push(VerifyOutcome {
                name: entry.name.clone(),
                ok: detail.is_none(),
                detail: detail.unwrap_or_else(|| "ok".to_owned()),
            });
        }
        Ok(outcomes)
    }

    /// Writes a shard-scoped manifest: the entries for exactly the
    /// named traces (in the order given), atomically written to `path`
    /// in the standard `manifest.jsonl` format.
    ///
    /// A fleet coordinator drops one of these into each shard directory
    /// so the shard records which slice of the corpus it owns — the
    /// file is greppable with the same tooling as a full manifest and
    /// doubles as an audit trail for reassigned shards. The trace files
    /// themselves are *not* copied; shard workers read them from the
    /// shared corpus.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::UnknownTrace`] if any name is unindexed
    /// (nothing is written in that case) and [`CorpusError::Io`] for
    /// write failures.
    pub fn subset_manifest<S: AsRef<str>>(
        &self,
        names: &[S],
        path: impl AsRef<Path>,
    ) -> Result<Vec<ManifestEntry>, CorpusError> {
        let subset: Vec<ManifestEntry> = names
            .iter()
            .map(|name| {
                self.entry(name.as_ref())
                    .cloned()
                    .ok_or_else(|| CorpusError::UnknownTrace {
                        name: name.as_ref().to_owned(),
                    })
            })
            .collect::<Result<_, _>>()?;
        write_manifest(path.as_ref(), &subset)?;
        Ok(subset)
    }

    /// `None` when the entry checks out; otherwise the failure reason.
    fn verify_entry(&self, entry: &ManifestEntry) -> Option<String> {
        let path = self.trace_path(&entry.file);
        let meta = match fs::metadata(&path) {
            Ok(meta) => meta,
            Err(e) => return Some(format!("missing file: {e}")),
        };
        if meta.len() != entry.bytes {
            return Some(format!(
                "size mismatch: manifest says {} bytes, file is {}",
                entry.bytes,
                meta.len()
            ));
        }
        let file = match File::open(&path) {
            Ok(file) => file,
            Err(e) => return Some(format!("cannot open: {e}")),
        };
        let reader = match TraceReader::new(BufReader::new(file)) {
            Ok(reader) => reader,
            Err(e) => return Some(format!("bad header: {e}")),
        };
        let stored = *reader.header();
        let expected = entry.header();
        if stored != expected {
            return Some(format!(
                "header mismatch: stored {stored:?}, manifest {expected:?}"
            ));
        }
        match reader.finish() {
            Ok(_) => None,
            Err(e) => Some(e.to_string()),
        }
    }

    /// Rebuilds a manifest by scanning `traces/*.cmt`, validating each
    /// file as it goes. Recovers a corpus whose manifest was lost — and
    /// is also how foreign `.cmt` files dropped into the directory get
    /// adopted.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] on directory-read failure and the
    /// first per-file validation error (a scan of a corrupted directory
    /// should fail loudly, not index garbage).
    pub fn scan(root: impl Into<PathBuf>) -> Result<Self, CorpusError> {
        let root = root.into();
        let _span = clockmark_obs::span("corpus.scan");
        let traces_dir = root.join("traces");
        let mut entries = Vec::new();
        let dir = fs::read_dir(&traces_dir)
            .map_err(|e| CorpusError::io(format!("scanning {}", traces_dir.display()), e))?;
        let mut paths: Vec<PathBuf> = dir
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "cmt"))
            .collect();
        paths.sort();
        for path in paths {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| CorpusError::format(format!("unreadable name: {}", path.display())))?
                .to_owned();
            let file = File::open(&path)
                .map_err(|e| CorpusError::io(format!("opening {}", path.display()), e))?;
            let reader = TraceReader::new(BufReader::new(file))?;
            let header = *reader.header();
            reader.finish()?; // full CRC validation
            let crc32 = read_footer_crc(&path)?;
            entries.push(ManifestEntry::from_header(
                &name,
                &format!("{name}.cmt"),
                &header,
                crc32,
            ));
        }
        write_manifest(&root.join("manifest.jsonl"), &entries)?;
        Ok(Corpus { root, entries })
    }
}

/// Reads the CRC32 out of a finished trace file's footer.
fn read_footer_crc(path: &Path) -> Result<u32, CorpusError> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file =
        File::open(path).map_err(|e| CorpusError::io(format!("opening {}", path.display()), e))?;
    file.seek(SeekFrom::End(-(format::FOOTER_LEN as i64)))
        .map_err(|e| CorpusError::io(format!("seeking {}", path.display()), e))?;
    let mut footer = [0u8; format::FOOTER_LEN];
    file.read_exact(&mut footer)
        .map_err(|e| CorpusError::io(format!("reading footer of {}", path.display()), e))?;
    crate::codec::get_u32(&footer, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "cm_corpus_{tag}_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            fs::remove_dir_all(&path).ok();
            TempDir(path)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    fn watts(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 1000) as f64 * 1e-6)
            .collect()
    }

    #[test]
    fn add_list_read_round_trip() {
        let dir = TempDir::new("roundtrip");
        let mut corpus = Corpus::create(&dir.0).expect("creates");
        let header = TraceHeader {
            cycles: 0,
            f_clk_hz: 1.0e7,
            seed: 42,
            source: format::source::CHIP_I,
        };
        let w = watts(5000, 1);
        corpus.add("chip_i_s42", header, &w).expect("adds");
        corpus
            .add("chip_i_s43", header, &watts(5000, 2))
            .expect("adds");
        assert_eq!(corpus.len(), 2);

        // Re-open from disk and read back bit-exactly.
        let reopened = Corpus::open(&dir.0).expect("opens");
        assert_eq!(reopened.len(), 2);
        let entry = reopened.entry("chip_i_s42").expect("indexed");
        assert_eq!(entry.cycles, 5000);
        assert_eq!(entry.seed, 42);
        let (back_header, back) = reopened.read_all("chip_i_s42").expect("reads");
        assert_eq!(back_header.seed, 42);
        for (a, b) in back.iter().zip(&w) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn verify_detects_a_single_flipped_byte() {
        let dir = TempDir::new("verify");
        let mut corpus = Corpus::create(&dir.0).expect("creates");
        corpus
            .add("victim", TraceHeader::bare(0), &watts(2000, 3))
            .expect("adds");
        assert!(corpus.verify().expect("verifies").iter().all(|o| o.ok));

        // Flip one byte in the middle of the sample payload.
        let path = dir.0.join("traces/victim.cmt");
        let mut bytes = fs::read(&path).expect("reads");
        let at = format::HEADER_LEN + 999;
        bytes[at] ^= 0x01;
        fs::write(&path, &bytes).expect("writes");

        let outcomes = corpus.verify().expect("verifies");
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].ok, "flipped byte must fail verification");
        assert!(
            outcomes[0].detail.contains("integrity")
                || outcomes[0].detail.contains("finite")
                || outcomes[0].detail.contains("CRC32"),
            "unexpected detail: {}",
            outcomes[0].detail
        );
    }

    #[test]
    fn read_all_refuses_a_forged_on_disk_cycle_count() {
        let dir = TempDir::new("forged");
        let mut corpus = Corpus::create(&dir.0).expect("creates");
        corpus
            .add("victim", TraceHeader::bare(0), &watts(100, 7))
            .expect("adds");

        // Forge the on-disk header to declare an absurd cycle count; the
        // file itself stays tiny. read_all must refuse before sizing any
        // buffer from the forged header.
        let path = dir.0.join("traces/victim.cmt");
        let mut bytes = fs::read(&path).expect("reads");
        let forged = TraceHeader {
            cycles: u64::MAX / 16,
            ..TraceHeader::bare(0)
        };
        bytes[..format::HEADER_LEN].copy_from_slice(&forged.encode());
        fs::write(&path, &bytes).expect("writes");

        let err = corpus
            .read_all("victim")
            .expect_err("forged header must be refused");
        assert!(matches!(err, CorpusError::Format { .. }), "{err}");
        assert!(err.to_string().contains("cycles"), "{err}");
    }

    #[test]
    fn source_streams_bit_identically_to_the_buffered_reader() {
        let dir = TempDir::new("source");
        let mut corpus = Corpus::create(&dir.0).expect("creates");
        let w = watts(3000, 11);
        corpus.add("t", TraceHeader::bare(0), &w).expect("adds");

        let mut source = corpus.source("t").expect("opens");
        #[cfg(unix)]
        assert!(source.is_zero_copy(), "unix should map");
        assert_eq!(source.header().cycles, 3000);
        let mut reader = corpus.reader("t").expect("opens");
        let mut a = [0.0f64; 257];
        let mut b = [0.0f64; 257];
        loop {
            let na = source.read_chunk(&mut a).expect("reads");
            let nb = reader.read_chunk(&mut b).expect("reads");
            assert_eq!(na, nb);
            if na == 0 {
                break;
            }
            for (x, y) in a[..na].iter().zip(&b[..nb]) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        source.finish().expect("crc");
        reader.finish().expect("crc");

        // The env escape hatch forces the buffered path. Same test (not
        // a separate one) so the set_var cannot race the zero-copy
        // assertion above under parallel test execution.
        std::env::set_var(NO_MMAP_ENV, "1");
        let buffered = corpus.source("t");
        std::env::remove_var(NO_MMAP_ENV);
        let buffered = buffered.expect("opens");
        assert!(!buffered.is_zero_copy());
        assert!(matches!(buffered, TraceSource::Buffered(_)));
        let header = buffered.finish().expect("crc");
        assert_eq!(header.cycles, 3000);
    }

    #[test]
    fn source_refuses_a_forged_on_disk_cycle_count() {
        let dir = TempDir::new("sourceforged");
        let mut corpus = Corpus::create(&dir.0).expect("creates");
        corpus
            .add("victim", TraceHeader::bare(0), &watts(100, 7))
            .expect("adds");
        let path = dir.0.join("traces/victim.cmt");
        let mut bytes = fs::read(&path).expect("reads");
        let forged = TraceHeader {
            cycles: u64::MAX / 16,
            ..TraceHeader::bare(0)
        };
        bytes[..format::HEADER_LEN].copy_from_slice(&forged.encode());
        fs::write(&path, &bytes).expect("writes");

        // The mapped path knows the file length up front and refuses the
        // forged header at open.
        let err = corpus.source("victim").expect_err("forged header");
        assert!(matches!(err, CorpusError::Format { .. }), "{err}");
        assert!(err.to_string().contains("cycles"), "{err}");
    }

    #[test]
    fn names_are_validated_and_deduplicated() {
        let dir = TempDir::new("names");
        let mut corpus = Corpus::create(&dir.0).expect("creates");
        corpus
            .add("ok-name_1.a", TraceHeader::bare(0), &[1.0])
            .expect("adds");
        assert!(matches!(
            corpus.add("ok-name_1.a", TraceHeader::bare(0), &[1.0]),
            Err(CorpusError::DuplicateTrace { .. })
        ));
        for bad in ["", "../escape", "a/b", ".hidden", "sp ace"] {
            assert!(
                matches!(
                    corpus.add(bad, TraceHeader::bare(0), &[1.0]),
                    Err(CorpusError::InvalidName { .. })
                ),
                "name {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn scan_rebuilds_a_lost_manifest() {
        let dir = TempDir::new("scan");
        let mut corpus = Corpus::create(&dir.0).expect("creates");
        let w = watts(1234, 9);
        corpus
            .add(
                "rescued",
                TraceHeader {
                    cycles: 0,
                    f_clk_hz: 5e6,
                    seed: 77,
                    source: format::source::CHIP_II,
                },
                &w,
            )
            .expect("adds");
        let original = corpus.entries()[0].clone();

        fs::remove_file(dir.0.join("manifest.jsonl")).expect("removes");
        let rescued = Corpus::scan(&dir.0).expect("scans");
        assert_eq!(rescued.entries(), &[original]);
    }

    #[test]
    fn open_without_a_manifest_fails_cleanly() {
        let dir = TempDir::new("nomanifest");
        assert!(Corpus::open(&dir.0).is_err());
        fs::create_dir_all(&dir.0).expect("mkdir");
        assert!(Corpus::open(&dir.0).is_err());
        // But open_or_create initialises it.
        let corpus = Corpus::open_or_create(&dir.0).expect("creates");
        assert!(corpus.is_empty());
        // Create refuses to clobber it.
        assert!(Corpus::create(&dir.0).is_err());
    }
}
