//! The `.cmt` binary power-trace format.
//!
//! A trace is a fixed 64-byte little-endian header, `cycles` IEEE-754
//! `f64` samples (watts per clock cycle), and an 8-byte integrity footer:
//!
//! ```text
//! offset  size  field
//!      0     8  magic "CMTRACE1"
//!      8     2  version (u16 LE, currently 1)
//!     10     2  flags   (u16 LE, reserved, must be 0)
//!     12     4  header length (u32 LE, 64)
//!     16     8  cycles (u64 LE, sample count)
//!     24     8  f_clk_hz (f64 LE, device clock; 0 when unknown)
//!     32     8  seed (u64 LE, RNG seed of the capture; 0 when unknown)
//!     40     4  source (u32 LE, chip tag: 0 unknown, 1 bare, 2 chip I,
//!               3 chip II)
//!     44    20  reserved (zero)
//!     64     …  samples: cycles × f64 LE
//!    end-8   4  crc32 (u32 LE, IEEE, over header + samples)
//!    end-4   4  end magic "CMTE"
//! ```
//!
//! Reader and writer both stream in chunks, so a trace never has to be
//! fully resident; the CRC accumulates alongside the samples. See
//! `docs/corpus.md` for the full specification and versioning rules.

use crate::codec;
use crate::crc32::Crc32;
use crate::CorpusError;
use std::io::{Read, Write};

/// Leading magic bytes of a `.cmt` file.
pub const MAGIC: &[u8; 8] = b"CMTRACE1";
/// Trailing magic bytes after the CRC footer.
pub const END_MAGIC: &[u8; 4] = b"CMTE";
/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 64;
/// Size of the footer (CRC32 + end magic) in bytes.
pub const FOOTER_LEN: usize = 8;
/// The current format version.
pub const VERSION: u16 = 1;

/// Chip tag values of the `source` header field.
pub mod source {
    /// Provenance unknown (e.g. an imported CSV).
    pub const UNKNOWN: u32 = 0;
    /// Bare watermark, no SoC background.
    pub const BARE: u32 = 1;
    /// Chip I (Cortex-M0-class SoC).
    pub const CHIP_I: u32 = 2;
    /// Chip II (chip I plus the dual-A5 cluster).
    pub const CHIP_II: u32 = 3;
}

/// The fixed metadata at the front of every stored trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceHeader {
    /// Number of `f64` samples that follow.
    pub cycles: u64,
    /// Device clock in hertz (0.0 when unknown).
    pub f_clk_hz: f64,
    /// RNG seed of the capture (0 when unknown).
    pub seed: u64,
    /// Chip tag (see [`source`]).
    pub source: u32,
}

impl TraceHeader {
    /// A header with unknown provenance metadata.
    pub fn bare(cycles: u64) -> Self {
        TraceHeader {
            cycles,
            f_clk_hz: 0.0,
            seed: 0,
            source: source::UNKNOWN,
        }
    }

    /// Encodes the 64-byte on-disk representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(MAGIC);
        codec::put_u16(&mut out, VERSION);
        codec::put_u16(&mut out, 0); // flags
        codec::put_u32(&mut out, HEADER_LEN as u32);
        codec::put_u64(&mut out, self.cycles);
        codec::put_f64(&mut out, self.f_clk_hz);
        codec::put_u64(&mut out, self.seed);
        codec::put_u32(&mut out, self.source);
        out.resize(HEADER_LEN, 0);
        out
    }

    /// Decodes and validates a 64-byte header.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Format`] for a wrong magic, an unsupported
    /// version, non-zero flags, or a truncated buffer.
    pub fn decode(bytes: &[u8]) -> Result<Self, CorpusError> {
        if bytes.len() < HEADER_LEN {
            return Err(CorpusError::format(format!(
                "header is {} bytes, need {HEADER_LEN}",
                bytes.len()
            )));
        }
        if &bytes[..8] != MAGIC {
            return Err(CorpusError::format("bad magic; not a .cmt trace"));
        }
        let version = codec::get_u16(bytes, 8)?;
        if version != VERSION {
            return Err(CorpusError::format(format!(
                "unsupported format version {version} (this build reads {VERSION})"
            )));
        }
        let flags = codec::get_u16(bytes, 10)?;
        if flags != 0 {
            return Err(CorpusError::format(format!("unknown flags {flags:#06x}")));
        }
        let header_len = codec::get_u32(bytes, 12)?;
        if header_len as usize != HEADER_LEN {
            return Err(CorpusError::format(format!(
                "header length {header_len}, expected {HEADER_LEN}"
            )));
        }
        Ok(TraceHeader {
            cycles: codec::get_u64(bytes, 16)?,
            f_clk_hz: codec::get_f64(bytes, 24)?,
            seed: codec::get_u64(bytes, 32)?,
            source: codec::get_u32(bytes, 40)?,
        })
    }

    /// Total on-disk size of a trace with this header, in bytes.
    ///
    /// # Panics
    ///
    /// Panics when the declared cycle count is so large the size does not
    /// fit in a `u64`. Headers from untrusted bytes should go through
    /// [`checked_file_size`](TraceHeader::checked_file_size) instead.
    pub fn file_size(&self) -> u64 {
        self.checked_file_size()
            .expect("cycle count overflows the on-disk size")
    }

    /// Total on-disk size of a trace with this header, or `None` when the
    /// declared cycle count is impossibly large (`cycles * 8` overflows).
    ///
    /// A forged or corrupt header can declare any cycle count; size
    /// arithmetic and preallocation driven by such a header must use this
    /// checked form.
    pub fn checked_file_size(&self) -> Option<u64> {
        self.cycles
            .checked_mul(8)?
            .checked_add(HEADER_LEN as u64 + FOOTER_LEN as u64)
    }
}

/// Streams samples into a `.cmt` trace, accumulating the CRC as it goes.
///
/// The cycle count is declared up front (it sits at a fixed header
/// offset, so the sink never needs to be seekable); [`finish`] fails if
/// the declared and written counts disagree.
///
/// [`finish`]: TraceWriter::finish
///
/// ```
/// use clockmark_corpus::{TraceHeader, TraceReader, TraceWriter};
///
/// let mut file = Vec::new();
/// let mut writer = TraceWriter::new(&mut file, TraceHeader::bare(4)).unwrap();
/// writer.write_samples(&[1.0, 2.0]).unwrap();
/// writer.write_samples(&[3.0, 4.0]).unwrap();
/// writer.finish().unwrap();
///
/// let mut reader = TraceReader::new(file.as_slice()).unwrap();
/// let mut buf = [0.0f64; 16];
/// assert_eq!(reader.read_chunk(&mut buf).unwrap(), 4);
/// assert_eq!(&buf[..4], &[1.0, 2.0, 3.0, 4.0]);
/// reader.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
    crc: Crc32,
    declared: u64,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns the streaming writer.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] on sink failure.
    pub fn new(mut inner: W, header: TraceHeader) -> Result<Self, CorpusError> {
        let bytes = header.encode();
        inner
            .write_all(&bytes)
            .map_err(|e| CorpusError::io("writing trace header", e))?;
        let mut crc = Crc32::new();
        crc.update(&bytes);
        Ok(TraceWriter {
            inner,
            crc,
            declared: header.cycles,
            written: 0,
        })
    }

    /// Appends a chunk of samples.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::NonFinite`] (with the absolute sample
    /// index) for NaN or infinite values, and [`CorpusError::Io`] on sink
    /// failure. Nothing is written past the first bad sample.
    pub fn write_samples(&mut self, watts: &[f64]) -> Result<(), CorpusError> {
        // Encode in bounded stack-friendly chunks so a long trace never
        // allocates proportionally to its length.
        const CHUNK: usize = 1024;
        for chunk in watts.chunks(CHUNK) {
            let mut bytes = Vec::with_capacity(chunk.len() * 8);
            for (i, &w) in chunk.iter().enumerate() {
                if !w.is_finite() {
                    return Err(CorpusError::NonFinite {
                        index: self.written + i as u64,
                    });
                }
                codec::put_f64(&mut bytes, w);
            }
            self.inner
                .write_all(&bytes)
                .map_err(|e| CorpusError::io("writing trace samples", e))?;
            self.crc.update(&bytes);
            self.written += chunk.len() as u64;
            clockmark_obs::counter_add("corpus.bytes_written", bytes.len() as u64);
        }
        Ok(())
    }

    /// Samples written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Writes the CRC footer and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::CycleCountMismatch`] when fewer or more
    /// samples were written than the header declared, and
    /// [`CorpusError::Io`] on sink failure.
    pub fn finish(mut self) -> Result<W, CorpusError> {
        if self.written != self.declared {
            return Err(CorpusError::CycleCountMismatch {
                declared: self.declared,
                written: self.written,
            });
        }
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        codec::put_u32(&mut footer, self.crc.finish());
        footer.extend_from_slice(END_MAGIC);
        self.inner
            .write_all(&footer)
            .map_err(|e| CorpusError::io("writing trace footer", e))?;
        self.inner
            .flush()
            .map_err(|e| CorpusError::io("flushing trace", e))?;
        Ok(self.inner)
    }
}

/// Streams samples out of a `.cmt` trace, re-deriving the CRC so
/// [`finish`](TraceReader::finish) can validate the footer.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inner: R,
    crc: Crc32,
    header: TraceHeader,
    consumed: u64,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header, returning the streaming reader.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Format`] for a malformed header and
    /// [`CorpusError::Io`] on source failure.
    pub fn new(mut inner: R) -> Result<Self, CorpusError> {
        let mut bytes = [0u8; HEADER_LEN];
        inner
            .read_exact(&mut bytes)
            .map_err(|e| CorpusError::io("reading trace header", e))?;
        let header = TraceHeader::decode(&bytes)?;
        let mut crc = Crc32::new();
        crc.update(&bytes);
        Ok(TraceReader {
            inner,
            crc,
            header,
            consumed: 0,
        })
    }

    /// The trace metadata.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Samples not yet read.
    pub fn remaining(&self) -> u64 {
        self.header.cycles - self.consumed
    }

    /// Samples already read.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Fills `buf` with up to `buf.len()` samples; returns how many were
    /// read (0 once the trace is exhausted).
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] on source failure and
    /// [`CorpusError::NonFinite`] for corrupted sample bytes that decode
    /// to NaN or infinity (the CRC footer would also catch these, but
    /// this fails earlier and names the sample).
    pub fn read_chunk(&mut self, buf: &mut [f64]) -> Result<usize, CorpusError> {
        let want = (buf.len() as u64).min(self.remaining()) as usize;
        if want == 0 {
            return Ok(0);
        }
        let mut bytes = vec![0u8; want * 8];
        self.inner
            .read_exact(&mut bytes)
            .map_err(|e| CorpusError::io("reading trace samples", e))?;
        self.crc.update(&bytes);
        clockmark_obs::counter_add("corpus.bytes_read", bytes.len() as u64);
        for (i, slot) in buf[..want].iter_mut().enumerate() {
            let v = codec::get_f64(&bytes, i * 8)?;
            if !v.is_finite() {
                return Err(CorpusError::NonFinite {
                    index: self.consumed + i as u64,
                });
            }
            *slot = v;
        }
        self.consumed += want as u64;
        Ok(want)
    }

    /// Reads and discards `n` samples (they still feed the CRC, so a
    /// later [`finish`](TraceReader::finish) remains meaningful).
    ///
    /// # Errors
    ///
    /// Same conditions as [`read_chunk`](TraceReader::read_chunk);
    /// additionally a [`CorpusError::Format`] when `n` exceeds the
    /// remaining samples.
    pub fn skip_samples(&mut self, n: u64) -> Result<(), CorpusError> {
        if n > self.remaining() {
            return Err(CorpusError::format(format!(
                "cannot skip {n} samples; only {} remain",
                self.remaining()
            )));
        }
        let mut buf = [0.0f64; 1024];
        let mut left = n;
        while left > 0 {
            let take = (left as usize).min(buf.len());
            let got = self.read_chunk(&mut buf[..take])?;
            debug_assert_eq!(got, take);
            left -= got as u64;
        }
        Ok(())
    }

    /// Consumes the remaining samples (discarding them), reads the
    /// footer, and validates the CRC.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Corrupt`] when the stored CRC disagrees
    /// with the payload, [`CorpusError::Format`] for a bad end magic, and
    /// [`CorpusError::Io`] on source failure.
    pub fn finish(mut self) -> Result<TraceHeader, CorpusError> {
        self.skip_samples(self.remaining())?;
        let mut footer = [0u8; FOOTER_LEN];
        self.inner
            .read_exact(&mut footer)
            .map_err(|e| CorpusError::io("reading trace footer", e))?;
        let expected = codec::get_u32(&footer, 0)?;
        if &footer[4..8] != END_MAGIC {
            return Err(CorpusError::format("bad end magic; truncated trace?"));
        }
        let actual = self.crc.finish();
        if expected != actual {
            return Err(CorpusError::Corrupt { expected, actual });
        }
        Ok(self.header)
    }
}

/// `.cmt` traces plug straight into
/// [`Detector::detect_trace`](clockmark_cpa::Detector::detect_trace):
/// chunks stream into the fold and the CRC footer is validated (via
/// [`TraceReader::finish`]) before any verdict is produced, so a
/// corrupted trace yields an error, never a silently wrong decision.
impl<R: Read> clockmark_cpa::TraceInput for TraceReader<R> {
    type Error = CorpusError;

    fn next_chunk(&mut self, buf: &mut [f64]) -> Result<usize, CorpusError> {
        self.read_chunk(buf)
    }

    fn finish(self) -> Result<(), CorpusError> {
        TraceReader::finish(self).map(|_| ())
    }
}

/// Encodes a whole trace into bytes (convenience over [`TraceWriter`]).
///
/// # Errors
///
/// Same conditions as [`TraceWriter::write_samples`].
pub fn encode_trace(header: TraceHeader, watts: &[f64]) -> Result<Vec<u8>, CorpusError> {
    let mut header = header;
    header.cycles = watts.len() as u64;
    // The cycle count was just derived from a real slice, so the checked
    // size cannot overflow; `unwrap_or(0)` keeps this allocation-only hint
    // panic-free regardless.
    let capacity = header.checked_file_size().unwrap_or(0) as usize;
    let mut out = Vec::with_capacity(capacity);
    let mut writer = TraceWriter::new(&mut out, header)?;
    writer.write_samples(watts)?;
    writer.finish()?;
    Ok(out)
}

/// Decodes and fully validates a trace from bytes (convenience over
/// [`TraceReader`]).
///
/// # Errors
///
/// Same conditions as the [`TraceReader`] methods; additionally a
/// [`CorpusError::Format`] when the header declares more samples than the
/// buffer can possibly hold, so a forged header never drives a huge
/// allocation.
pub fn decode_trace(bytes: &[u8]) -> Result<(TraceHeader, Vec<f64>), CorpusError> {
    let reader = TraceReader::new(bytes)?;
    check_declared_size(reader.header(), bytes.len() as u64)?;
    let mut reader = reader;
    let mut watts = vec![0.0f64; reader.header().cycles as usize];
    let mut filled = 0;
    while filled < watts.len() {
        let got = reader.read_chunk(&mut watts[filled..])?;
        debug_assert!(got > 0, "read_chunk stalled before the declared count");
        filled += got;
    }
    let header = reader.finish()?;
    Ok((header, watts))
}

/// Rejects headers whose declared payload cannot fit in `available`
/// bytes, before any cycle-proportional allocation happens.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] when `cycles * 8` overflows or the
/// declared on-disk size exceeds the bytes actually present.
pub(crate) fn check_declared_size(header: &TraceHeader, available: u64) -> Result<(), CorpusError> {
    match header.checked_file_size() {
        None => Err(CorpusError::format(format!(
            "impossible header: {} cycles overflows the on-disk size",
            header.cycles
        ))),
        Some(size) if size > available => Err(CorpusError::format(format!(
            "header declares {} cycles ({size} bytes) but only {available} bytes are present",
            header.cycles
        ))),
        Some(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64) * 1.5e-6 - 2e-4).collect()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let watts = sample_trace(1000);
        let header = TraceHeader {
            cycles: 1000,
            f_clk_hz: 10.0e6,
            seed: 42,
            source: source::CHIP_I,
        };
        let bytes = encode_trace(header, &watts).expect("encodes");
        assert_eq!(bytes.len() as u64, header.file_size());
        let (back_header, back) = decode_trace(&bytes).expect("decodes");
        assert_eq!(back_header, header);
        assert_eq!(back.len(), watts.len());
        for (a, b) in back.iter().zip(&watts) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunked_reads_match_any_chunk_size() {
        let watts = sample_trace(777);
        let bytes = encode_trace(TraceHeader::bare(0), &watts).expect("encodes");
        for chunk in [1usize, 7, 64, 1000] {
            let mut reader = TraceReader::new(bytes.as_slice()).expect("opens");
            let mut got = Vec::new();
            let mut buf = vec![0.0f64; chunk];
            loop {
                let n = reader.read_chunk(&mut buf).expect("reads");
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            reader.finish().expect("valid crc");
            assert_eq!(got, watts, "chunk size {chunk}");
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let watts = sample_trace(64);
        let clean = encode_trace(TraceHeader::bare(0), &watts).expect("encodes");
        // Flip one byte in the header, in the samples, and in the footer.
        for at in [4usize, HEADER_LEN + 13, clean.len() - 6] {
            let mut bad = clean.clone();
            bad[at] ^= 0x01;
            let result = decode_trace(&bad);
            assert!(result.is_err(), "flip at byte {at} went undetected");
        }
    }

    #[test]
    fn non_finite_samples_are_rejected_with_their_index() {
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, TraceHeader::bare(10)).expect("opens");
        writer.write_samples(&[1.0, 2.0]).expect("finite");
        let err = writer
            .write_samples(&[3.0, f64::NAN])
            .expect_err("NaN must be rejected");
        assert!(matches!(err, CorpusError::NonFinite { index: 3 }), "{err}");
        assert!(encode_trace(TraceHeader::bare(0), &[f64::INFINITY]).is_err());
    }

    #[test]
    fn cycle_count_mismatch_is_rejected() {
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, TraceHeader::bare(5)).expect("opens");
        writer.write_samples(&[1.0, 2.0]).expect("writes");
        let err = writer.finish().expect_err("short write must fail");
        assert!(matches!(
            err,
            CorpusError::CycleCountMismatch {
                declared: 5,
                written: 2
            }
        ));
    }

    #[test]
    fn skip_samples_preserves_crc_validation() {
        let watts = sample_trace(500);
        let bytes = encode_trace(TraceHeader::bare(0), &watts).expect("encodes");
        let mut reader = TraceReader::new(bytes.as_slice()).expect("opens");
        reader.skip_samples(123).expect("skips");
        assert_eq!(reader.consumed(), 123);
        assert_eq!(reader.remaining(), 377);
        let mut buf = [0.0f64; 8];
        reader.read_chunk(&mut buf).expect("reads");
        assert_eq!(buf[0].to_bits(), watts[123].to_bits());
        reader.finish().expect("crc still validates");
    }

    #[test]
    fn forged_cycle_counts_cannot_demand_huge_allocations() {
        // A syntactically valid header over a tiny body, declaring a
        // payload far larger than the buffer: decode must refuse before
        // allocating anything proportional to the forged count.
        let mut forged = TraceHeader::bare(u64::MAX / 16).encode();
        forged.extend_from_slice(&[0u8; 64]);
        let err = decode_trace(&forged).expect_err("forged header must be refused");
        assert!(matches!(err, CorpusError::Format { .. }), "{err}");
        assert!(err.to_string().contains("cycles"), "{err}");

        // A count whose byte size overflows u64 entirely.
        let mut overflow = TraceHeader::bare(u64::MAX).encode();
        overflow.extend_from_slice(&[0u8; 64]);
        let err = decode_trace(&overflow).expect_err("overflowing header must be refused");
        assert!(err.to_string().contains("impossible header"), "{err}");
        assert_eq!(TraceHeader::bare(u64::MAX).checked_file_size(), None);
    }

    #[test]
    fn header_rejects_foreign_files() {
        assert!(TraceHeader::decode(&[0u8; HEADER_LEN]).is_err());
        let mut csvish = vec![0u8; HEADER_LEN];
        csvish[..8].copy_from_slice(b"# clockm");
        assert!(TraceHeader::decode(&csvish).is_err());
        let mut wrong_version = TraceHeader::bare(1).encode();
        wrong_version[8] = 99;
        assert!(TraceHeader::decode(&wrong_version).is_err());
    }
}
