//! CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//!
//! The integrity footer of every stored trace and checkpoint. The
//! implementation is the classic byte-at-a-time table walk — fast enough
//! to disappear behind file I/O, and dependency-free.

/// The 256-entry lookup table, generated at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// An incremental CRC-32 accumulator.
///
/// ```
/// use clockmark_corpus::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (the accumulator stays
    /// usable; `finish` is a pure read).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut crc = Crc32::new();
        for chunk in data.chunks(37) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(&data));
    }

    #[test]
    fn single_flipped_bit_changes_the_checksum() {
        let mut data = vec![0u8; 4096];
        let clean = crc32(&data);
        for byte in [0usize, 1000, 4095] {
            data[byte] ^= 0x10;
            assert_ne!(crc32(&data), clean, "flip at byte {byte} undetected");
            data[byte] ^= 0x10;
        }
    }
}
