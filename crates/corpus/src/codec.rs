//! Little-endian field helpers shared by the trace format, checkpoint
//! blobs, and the manifest verifier.
//!
//! Everything on disk is fixed little-endian regardless of host order, so
//! a corpus written on one machine verifies bit-for-bit on any other.

use crate::CorpusError;

/// Appends a `u16` in little-endian order.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its little-endian IEEE-754 bits (bit-exact,
/// including negative zero).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a `u16` from `bytes` at `at`.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] when the slice is too short.
pub fn get_u16(bytes: &[u8], at: usize) -> Result<u16, CorpusError> {
    let raw: [u8; 2] = bytes
        .get(at..at + 2)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| CorpusError::format(format!("truncated u16 at byte {at}")))?;
    Ok(u16::from_le_bytes(raw))
}

/// Reads a `u32` from `bytes` at `at`.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] when the slice is too short.
pub fn get_u32(bytes: &[u8], at: usize) -> Result<u32, CorpusError> {
    let raw: [u8; 4] = bytes
        .get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| CorpusError::format(format!("truncated u32 at byte {at}")))?;
    Ok(u32::from_le_bytes(raw))
}

/// Reads a `u64` from `bytes` at `at`.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] when the slice is too short.
pub fn get_u64(bytes: &[u8], at: usize) -> Result<u64, CorpusError> {
    let raw: [u8; 8] = bytes
        .get(at..at + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| CorpusError::format(format!("truncated u64 at byte {at}")))?;
    Ok(u64::from_le_bytes(raw))
}

/// Reads an `f64` (bit-exact) from `bytes` at `at`.
///
/// # Errors
///
/// Returns [`CorpusError::Format`] when the slice is too short.
pub fn get_f64(bytes: &[u8], at: usize) -> Result<f64, CorpusError> {
    Ok(f64::from_bits(get_u64(bytes, at)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_are_bit_exact() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, 1.0e-300);
        assert_eq!(get_u16(&buf, 0).expect("fits"), 0xBEEF);
        assert_eq!(get_u32(&buf, 2).expect("fits"), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 6).expect("fits"), u64::MAX - 7);
        assert_eq!(
            get_f64(&buf, 14).expect("fits").to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(get_f64(&buf, 22).expect("fits"), 1.0e-300);
    }

    #[test]
    fn truncated_reads_are_errors() {
        let buf = [0u8; 3];
        assert!(get_u32(&buf, 0).is_err());
        assert!(get_u64(&buf, 0).is_err());
        assert!(get_u16(&buf, 2).is_err());
    }
}
