//! Read-only memory mapping of trace files.
//!
//! A paper-scale detection campaign reads the same 300,000-cycle traces
//! over and over (resume replays, shard reassignment, repeated serve
//! requests). The buffered [`TraceReader`](crate::TraceReader) pays a
//! copy from the page cache into userspace for every pass; a read-only
//! private mapping lets the fold kernels consume sample bytes straight
//! out of the page cache with no copy at all.
//!
//! [`Mmap`] is the std-only platform wrapper:
//!
//! - on unix it issues the raw `mmap(2)`/`munmap(2)` syscalls through
//!   `extern "C"` declarations (libc is already linked by std), mapping
//!   the whole file `PROT_READ` + `MAP_PRIVATE`;
//! - everywhere else it degrades to a buffered [`std::fs::read`], so
//!   callers never need platform `cfg`s — [`Mmap::is_zero_copy`] reports
//!   which path was taken.
//!
//! ## Safety contract
//!
//! All `unsafe` in the workspace lives in two scoped `sys` modules:
//! the one below and `clockmark-serve`'s `poll::sys` (the `poll(2)` /
//! `RLIMIT_NOFILE` prototypes of the readiness engine), each behind a
//! scoped `allow`. The argument for soundness here:
//!
//! - the mapping is `PROT_READ` and `MAP_PRIVATE`: nothing can write
//!   through it, and writes by other processes to the underlying pages
//!   are not observable as tearing of *our* copy-on-write view;
//! - the pointer/length pair returned by a successful `mmap` call is
//!   valid for exactly `len` bytes until `munmap`, which only happens in
//!   `Drop`, so the `&[u8]` handed out by [`Mmap::as_bytes`] (tied to
//!   `&self`) can never outlive the mapping;
//! - `Send`/`Sync` are sound because the mapping is immutable for its
//!   whole lifetime.
//!
//! The one residual hazard of any file mapping — a concurrent in-place
//! truncation of the mapped file raises `SIGBUS` on access — is outside
//! the corpus contract: trace files are written through a temp name and
//! atomically renamed into place, and are never truncated or rewritten
//! in place afterwards (`docs/corpus.md`). Mapping a file some other
//! process shrinks underneath us is as fatal as it would be for any
//! mmap-using program; the corpus itself never does it.

use crate::CorpusError;
use std::fs::File;
use std::path::Path;

#[cfg(unix)]
mod sys {
    //! The one `unsafe` block in the workspace: raw `mmap`/`munmap` FFI.
    #![allow(unsafe_code)]

    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // Prototypes from POSIX `<sys/mman.h>`; libc is linked by std. The
    // constants below are identical on every unix std supports.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// An owned read-only private mapping of a whole file.
    #[derive(Debug)]
    pub(super) struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    impl Map {
        /// Maps `len` bytes of `file` from offset 0.
        ///
        /// A zero-length file is represented without calling `mmap` at
        /// all (POSIX rejects `len == 0` mappings).
        pub(super) fn new(file: &File, len: usize) -> io::Result<Map> {
            if len == 0 {
                return Ok(Map {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: addr = NULL lets the kernel pick the placement; the
            // fd is a live borrowed file descriptor; a PROT_READ +
            // MAP_PRIVATE mapping grants us no mutable aliasing. The
            // result is checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as usize == usize::MAX {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        pub(super) fn as_bytes(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `ptr` came from a successful mmap of exactly `len`
            // bytes, is unmapped only in Drop, and the mapping is
            // read-only — so the slice is valid, immutable, and cannot
            // outlive the mapping (it borrows `self`).
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: exactly the pointer/length pair the kernel
                // handed us; after this the struct is gone, so no slice
                // borrowed from it can be live (lifetimes tie them to
                // `&self`).
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }

    // SAFETY: the mapping is PROT_READ for its whole lifetime — shared
    // immutable state is safe to move between and reference from
    // multiple threads.
    unsafe impl Send for Map {}
    // SAFETY: as above; `&Map` only exposes `&[u8]` reads.
    unsafe impl Sync for Map {}
}

/// The file bytes, zero-copy where the platform allows it.
#[derive(Debug)]
enum Inner {
    /// A live `mmap(2)` mapping (unix only).
    #[cfg(unix)]
    Mapped(sys::Map),
    /// Buffered fallback: the whole file read into memory.
    Buffered(Vec<u8>),
}

/// A whole file as a byte slice — memory-mapped on unix, buffered
/// elsewhere (or when the mapping syscall fails).
///
/// ```no_run
/// # fn main() -> Result<(), clockmark_corpus::CorpusError> {
/// let map = clockmark_corpus::Mmap::open("corpus/traces/chip_i_s42.cmt")?;
/// let (header, watts) = clockmark_corpus::decode_trace(map.as_bytes())?;
/// # let _ = (header, watts);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

impl Mmap {
    /// Opens `path` and maps it read-only, falling back to a buffered
    /// read when mapping is unavailable (non-unix) or refused by the
    /// kernel (e.g. a pseudo-file that cannot be mapped).
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] when the file cannot be opened,
    /// statted, or — on the fallback path — read.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CorpusError> {
        let path = path.as_ref();
        let file = File::open(path)
            .map_err(|e| CorpusError::io(format!("opening {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| CorpusError::io(format!("stat {}", path.display()), e))?
            .len();
        if len > usize::MAX as u64 {
            return Err(CorpusError::format(format!(
                "{} is {len} bytes; larger than the address space",
                path.display()
            )));
        }
        #[cfg(unix)]
        {
            // An unmappable file (procfs, some network mounts) is not an
            // error; the buffered path below serves it.
            if let Ok(map) = sys::Map::new(&file, len as usize) {
                clockmark_obs::counter_add("corpus.traces_mapped", 1);
                return Ok(Mmap {
                    inner: Inner::Mapped(map),
                });
            }
        }
        drop(file);
        Self::open_buffered(path)
    }

    /// Opens `path` with the buffered path unconditionally — used when
    /// the caller opts out of mapping (`CLOCKMARK_NO_MMAP`).
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError::Io`] when the file cannot be read.
    pub fn open_buffered(path: impl AsRef<Path>) -> Result<Self, CorpusError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| CorpusError::io(format!("reading {}", path.display()), e))?;
        Ok(Mmap {
            inner: Inner::Buffered(bytes),
        })
    }

    /// The mapped (or buffered) file contents.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(map) => map.as_bytes(),
            Inner::Buffered(bytes) => bytes,
        }
    }

    /// Length of the file in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.as_bytes().is_empty()
    }

    /// `true` when the bytes come straight from a page-cache mapping,
    /// `false` on the buffered fallback.
    pub fn is_zero_copy(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(_) => true,
            Inner::Buffered(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "cm_mmap_{tag}_{}_{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut f = File::create(&path).expect("creates");
        f.write_all(contents).expect("writes");
        path
    }

    #[test]
    fn mapped_bytes_match_the_file() {
        let contents: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let path = temp_file("match", &contents);
        let map = Mmap::open(&path).expect("maps");
        assert_eq!(map.as_bytes(), &contents[..]);
        assert_eq!(map.len(), contents.len());
        #[cfg(unix)]
        assert!(map.is_zero_copy(), "unix should take the mmap path");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn buffered_fallback_matches_too() {
        let contents = b"not much of a trace".to_vec();
        let path = temp_file("buffered", &contents);
        let map = Mmap::open_buffered(&path).expect("reads");
        assert_eq!(map.as_bytes(), &contents[..]);
        assert!(!map.is_zero_copy());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let path = temp_file("empty", b"");
        let map = Mmap::open(&path).expect("maps");
        assert!(map.is_empty());
        assert_eq!(map.as_bytes(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_files_error_cleanly() {
        let err = Mmap::open("/definitely/not/a/real/path.cmt").expect_err("must fail");
        assert!(matches!(err, CorpusError::Io { .. }), "{err}");
    }

    #[test]
    fn mappings_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }
}
