//! # clockmark-corpus — durable power-trace storage
//!
//! The paper validates detection with one-shot captures: 300,000 cycles
//! straight from the oscilloscope into one correlation (Fig. 5/6). Fleet
//! verification — proving a watermark across *many* fabricated chips,
//! seeds and workloads — needs those captures to outlive the process that
//! recorded them. This crate provides:
//!
//! - the **`.cmt` binary trace format** ([`mod@format`]): a fixed 64-byte
//!   little-endian header (cycle count + capture metadata), raw `f64`
//!   samples, and a CRC-32 integrity footer, with chunked streaming
//!   [`TraceWriter`]/[`TraceReader`] so a trace never has to be fully
//!   resident;
//! - the **corpus store** ([`Corpus`]): an on-disk directory of traces
//!   indexed by `manifest.jsonl` (always replaced atomically via
//!   temp-file + rename) supporting add / list / verify / scan;
//! - **zero-copy ingestion** ([`mod@mmap`], [`TraceBytes`],
//!   [`MappedTrace`]): read-only memory-mapped `.cmt` traces on unix
//!   (buffered reads elsewhere), so campaign workers and detection
//!   services stream sample chunks straight out of the page cache with
//!   header and CRC validation unchanged;
//! - the low-level [`codec`] and [`Crc32`] primitives, reused by the
//!   campaign engine's checkpoint blobs in the `clockmark` crate.
//!
//! Everything is std-only and byte-order-pinned: a corpus written on one
//! machine verifies bit-for-bit on any other. The full byte layout and
//! versioning rules live in `docs/corpus.md`; the mmap lifecycle and
//! safety contract in `docs/perf.md`.

// `deny` rather than `forbid`: the one scoped exception is the raw
// `mmap`/`munmap` FFI in `mmap.rs`, which carries its own safety
// argument. Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod crc32;
mod error;
pub mod format;
mod manifest;
pub mod mmap;
mod store;
mod view;

pub use crc32::{crc32, Crc32};
pub use error::CorpusError;
pub use format::{decode_trace, encode_trace, TraceHeader, TraceReader, TraceWriter};
pub use manifest::{read_manifest, write_manifest, ManifestEntry};
pub use mmap::Mmap;
pub use store::{Corpus, TraceSource, VerifyOutcome, NO_MMAP_ENV};
pub use view::{MappedTrace, TraceBytes};
