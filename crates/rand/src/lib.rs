//! A vendored, std-only subset of the [`rand` 0.9](https://docs.rs/rand/0.9)
//! API surface.
//!
//! The build environment for this repository has no reachable crate
//! registry, so the real `rand` crate cannot be downloaded. This crate
//! provides drop-in implementations of exactly the names the workspace
//! uses — [`Rng`], [`SeedableRng`] and [`rngs::StdRng`] — with the same
//! method semantics (`random`, `random_bool`, `random_range`), backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! The generator is *not* cryptographically secure; it is used here only
//! to produce reproducible measurement noise and test stimuli.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u64` words — the minimal core every generator
/// implements (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator with user-facing sampling methods, mirroring
/// `rand::Rng` (0.9 naming: `random`, `random_bool`, `random_range`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's full range (`f64`/`f32`
    /// sample uniformly from `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A generator that can be constructed from a seed (mirrors
/// `rand::SeedableRng`, reduced to the one constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded with SplitMix64 as
    /// the reference xoshiro implementations recommend.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from a generator's raw output (mirrors the
/// `StandardUniform` distribution).
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a single value can be drawn from (mirrors
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` below `bound` without modulo bias (Lemire's method with a
/// rejection fallback kept simple: retry on the biased tail).
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // The tail of size (2^64 % bound) would bias `%`; reject it.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is not a CSPRNG,
    /// but it is fast, passes BigCrush, and — the property the workspace
    /// actually relies on — is fully reproducible from a `u64` seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna's reference code.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn random_unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&v), "{v}");
            let i = rng.random_range(0u8..4);
            assert!(i < 4);
            let j = rng.random_range(-40..=40);
            assert!((-40..=40).contains(&j));
        }
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "{rate}");
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
