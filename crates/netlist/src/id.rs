use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw index of this id within its arena.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Reconstructs an id from a raw arena index.
            ///
            /// Ids are dense indices in insertion order, so external tools
            /// (serializers, report generators) can rebuild them; using an
            /// index from a *different* netlist yields a dangling id that
            /// accessor methods will reject.
            ///
            /// # Panics
            ///
            /// Panics when `index` exceeds `u32::MAX`.
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("arena indices fit in u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a cell (register, clock gate or clock buffer) in a
    /// [`Netlist`](crate::Netlist).
    ///
    /// Ids are dense indices assigned in insertion order; they are only
    /// meaningful within the netlist that created them.
    CellId,
    "cell"
);

define_id!(
    /// Identifies a combinational signal declared in a
    /// [`Netlist`](crate::Netlist).
    SignalId,
    "sig"
);

define_id!(
    /// Identifies a top-level clock source of a
    /// [`Netlist`](crate::Netlist).
    ClockRootId,
    "clkroot"
);

define_id!(
    /// Identifies a named cell group (e.g. `"cpu"`, `"watermark"`) used to
    /// split activity and power accounting per subsystem.
    GroupId,
    "group"
);

impl GroupId {
    /// The implicit top-level group every netlist starts with.
    pub const TOP: GroupId = GroupId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix_and_index() {
        assert_eq!(CellId(3).to_string(), "cell3");
        assert_eq!(SignalId(0).to_string(), "sig0");
        assert_eq!(ClockRootId(7).to_string(), "clkroot7");
        assert_eq!(GroupId::TOP.to_string(), "group0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CellId(1) < CellId(2));
        assert_eq!(CellId(5).index(), 5);
    }
}
