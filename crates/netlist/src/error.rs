use crate::{CellId, SignalId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A referenced cell id does not exist in this netlist.
    UnknownCell {
        /// The dangling reference.
        cell: CellId,
    },
    /// A referenced signal id does not exist in this netlist.
    UnknownSignal {
        /// The dangling reference.
        signal: SignalId,
    },
    /// A referenced clock root does not exist in this netlist.
    UnknownClockRoot,
    /// A referenced group does not exist in this netlist.
    UnknownGroup,
    /// A cell's clock input points at a cell that is not a clock source
    /// (only clock buffers and clock gates output clocks).
    NotAClockSource {
        /// The offending clock driver.
        cell: CellId,
    },
    /// A data source references a cell that is not a register.
    NotARegister {
        /// The offending data driver.
        cell: CellId,
    },
    /// The clock network contains a cycle through this cell.
    ClockCycle {
        /// A cell on the cycle.
        at: CellId,
    },
    /// The combinational signal network contains a cycle through this
    /// signal.
    SignalCycle {
        /// A signal on the cycle.
        at: SignalId,
    },
    /// A clock tree was requested with no leaves or zero fanout.
    InvalidTreeShape,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownCell { cell } => write!(f, "unknown cell {cell}"),
            NetlistError::UnknownSignal { signal } => write!(f, "unknown signal {signal}"),
            NetlistError::UnknownClockRoot => write!(f, "unknown clock root"),
            NetlistError::UnknownGroup => write!(f, "unknown group"),
            NetlistError::NotAClockSource { cell } => {
                write!(
                    f,
                    "cell {cell} is not a clock source (buffer or clock gate)"
                )
            }
            NetlistError::NotARegister { cell } => {
                write!(f, "cell {cell} is not a register and cannot drive data")
            }
            NetlistError::ClockCycle { at } => {
                write!(f, "clock network contains a cycle through {at}")
            }
            NetlistError::SignalCycle { at } => {
                write!(
                    f,
                    "signal network contains a combinational cycle through {at}"
                )
            }
            NetlistError::InvalidTreeShape => {
                write!(
                    f,
                    "clock tree requires at least one leaf and a fanout of at least two"
                )
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_without_trailing_punctuation() {
        let errors: Vec<NetlistError> = vec![
            NetlistError::UnknownCell { cell: CellId(1) },
            NetlistError::UnknownSignal {
                signal: SignalId(1),
            },
            NetlistError::UnknownClockRoot,
            NetlistError::UnknownGroup,
            NetlistError::NotAClockSource { cell: CellId(0) },
            NetlistError::NotARegister { cell: CellId(0) },
            NetlistError::ClockCycle { at: CellId(0) },
            NetlistError::SignalCycle { at: SignalId(0) },
            NetlistError::InvalidTreeShape,
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.ends_with('.'), "{msg}");
            assert!(
                msg.chars().next().expect("non-empty").is_lowercase(),
                "{msg}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
