use crate::{CellId, ClockRootId, GroupId, SignalId};

/// Where a clocked cell receives its clock from.
///
/// Clocks form a forest: each clocked cell is driven either directly by a
/// top-level [`ClockRootId`] or by the output of a clock buffer / clock gate
/// cell, building the clock tree the paper's technique modulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockInput {
    /// Driven directly by a top-level clock root.
    Root(ClockRootId),
    /// Driven by the output of another cell (a buffer or an ICG).
    Cell(CellId),
}

impl From<ClockRootId> for ClockInput {
    fn from(root: ClockRootId) -> Self {
        ClockInput::Root(root)
    }
}

impl From<CellId> for ClockInput {
    fn from(cell: CellId) -> Self {
        ClockInput::Cell(cell)
    }
}

/// What a register samples on each (enabled) clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// A constant value: the register loads it once and never toggles again.
    Constant(bool),
    /// The inverse of the register's own output — toggles every clocked
    /// cycle, maximising data switching power (the paper's Table I
    /// "switching registers").
    Toggle,
    /// The previous-cycle output of another register, forming shift-register
    /// chains (the state-of-the-art load circuit of Fig. 1(a)).
    ShiftFrom(CellId),
    /// A combinational signal evaluated from pre-edge register outputs.
    Signal(SignalId),
    /// Data input tied to the register's own output: state is retained, so
    /// only the clock pin consumes power (Table I "no data switching").
    Hold,
}

/// A combinational signal expression.
///
/// Signals are evaluated every cycle from the *pre-edge* values of register
/// outputs, standard synchronous semantics. `External` signals are driven by
/// the simulator's stimulus (e.g. a software sequence generator standing in
/// for an off-netlist block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalExpr {
    /// A constant level.
    Const(bool),
    /// Driven externally by simulation stimulus.
    External,
    /// The current output of a register cell.
    RegOutput(CellId),
    /// Logical AND of two signals.
    And(SignalId, SignalId),
    /// Logical OR of two signals.
    Or(SignalId, SignalId),
    /// Logical XOR of two signals.
    Xor(SignalId, SignalId),
    /// Logical negation of a signal.
    Not(SignalId),
}

/// Configuration for a register cell, consumed by
/// [`Netlist::add_register`](crate::Netlist::add_register).
///
/// ```
/// use clockmark_netlist::{DataSource, Netlist, RegisterConfig};
///
/// let mut netlist = Netlist::new();
/// let clk = netlist.add_clock_root("clk");
/// let config = RegisterConfig::new(clk.into())
///     .data(DataSource::Toggle)
///     .init(true);
/// let reg = netlist.add_register(clockmark_netlist::GroupId::TOP, config);
/// assert!(reg.is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegisterConfig {
    /// Clock input of the flip-flop.
    pub clock: ClockInput,
    /// Data sampled at each enabled clock edge.
    pub data: DataSource,
    /// Power-on value of the register output.
    pub init: bool,
    /// Optional synchronous enable: when present and low, the register keeps
    /// its value even though its clock pin still toggles (and still burns
    /// clock power) — exactly the situation clock gating eliminates.
    pub sync_enable: Option<SignalId>,
}

impl RegisterConfig {
    /// A register clocked from `clock`, holding its value, initialised to 0.
    pub fn new(clock: ClockInput) -> Self {
        RegisterConfig {
            clock,
            data: DataSource::Hold,
            init: false,
            sync_enable: None,
        }
    }

    /// Sets the data source.
    pub fn data(mut self, data: DataSource) -> Self {
        self.data = data;
        self
    }

    /// Sets the power-on value.
    pub fn init(mut self, init: bool) -> Self {
        self.init = init;
        self
    }

    /// Adds a synchronous enable signal.
    pub fn sync_enable(mut self, enable: SignalId) -> Self {
        self.sync_enable = Some(enable);
        self
    }
}

/// The kind-specific payload of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A D flip-flop.
    Register(RegisterConfig),
    /// An integrated clock-gating cell: propagates its input clock while
    /// `enable` is high, holds the downstream clock low otherwise.
    ClockGate {
        /// Upstream clock.
        clock: ClockInput,
        /// Gating condition, evaluated each cycle.
        enable: SignalId,
    },
    /// A clock-tree buffer: repeats its input clock to downstream sinks.
    ClockBuffer {
        /// Upstream clock.
        clock: ClockInput,
    },
}

impl CellKind {
    /// The upstream clock of this cell.
    pub fn clock(&self) -> ClockInput {
        match *self {
            CellKind::Register(RegisterConfig { clock, .. }) => clock,
            CellKind::ClockGate { clock, .. } => clock,
            CellKind::ClockBuffer { clock } => clock,
        }
    }

    /// Whether this cell can source a clock for other cells.
    pub fn is_clock_source(&self) -> bool {
        matches!(
            self,
            CellKind::ClockGate { .. } | CellKind::ClockBuffer { .. }
        )
    }

    /// Whether this cell is a register.
    pub fn is_register(&self) -> bool {
        matches!(self, CellKind::Register(_))
    }
}

/// A cell instance: kind plus bookkeeping metadata.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Kind-specific configuration.
    pub kind: CellKind,
    /// The accounting group the cell belongs to.
    pub group: GroupId,
    /// Optional instance name for diagnostics.
    pub name: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_config_builder_chains() {
        let clock = ClockInput::Root(ClockRootId(0));
        let cfg = RegisterConfig::new(clock)
            .data(DataSource::Toggle)
            .init(true)
            .sync_enable(SignalId(2));
        assert_eq!(cfg.clock, clock);
        assert_eq!(cfg.data, DataSource::Toggle);
        assert!(cfg.init);
        assert_eq!(cfg.sync_enable, Some(SignalId(2)));
    }

    #[test]
    fn clock_input_conversions() {
        let from_root: ClockInput = ClockRootId(1).into();
        assert_eq!(from_root, ClockInput::Root(ClockRootId(1)));
        let from_cell: ClockInput = CellId(9).into();
        assert_eq!(from_cell, ClockInput::Cell(CellId(9)));
    }

    #[test]
    fn cell_kind_classification() {
        let reg = CellKind::Register(RegisterConfig::new(ClockRootId(0).into()));
        assert!(reg.is_register());
        assert!(!reg.is_clock_source());

        let icg = CellKind::ClockGate {
            clock: ClockRootId(0).into(),
            enable: SignalId(0),
        };
        assert!(icg.is_clock_source());
        assert!(!icg.is_register());

        let buf = CellKind::ClockBuffer {
            clock: ClockRootId(0).into(),
        };
        assert!(buf.is_clock_source());
        assert_eq!(buf.clock(), ClockInput::Root(ClockRootId(0)));
    }
}
