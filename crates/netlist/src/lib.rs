//! A gate-level-lite netlist model for clock-gating power analysis.
//!
//! This crate is the structural substrate for reproducing Kufel et al.,
//! *Clock-Modulation Based Watermark for Protection of Embedded Processors*
//! (DATE 2014). It models exactly the circuit elements the paper's power
//! argument rests on:
//!
//! - **registers** (D flip-flops with optional synchronous enables), whose
//!   embedded clock buffers dominate dynamic power,
//! - **integrated clock-gating cells (ICGs)**, whose enable inputs the
//!   proposed watermark modulates,
//! - **clock buffers** arranged in synthesized clock trees, and
//! - **combinational signals** (AND/OR/XOR/NOT over register outputs and
//!   external stimuli) used to build watermark generation circuits
//!   structurally.
//!
//! The model is deliberately cycle-oriented rather than event-driven: the
//! watermark detection technique (correlation power analysis) consumes one
//! averaged power value per clock cycle, so per-cycle activity is the right
//! fidelity level.
//!
//! # Example: a clock-gated register word
//!
//! ```
//! # fn main() -> Result<(), clockmark_netlist::NetlistError> {
//! use clockmark_netlist::{DataSource, Netlist, RegisterConfig, SignalExpr};
//!
//! let mut netlist = Netlist::new();
//! let clk = netlist.add_clock_root("clk");
//! let group = netlist.add_group("watermark");
//!
//! // WMARK is an externally driven control signal (the WGC output).
//! let wmark = netlist.add_signal("wmark", SignalExpr::External)?;
//! let icg = netlist.add_icg(group, clk.into(), wmark)?;
//!
//! // A 32-bit word clocked through the ICG; data toggles when clocked.
//! for _ in 0..32 {
//!     netlist.add_register(
//!         group,
//!         RegisterConfig::new(icg.into()).data(DataSource::Toggle),
//!     )?;
//! }
//!
//! netlist.validate()?;
//! assert_eq!(netlist.register_count(), 32);
//! assert_eq!(netlist.icg_count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod cell;
mod clock_tree;
mod error;
mod id;
mod netlist;
mod query;

pub use area::{AreaBreakdown, CellAreaLibrary};
pub use cell::{Cell, CellKind, ClockInput, DataSource, RegisterConfig, SignalExpr};
pub use clock_tree::ClockTree;
pub use error::NetlistError;
pub use id::{CellId, ClockRootId, GroupId, SignalId};
pub use netlist::{Netlist, SignalDecl};
pub use query::{InfluenceReport, SignalConsumer};
