use crate::{
    Cell, CellId, CellKind, ClockInput, ClockRootId, DataSource, GroupId, NetlistError,
    RegisterConfig, SignalExpr, SignalId,
};

/// A declared combinational signal: name plus expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignalDecl {
    /// Diagnostic name of the signal.
    pub name: String,
    /// The expression that drives it.
    pub expr: SignalExpr,
}

/// An in-memory netlist of clocked cells and combinational signals.
///
/// The netlist is an append-only arena: ids are dense indices handed out in
/// insertion order. Construction methods validate references eagerly, and
/// [`validate`](Netlist::validate) performs whole-netlist checks (acyclic
/// clock network, acyclic signal network).
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    cells: Vec<Cell>,
    signals: Vec<SignalDecl>,
    clock_roots: Vec<String>,
    groups: Vec<String>,
}

impl Netlist {
    /// Creates an empty netlist containing only the implicit
    /// [`GroupId::TOP`] group.
    pub fn new() -> Self {
        Netlist {
            cells: Vec::new(),
            signals: Vec::new(),
            clock_roots: Vec::new(),
            groups: vec!["top".to_owned()],
        }
    }

    // ---------------------------------------------------------------- roots

    /// Declares a top-level clock source.
    pub fn add_clock_root(&mut self, name: &str) -> ClockRootId {
        self.clock_roots.push(name.to_owned());
        ClockRootId(self.clock_roots.len() as u32 - 1)
    }

    /// Number of declared clock roots.
    pub fn clock_root_count(&self) -> usize {
        self.clock_roots.len()
    }

    /// The diagnostic name of a clock root, if it exists.
    pub fn clock_root_name(&self, root: ClockRootId) -> Option<&str> {
        self.clock_roots.get(root.index()).map(String::as_str)
    }

    // --------------------------------------------------------------- groups

    /// Declares a named accounting group and returns its id.
    pub fn add_group(&mut self, name: &str) -> GroupId {
        self.groups.push(name.to_owned());
        GroupId(self.groups.len() as u32 - 1)
    }

    /// Looks up a group by name.
    pub fn group(&self, name: &str) -> Option<GroupId> {
        self.groups
            .iter()
            .position(|g| g == name)
            .map(|i| GroupId(i as u32))
    }

    /// The name of a group, if it exists.
    pub fn group_name(&self, group: GroupId) -> Option<&str> {
        self.groups.get(group.index()).map(String::as_str)
    }

    /// Number of declared groups (including the implicit top group).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    // -------------------------------------------------------------- signals

    /// Declares a combinational signal.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`], [`NetlistError::UnknownCell`]
    /// or [`NetlistError::NotARegister`] when the expression references
    /// something that does not exist yet. Forward references are not
    /// allowed, which also guarantees the signal network is acyclic by
    /// construction.
    pub fn add_signal(&mut self, name: &str, expr: SignalExpr) -> Result<SignalId, NetlistError> {
        self.check_signal_expr(expr)?;
        self.signals.push(SignalDecl {
            name: name.to_owned(),
            expr,
        });
        Ok(SignalId(self.signals.len() as u32 - 1))
    }

    fn check_signal_expr(&self, expr: SignalExpr) -> Result<(), NetlistError> {
        let check_sig = |sig: SignalId| {
            if sig.index() < self.signals.len() {
                Ok(())
            } else {
                Err(NetlistError::UnknownSignal { signal: sig })
            }
        };
        match expr {
            SignalExpr::Const(_) | SignalExpr::External => Ok(()),
            SignalExpr::RegOutput(cell) => {
                let c = self.cell(cell)?;
                if c.kind.is_register() {
                    Ok(())
                } else {
                    Err(NetlistError::NotARegister { cell })
                }
            }
            SignalExpr::And(a, b) | SignalExpr::Or(a, b) | SignalExpr::Xor(a, b) => {
                check_sig(a)?;
                check_sig(b)
            }
            SignalExpr::Not(a) => check_sig(a),
        }
    }

    /// The declaration of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] for a dangling id.
    pub fn signal(&self, signal: SignalId) -> Result<&SignalDecl, NetlistError> {
        self.signals
            .get(signal.index())
            .ok_or(NetlistError::UnknownSignal { signal })
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Iterates over `(id, declaration)` pairs of all signals.
    pub fn signals(&self) -> impl Iterator<Item = (SignalId, &SignalDecl)> {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i as u32), s))
    }

    // ---------------------------------------------------------------- cells

    fn push_cell(&mut self, cell: Cell) -> CellId {
        self.cells.push(cell);
        CellId(self.cells.len() as u32 - 1)
    }

    fn check_group(&self, group: GroupId) -> Result<(), NetlistError> {
        if group.index() < self.groups.len() {
            Ok(())
        } else {
            Err(NetlistError::UnknownGroup)
        }
    }

    fn check_clock_input(&self, clock: ClockInput) -> Result<(), NetlistError> {
        match clock {
            ClockInput::Root(root) => {
                if root.index() < self.clock_roots.len() {
                    Ok(())
                } else {
                    Err(NetlistError::UnknownClockRoot)
                }
            }
            ClockInput::Cell(cell) => {
                let c = self.cell(cell)?;
                if c.kind.is_clock_source() {
                    Ok(())
                } else {
                    Err(NetlistError::NotAClockSource { cell })
                }
            }
        }
    }

    /// Adds a clock-tree buffer driven by `clock`.
    ///
    /// # Errors
    ///
    /// Returns an error when `group` or `clock` dangles, or when `clock`
    /// points at a cell that cannot source a clock.
    pub fn add_buffer(
        &mut self,
        group: GroupId,
        clock: ClockInput,
    ) -> Result<CellId, NetlistError> {
        self.check_group(group)?;
        self.check_clock_input(clock)?;
        Ok(self.push_cell(Cell {
            kind: CellKind::ClockBuffer { clock },
            group,
            name: None,
        }))
    }

    /// Adds an integrated clock-gating cell whose output clock follows
    /// `clock` while `enable` is high.
    ///
    /// # Errors
    ///
    /// Returns an error when `group`, `clock` or `enable` dangles, or when
    /// `clock` points at a cell that cannot source a clock.
    pub fn add_icg(
        &mut self,
        group: GroupId,
        clock: ClockInput,
        enable: SignalId,
    ) -> Result<CellId, NetlistError> {
        self.check_group(group)?;
        self.check_clock_input(clock)?;
        if enable.index() >= self.signals.len() {
            return Err(NetlistError::UnknownSignal { signal: enable });
        }
        Ok(self.push_cell(Cell {
            kind: CellKind::ClockGate { clock, enable },
            group,
            name: None,
        }))
    }

    /// Adds a register described by `config`.
    ///
    /// # Errors
    ///
    /// Returns an error when any reference in the configuration dangles,
    /// when the clock input is not a clock source, or when a
    /// [`DataSource::ShiftFrom`] points at a non-register cell.
    pub fn add_register(
        &mut self,
        group: GroupId,
        config: RegisterConfig,
    ) -> Result<CellId, NetlistError> {
        self.check_group(group)?;
        self.check_clock_input(config.clock)?;
        match config.data {
            DataSource::ShiftFrom(cell) => {
                let c = self.cell(cell)?;
                if !c.kind.is_register() {
                    return Err(NetlistError::NotARegister { cell });
                }
            }
            DataSource::Signal(signal) => {
                if signal.index() >= self.signals.len() {
                    return Err(NetlistError::UnknownSignal { signal });
                }
            }
            DataSource::Constant(_) | DataSource::Toggle | DataSource::Hold => {}
        }
        if let Some(enable) = config.sync_enable {
            if enable.index() >= self.signals.len() {
                return Err(NetlistError::UnknownSignal { signal: enable });
            }
        }
        Ok(self.push_cell(Cell {
            kind: CellKind::Register(config),
            group,
            name: None,
        }))
    }

    /// Retargets the data input of an existing register.
    ///
    /// Data paths through registers are sequential, so cycles (e.g. the
    /// feedback of a circular shift register or an LFSR) are legal; this
    /// method exists precisely to close such loops after all registers of a
    /// chain have been declared.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] / [`NetlistError::NotARegister`]
    /// when `cell` is not a register, and validates the new `data` source
    /// like [`add_register`](Netlist::add_register) does.
    pub fn set_register_data(
        &mut self,
        cell: CellId,
        data: DataSource,
    ) -> Result<(), NetlistError> {
        match data {
            DataSource::ShiftFrom(src) => {
                let c = self.cell(src)?;
                if !c.kind.is_register() {
                    return Err(NetlistError::NotARegister { cell: src });
                }
            }
            DataSource::Signal(signal) => {
                if signal.index() >= self.signals.len() {
                    return Err(NetlistError::UnknownSignal { signal });
                }
            }
            DataSource::Constant(_) | DataSource::Toggle | DataSource::Hold => {}
        }
        let slot = self
            .cells
            .get_mut(cell.index())
            .ok_or(NetlistError::UnknownCell { cell })?;
        match &mut slot.kind {
            CellKind::Register(config) => {
                config.data = data;
                Ok(())
            }
            _ => Err(NetlistError::NotARegister { cell }),
        }
    }

    /// Retargets the enable input of an existing clock-gating cell.
    ///
    /// This is the watermark-insertion edit of the paper's Fig. 1(b): the
    /// original enable `CLK_CTRL` of an IP block's clock gate is replaced
    /// with `CLK_CTRL AND WMARK`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for a dangling cell,
    /// [`NetlistError::UnknownSignal`] for a dangling signal, and
    /// [`NetlistError::NotAClockSource`] when `cell` is not a clock gate.
    pub fn set_icg_enable(&mut self, cell: CellId, enable: SignalId) -> Result<(), NetlistError> {
        if enable.index() >= self.signals.len() {
            return Err(NetlistError::UnknownSignal { signal: enable });
        }
        let slot = self
            .cells
            .get_mut(cell.index())
            .ok_or(NetlistError::UnknownCell { cell })?;
        match &mut slot.kind {
            CellKind::ClockGate { enable: e, .. } => {
                *e = enable;
                Ok(())
            }
            _ => Err(NetlistError::NotAClockSource { cell }),
        }
    }

    /// Assigns a diagnostic name to a cell.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for a dangling id.
    pub fn name_cell(&mut self, cell: CellId, name: &str) -> Result<(), NetlistError> {
        let slot = self
            .cells
            .get_mut(cell.index())
            .ok_or(NetlistError::UnknownCell { cell })?;
        slot.name = Some(name.to_owned());
        Ok(())
    }

    /// The cell stored under `cell`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for a dangling id.
    pub fn cell(&self, cell: CellId) -> Result<&Cell, NetlistError> {
        self.cells
            .get(cell.index())
            .ok_or(NetlistError::UnknownCell { cell })
    }

    /// Iterates over `(id, cell)` pairs of all cells.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Total number of cells of any kind.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of register cells.
    pub fn register_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind.is_register()).count()
    }

    /// Number of integrated clock-gating cells.
    pub fn icg_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::ClockGate { .. }))
            .count()
    }

    /// Number of clock-tree buffer cells.
    pub fn buffer_count(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::ClockBuffer { .. }))
            .count()
    }

    /// Number of register cells belonging to `group`.
    pub fn register_count_in_group(&self, group: GroupId) -> usize {
        self.cells
            .iter()
            .filter(|c| c.group == group && c.kind.is_register())
            .count()
    }

    /// Ids of all cells belonging to `group`.
    pub fn cells_in_group(&self, group: GroupId) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| c.group == group)
            .map(|(id, _)| id)
            .collect()
    }

    // ----------------------------------------------------------- clock path

    /// The chain of clock-source cells between `cell` and its clock root,
    /// nearest driver first.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for a dangling id or
    /// [`NetlistError::ClockCycle`] if the clock network loops.
    pub fn clock_path(&self, cell: CellId) -> Result<Vec<CellId>, NetlistError> {
        let mut path = Vec::new();
        let mut current = self.cell(cell)?.kind.clock();
        while let ClockInput::Cell(driver) = current {
            if path.contains(&driver) || driver == cell {
                return Err(NetlistError::ClockCycle { at: driver });
            }
            path.push(driver);
            current = self.cell(driver)?.kind.clock();
        }
        Ok(path)
    }

    /// The clock root ultimately driving `cell`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for a dangling id or
    /// [`NetlistError::ClockCycle`] if the clock network loops.
    pub fn clock_root_of(&self, cell: CellId) -> Result<ClockRootId, NetlistError> {
        let mut seen = Vec::new();
        let mut current = self.cell(cell)?.kind.clock();
        loop {
            match current {
                ClockInput::Root(root) => return Ok(root),
                ClockInput::Cell(driver) => {
                    if seen.contains(&driver) || driver == cell {
                        return Err(NetlistError::ClockCycle { at: driver });
                    }
                    seen.push(driver);
                    current = self.cell(driver)?.kind.clock();
                }
            }
        }
    }

    // ------------------------------------------------------------- validate

    /// Performs whole-netlist consistency checks.
    ///
    /// Verifies that every cell's clock resolves to a root without cycles.
    /// (Signal acyclicity and reference validity are already guaranteed by
    /// the eager checks in the builder methods.)
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, _) in self.cells() {
            self.clock_root_of(id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_netlist() -> (Netlist, ClockRootId) {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        (n, clk)
    }

    #[test]
    fn empty_netlist_has_top_group_only() {
        let n = Netlist::new();
        assert_eq!(n.group_count(), 1);
        assert_eq!(n.group("top"), Some(GroupId::TOP));
        assert_eq!(n.cell_count(), 0);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn builder_rejects_dangling_references() {
        let (mut n, clk) = simple_netlist();
        // Unknown group.
        let bad_group = GroupId(99);
        assert_eq!(
            n.add_buffer(bad_group, clk.into()).unwrap_err(),
            NetlistError::UnknownGroup
        );
        // Unknown clock root.
        let bad_root = ClockRootId(9);
        assert_eq!(
            n.add_buffer(GroupId::TOP, bad_root.into()).unwrap_err(),
            NetlistError::UnknownClockRoot
        );
        // ICG with unknown enable.
        assert!(matches!(
            n.add_icg(GroupId::TOP, clk.into(), SignalId(0))
                .unwrap_err(),
            NetlistError::UnknownSignal { .. }
        ));
    }

    #[test]
    fn register_cannot_clock_other_cells() {
        let (mut n, clk) = simple_netlist();
        let reg = n
            .add_register(GroupId::TOP, RegisterConfig::new(clk.into()))
            .expect("valid register");
        let err = n.add_buffer(GroupId::TOP, reg.into()).unwrap_err();
        assert_eq!(err, NetlistError::NotAClockSource { cell: reg });
    }

    #[test]
    fn shift_from_requires_register() {
        let (mut n, clk) = simple_netlist();
        let buf = n
            .add_buffer(GroupId::TOP, clk.into())
            .expect("valid buffer");
        let err = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::ShiftFrom(buf)),
            )
            .unwrap_err();
        assert_eq!(err, NetlistError::NotARegister { cell: buf });
    }

    #[test]
    fn signal_expressions_cannot_forward_reference() {
        let (mut n, _clk) = simple_netlist();
        let err = n
            .add_signal("bad", SignalExpr::Not(SignalId(5)))
            .unwrap_err();
        assert!(matches!(err, NetlistError::UnknownSignal { .. }));
    }

    #[test]
    fn reg_output_signal_requires_register() {
        let (mut n, clk) = simple_netlist();
        let buf = n
            .add_buffer(GroupId::TOP, clk.into())
            .expect("valid buffer");
        let err = n.add_signal("q", SignalExpr::RegOutput(buf)).unwrap_err();
        assert_eq!(err, NetlistError::NotARegister { cell: buf });
    }

    #[test]
    fn clock_path_walks_through_gates_and_buffers() {
        let (mut n, clk) = simple_netlist();
        let en = n
            .add_signal("en", SignalExpr::Const(true))
            .expect("valid signal");
        let buf = n.add_buffer(GroupId::TOP, clk.into()).expect("buffer");
        let icg = n.add_icg(GroupId::TOP, buf.into(), en).expect("icg");
        let reg = n
            .add_register(GroupId::TOP, RegisterConfig::new(icg.into()))
            .expect("register");

        assert_eq!(n.clock_path(reg).expect("path"), vec![icg, buf]);
        assert_eq!(n.clock_root_of(reg).expect("root"), clk);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn counts_split_by_kind_and_group() {
        let (mut n, clk) = simple_netlist();
        let wm = n.add_group("watermark");
        let en = n.add_signal("en", SignalExpr::External).expect("signal");
        n.add_buffer(GroupId::TOP, clk.into()).expect("buffer");
        n.add_icg(wm, clk.into(), en).expect("icg");
        for _ in 0..5 {
            n.add_register(wm, RegisterConfig::new(clk.into()))
                .expect("register");
        }
        for _ in 0..3 {
            n.add_register(GroupId::TOP, RegisterConfig::new(clk.into()))
                .expect("register");
        }
        assert_eq!(n.register_count(), 8);
        assert_eq!(n.register_count_in_group(wm), 5);
        assert_eq!(n.register_count_in_group(GroupId::TOP), 3);
        assert_eq!(n.icg_count(), 1);
        assert_eq!(n.buffer_count(), 1);
        assert_eq!(n.cells_in_group(wm).len(), 6);
    }

    #[test]
    fn set_register_data_closes_circular_chains() {
        let (mut n, clk) = simple_netlist();
        let head = n
            .add_register(GroupId::TOP, RegisterConfig::new(clk.into()).init(true))
            .expect("head");
        let tail = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::ShiftFrom(head)),
            )
            .expect("tail");
        n.set_register_data(head, DataSource::ShiftFrom(tail))
            .expect("retarget");
        assert!(n.validate().is_ok());

        // Non-registers are rejected both as target and as source.
        let buf = n.add_buffer(GroupId::TOP, clk.into()).expect("buffer");
        assert_eq!(
            n.set_register_data(buf, DataSource::Hold).unwrap_err(),
            NetlistError::NotARegister { cell: buf }
        );
        assert_eq!(
            n.set_register_data(head, DataSource::ShiftFrom(buf))
                .unwrap_err(),
            NetlistError::NotARegister { cell: buf }
        );
        assert!(matches!(
            n.set_register_data(head, DataSource::Signal(SignalId(7)))
                .unwrap_err(),
            NetlistError::UnknownSignal { .. }
        ));
    }

    #[test]
    fn set_icg_enable_rewires_the_gate() {
        let (mut n, clk) = simple_netlist();
        let en_a = n.add_signal("a", SignalExpr::Const(true)).expect("signal");
        let icg = n.add_icg(GroupId::TOP, clk.into(), en_a).expect("icg");
        let en_b = n.add_signal("b", SignalExpr::External).expect("signal");
        n.set_icg_enable(icg, en_b).expect("retarget");
        match n.cell(icg).expect("known").kind {
            CellKind::ClockGate { enable, .. } => assert_eq!(enable, en_b),
            _ => panic!("not a clock gate"),
        }

        // Invalid targets are rejected.
        let reg = n
            .add_register(GroupId::TOP, RegisterConfig::new(clk.into()))
            .expect("register");
        assert_eq!(
            n.set_icg_enable(reg, en_b).unwrap_err(),
            NetlistError::NotAClockSource { cell: reg }
        );
        assert!(matches!(
            n.set_icg_enable(icg, SignalId(99)).unwrap_err(),
            NetlistError::UnknownSignal { .. }
        ));
    }

    #[test]
    fn name_cell_round_trips() {
        let (mut n, clk) = simple_netlist();
        let reg = n
            .add_register(GroupId::TOP, RegisterConfig::new(clk.into()))
            .expect("register");
        n.name_cell(reg, "wgc_bit0").expect("known cell");
        assert_eq!(
            n.cell(reg).expect("known").name.as_deref(),
            Some("wgc_bit0")
        );
        assert!(n.name_cell(CellId(42), "x").is_err());
    }
}
