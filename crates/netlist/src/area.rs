//! Physical area estimation.
//!
//! The paper's Section V quantifies overhead in *registers*; real
//! sign-off quantifies it in µm². This module prices a netlist with
//! typical 65 nm low-power standard-cell footprints so the area columns of
//! the tables can also be reported in silicon terms.

use crate::{CellKind, GroupId, Netlist};

/// Per-cell footprints of a standard-cell library, in µm².
///
/// The `tsmc65_typical` values are representative of a 65 nm low-power
/// 9-track library: a D flip-flop around 5.2 µm², an integrated clock-gate
/// cell around 3.6 µm², a mid-drive clock buffer around 1.1 µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellAreaLibrary {
    /// One D flip-flop.
    pub register_um2: f64,
    /// One integrated clock-gating cell.
    pub icg_um2: f64,
    /// One clock-tree buffer.
    pub buffer_um2: f64,
}

impl CellAreaLibrary {
    /// Representative 65 nm low-power footprints.
    pub fn tsmc65_typical() -> Self {
        CellAreaLibrary {
            register_um2: 5.2,
            icg_um2: 3.6,
            buffer_um2: 1.1,
        }
    }
}

impl Default for CellAreaLibrary {
    fn default() -> Self {
        Self::tsmc65_typical()
    }
}

/// An area roll-up of (part of) a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Register cells counted.
    pub registers: usize,
    /// Clock-gate cells counted.
    pub icgs: usize,
    /// Clock-buffer cells counted.
    pub buffers: usize,
    /// Total area in µm².
    pub total_um2: f64,
}

impl std::fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} um2 ({} registers, {} clock gates, {} buffers)",
            self.total_um2, self.registers, self.icgs, self.buffers
        )
    }
}

impl Netlist {
    /// Prices the whole netlist with a cell-area library.
    pub fn area(&self, library: &CellAreaLibrary) -> AreaBreakdown {
        self.area_where(library, |_| true)
    }

    /// Prices one group only.
    pub fn group_area(&self, group: GroupId, library: &CellAreaLibrary) -> AreaBreakdown {
        self.area_where(library, |g| g == group)
    }

    fn area_where(
        &self,
        library: &CellAreaLibrary,
        include: impl Fn(GroupId) -> bool,
    ) -> AreaBreakdown {
        let mut breakdown = AreaBreakdown::default();
        for (_, cell) in self.cells() {
            if !include(cell.group) {
                continue;
            }
            match cell.kind {
                CellKind::Register(_) => {
                    breakdown.registers += 1;
                    breakdown.total_um2 += library.register_um2;
                }
                CellKind::ClockGate { .. } => {
                    breakdown.icgs += 1;
                    breakdown.total_um2 += library.icg_um2;
                }
                CellKind::ClockBuffer { .. } => {
                    breakdown.buffers += 1;
                    breakdown.total_um2 += library.buffer_um2;
                }
            }
        }
        breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegisterConfig, SignalExpr};

    #[test]
    fn area_sums_per_cell_kind() {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        let wm = n.add_group("watermark");
        let en = n.add_signal("en", SignalExpr::Const(true)).expect("signal");
        n.add_buffer(GroupId::TOP, clk.into()).expect("buffer");
        n.add_icg(wm, clk.into(), en).expect("icg");
        for _ in 0..10 {
            n.add_register(wm, RegisterConfig::new(clk.into()))
                .expect("register");
        }

        let lib = CellAreaLibrary::tsmc65_typical();
        let all = n.area(&lib);
        assert_eq!(all.registers, 10);
        assert_eq!(all.icgs, 1);
        assert_eq!(all.buffers, 1);
        let expected = 10.0 * lib.register_um2 + lib.icg_um2 + lib.buffer_um2;
        assert!((all.total_um2 - expected).abs() < 1e-9);

        let group = n.group_area(wm, &lib);
        assert_eq!(group.registers, 10);
        assert_eq!(group.buffers, 0);
        assert!((group.total_um2 - (10.0 * lib.register_um2 + lib.icg_um2)).abs() < 1e-9);
        assert!(group.to_string().contains("10 registers"));
    }

    #[test]
    fn empty_netlist_has_zero_area() {
        let n = Netlist::new();
        let area = n.area(&CellAreaLibrary::default());
        assert_eq!(area, AreaBreakdown::default());
    }
}
