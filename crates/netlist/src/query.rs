//! Structural queries over a netlist.
//!
//! Section VI of the paper argues robustness structurally: the
//! state-of-the-art load circuit is a *stand-alone* block (nothing in the
//! system consumes its outputs), so an attacker reading the RTL can excise
//! it without functional impact; the clock-modulation watermark instead
//! weaves its generator into the clock enables of functional logic, so
//! removal impairs the system. These queries make that argument computable.

use crate::{
    CellId, CellKind, ClockInput, DataSource, Netlist, NetlistError, SignalExpr, SignalId,
};
use std::collections::{HashSet, VecDeque};

/// Something that consumes the value of a combinational signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalConsumer {
    /// The enable pin of a clock-gating cell.
    IcgEnable(CellId),
    /// The data input of a register.
    RegisterData(CellId),
    /// The synchronous-enable input of a register.
    RegisterSyncEnable(CellId),
    /// Another signal's expression.
    Signal(SignalId),
}

/// The influence footprint of a set of cells on the rest of the design.
///
/// Produced by [`influence_of`](crate::Netlist::influence_of); consumed by
/// the removal-attack analysis in the `clockmark` crate.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InfluenceReport {
    /// Registers *outside* the set whose data depends (through any signal
    /// chain) on a register inside the set.
    pub data_dependents: Vec<CellId>,
    /// Registers *outside* the set whose clock passes through an ICG whose
    /// enable depends on a register inside the set.
    pub clock_dependents: Vec<CellId>,
    /// Registers *outside* the set clocked through a buffer or ICG that is
    /// itself inside the set (removing the set removes their clock).
    pub clocked_through_set: Vec<CellId>,
}

impl InfluenceReport {
    /// Whether the set is a stand-alone subcircuit: removing it cannot
    /// change the behaviour of any register outside the set.
    pub fn is_standalone(&self) -> bool {
        self.data_dependents.is_empty()
            && self.clock_dependents.is_empty()
            && self.clocked_through_set.is_empty()
    }

    /// Total number of outside registers affected by removal.
    pub fn affected_register_count(&self) -> usize {
        let mut all: HashSet<CellId> = HashSet::new();
        all.extend(&self.data_dependents);
        all.extend(&self.clock_dependents);
        all.extend(&self.clocked_through_set);
        all.len()
    }
}

impl Netlist {
    /// All consumers of a signal's value.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] for a dangling id.
    pub fn signal_consumers(&self, signal: SignalId) -> Result<Vec<SignalConsumer>, NetlistError> {
        self.signal(signal)?;
        let mut consumers = Vec::new();
        for (id, cell) in self.cells() {
            match cell.kind {
                CellKind::ClockGate { enable, .. } if enable == signal => {
                    consumers.push(SignalConsumer::IcgEnable(id));
                }
                CellKind::Register(config) => {
                    if config.data == DataSource::Signal(signal) {
                        consumers.push(SignalConsumer::RegisterData(id));
                    }
                    if config.sync_enable == Some(signal) {
                        consumers.push(SignalConsumer::RegisterSyncEnable(id));
                    }
                }
                _ => {}
            }
        }
        for (id, decl) in self.signals() {
            let refs = match decl.expr {
                SignalExpr::And(a, b) | SignalExpr::Or(a, b) | SignalExpr::Xor(a, b) => {
                    a == signal || b == signal
                }
                SignalExpr::Not(a) => a == signal,
                _ => false,
            };
            if refs {
                consumers.push(SignalConsumer::Signal(id));
            }
        }
        Ok(consumers)
    }

    /// The registers whose output feeds a signal, directly or through the
    /// signal DAG.
    fn signal_register_support(&self, signal: SignalId) -> Result<HashSet<CellId>, NetlistError> {
        let mut support = HashSet::new();
        let mut queue = VecDeque::from([signal]);
        let mut seen = HashSet::new();
        while let Some(sig) = queue.pop_front() {
            if !seen.insert(sig) {
                continue;
            }
            match self.signal(sig)?.expr {
                SignalExpr::RegOutput(cell) => {
                    support.insert(cell);
                }
                SignalExpr::And(a, b) | SignalExpr::Or(a, b) | SignalExpr::Xor(a, b) => {
                    queue.push_back(a);
                    queue.push_back(b);
                }
                SignalExpr::Not(a) => queue.push_back(a),
                SignalExpr::Const(_) | SignalExpr::External => {}
            }
        }
        Ok(support)
    }

    /// Registers clocked through `source` (an ICG or buffer), directly or
    /// through further tree cells.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for a dangling id.
    pub fn clock_sinks_of(&self, source: CellId) -> Result<Vec<CellId>, NetlistError> {
        self.cell(source)?;
        let mut sinks = Vec::new();
        for (id, cell) in self.cells() {
            if !cell.kind.is_register() {
                continue;
            }
            if self.clock_path(id)?.contains(&source) {
                sinks.push(id);
            }
        }
        Ok(sinks)
    }

    /// Computes the influence footprint of `set` on the rest of the design.
    ///
    /// This answers the removal-attack question: if an attacker deletes
    /// exactly these cells from the RTL, which registers outside the set
    /// change behaviour (data, clock enable or lost clock)?
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if the set references cells not
    /// in the netlist.
    pub fn influence_of(&self, set: &HashSet<CellId>) -> Result<InfluenceReport, NetlistError> {
        for &cell in set {
            self.cell(cell)?;
        }
        let mut report = InfluenceReport::default();

        for (id, cell) in self.cells() {
            if set.contains(&id) {
                continue;
            }
            let CellKind::Register(config) = cell.kind else {
                continue;
            };

            // Lost clock: any tree cell on the clock path inside the set.
            let path = self.clock_path(id)?;
            if path.iter().any(|c| set.contains(c)) {
                report.clocked_through_set.push(id);
            } else {
                // Gated by an enable computed from in-set registers.
                let mut gated = false;
                for tree_cell in &path {
                    if let CellKind::ClockGate { enable, .. } = self.cell(*tree_cell)?.kind {
                        let support = self.signal_register_support(enable)?;
                        if support.iter().any(|c| set.contains(c)) {
                            gated = true;
                            break;
                        }
                    }
                }
                if gated {
                    report.clock_dependents.push(id);
                }
            }

            // Data dependence on in-set registers.
            let data_depends = match config.data {
                DataSource::ShiftFrom(src) => set.contains(&src),
                DataSource::Signal(sig) => self
                    .signal_register_support(sig)?
                    .iter()
                    .any(|c| set.contains(c)),
                _ => false,
            };
            let enable_depends = match config.sync_enable {
                Some(sig) => self
                    .signal_register_support(sig)?
                    .iter()
                    .any(|c| set.contains(c)),
                None => false,
            };
            if data_depends || enable_depends {
                report.data_dependents.push(id);
            }
        }
        Ok(report)
    }

    /// Convenience: influence footprint of a whole group.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`influence_of`](Netlist::influence_of).
    pub fn influence_of_group(
        &self,
        group: crate::GroupId,
    ) -> Result<InfluenceReport, NetlistError> {
        let set: HashSet<CellId> = self.cells_in_group(group).into_iter().collect();
        self.influence_of(&set)
    }

    /// The direct fanout of a clock source cell: cells clocked immediately
    /// by it.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for a dangling id.
    pub fn direct_clock_fanout(&self, source: CellId) -> Result<Vec<CellId>, NetlistError> {
        self.cell(source)?;
        Ok(self
            .cells()
            .filter(|(_, c)| c.kind.clock() == ClockInput::Cell(source))
            .map(|(id, _)| id)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroupId, RegisterConfig};

    /// A load-circuit-style embedding: a shift chain nothing else reads.
    fn standalone_load_circuit() -> (Netlist, HashSet<CellId>) {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        let wm = n.add_group("watermark");

        // System register, untouched by the watermark.
        n.add_register(
            GroupId::TOP,
            RegisterConfig::new(clk.into()).data(DataSource::Toggle),
        )
        .expect("system register");

        // 4-stage circular shift chain in the watermark group.
        let head = n
            .add_register(wm, RegisterConfig::new(clk.into()).init(true))
            .expect("head");
        let mut prev = head;
        let mut set = HashSet::from([head]);
        for i in 0..3 {
            let reg = n
                .add_register(
                    wm,
                    RegisterConfig::new(clk.into())
                        .data(DataSource::ShiftFrom(prev))
                        .init(i % 2 == 1),
                )
                .expect("stage");
            set.insert(reg);
            prev = reg;
        }
        (n, set)
    }

    #[test]
    fn load_circuit_is_standalone() {
        let (n, set) = standalone_load_circuit();
        let report = n.influence_of(&set).expect("valid set");
        assert!(report.is_standalone());
        assert_eq!(report.affected_register_count(), 0);
    }

    #[test]
    fn clock_modulated_ip_is_not_standalone() {
        // WGC register output drives the ICG enable of a functional block:
        // removing the WGC de-clocks the block.
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        let wm = n.add_group("wgc");

        let wgc_reg = n
            .add_register(
                wm,
                RegisterConfig::new(clk.into())
                    .data(DataSource::Toggle)
                    .init(true),
            )
            .expect("wgc register");
        let wmark = n
            .add_signal("wmark", SignalExpr::RegOutput(wgc_reg))
            .expect("signal");
        let icg = n.add_icg(GroupId::TOP, clk.into(), wmark).expect("icg");
        let ip_reg = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(icg.into()).data(DataSource::Toggle),
            )
            .expect("ip register");

        let set = HashSet::from([wgc_reg]);
        let report = n.influence_of(&set).expect("valid set");
        assert!(!report.is_standalone());
        assert_eq!(report.clock_dependents, vec![ip_reg]);
        assert_eq!(report.affected_register_count(), 1);
    }

    #[test]
    fn removing_a_tree_cell_declocks_downstream_registers() {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        let buf = n.add_buffer(GroupId::TOP, clk.into()).expect("buffer");
        let reg = n
            .add_register(GroupId::TOP, RegisterConfig::new(buf.into()))
            .expect("register");

        let set = HashSet::from([buf]);
        let report = n.influence_of(&set).expect("valid set");
        assert_eq!(report.clocked_through_set, vec![reg]);
        assert!(!report.is_standalone());
    }

    #[test]
    fn data_dependents_follow_signal_chains() {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        let src = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::Toggle),
            )
            .expect("src");
        let q = n.add_signal("q", SignalExpr::RegOutput(src)).expect("q");
        let nq = n.add_signal("nq", SignalExpr::Not(q)).expect("nq");
        let dst = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::Signal(nq)),
            )
            .expect("dst");

        let report = n.influence_of(&HashSet::from([src])).expect("valid");
        assert_eq!(report.data_dependents, vec![dst]);
    }

    #[test]
    fn signal_consumers_enumerates_all_consumer_kinds() {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        let sig = n.add_signal("s", SignalExpr::External).expect("s");
        let icg = n.add_icg(GroupId::TOP, clk.into(), sig).expect("icg");
        let reg_data = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::Signal(sig)),
            )
            .expect("reg");
        let reg_en = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).sync_enable(sig),
            )
            .expect("reg");
        let derived = n.add_signal("d", SignalExpr::Not(sig)).expect("d");

        let consumers = n.signal_consumers(sig).expect("known signal");
        assert!(consumers.contains(&SignalConsumer::IcgEnable(icg)));
        assert!(consumers.contains(&SignalConsumer::RegisterData(reg_data)));
        assert!(consumers.contains(&SignalConsumer::RegisterSyncEnable(reg_en)));
        assert!(consumers.contains(&SignalConsumer::Signal(derived)));
        assert_eq!(consumers.len(), 4);
    }

    #[test]
    fn clock_sinks_walks_nested_tree() {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        let en = n.add_signal("en", SignalExpr::Const(true)).expect("en");
        let buf = n.add_buffer(GroupId::TOP, clk.into()).expect("buffer");
        let icg = n.add_icg(GroupId::TOP, buf.into(), en).expect("icg");
        let inner = n
            .add_register(GroupId::TOP, RegisterConfig::new(icg.into()))
            .expect("inner");
        let outer = n
            .add_register(GroupId::TOP, RegisterConfig::new(clk.into()))
            .expect("outer");

        let sinks = n.clock_sinks_of(buf).expect("known");
        assert_eq!(sinks, vec![inner]);
        assert!(!sinks.contains(&outer));
        assert_eq!(n.direct_clock_fanout(buf).expect("known"), vec![icg]);
    }
}
