use crate::{CellId, ClockInput, GroupId, Netlist, NetlistError};

/// A synthesized balanced clock-buffer tree.
///
/// Clock distribution consumes a large share of total dynamic power — the
/// paper cites up to 50 % — because every buffer on the tree toggles twice
/// per cycle. `ClockTree` inserts the buffer levels between a clock source
/// and a set of leaf taps with a bounded per-buffer fanout, mirroring how a
/// physical CTS tool builds the tree the watermark later modulates.
///
/// ```
/// # fn main() -> Result<(), clockmark_netlist::NetlistError> {
/// use clockmark_netlist::{ClockTree, GroupId, Netlist};
///
/// let mut netlist = Netlist::new();
/// let clk = netlist.add_clock_root("clk");
/// let tree = ClockTree::synthesize(&mut netlist, GroupId::TOP, clk.into(), 32, 4)?;
///
/// assert_eq!(tree.leaves().len(), 32);
/// // 32 leaves at fanout 4 need two more levels above them (8, then 2).
/// assert_eq!(tree.levels(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockTree {
    leaves: Vec<CellId>,
    all_buffers: Vec<CellId>,
    levels: usize,
}

impl ClockTree {
    /// Builds a balanced buffer tree under `source` with `n_leaves` leaf
    /// buffers, each internal buffer driving at most `max_fanout` children.
    ///
    /// All inserted buffers are placed in `group`. Returned leaves can be
    /// used as [`ClockInput::Cell`] for registers or further clock gates.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidTreeShape`] when `n_leaves` is zero or
    /// `max_fanout < 2`, and propagates reference errors from the netlist.
    pub fn synthesize(
        netlist: &mut Netlist,
        group: GroupId,
        source: ClockInput,
        n_leaves: usize,
        max_fanout: usize,
    ) -> Result<Self, NetlistError> {
        if n_leaves == 0 || max_fanout < 2 {
            return Err(NetlistError::InvalidTreeShape);
        }

        let mut all_buffers = Vec::new();
        let mut levels = 0usize;

        // Build top-down: each level splits the demand of the level below
        // into groups of at most `max_fanout`.
        //
        // level_sizes[0] is the leaf level.
        let mut level_sizes = vec![n_leaves];
        while *level_sizes.last().expect("non-empty") > max_fanout {
            let below = *level_sizes.last().expect("non-empty");
            level_sizes.push(below.div_ceil(max_fanout));
        }

        // Insert from the root level downwards.
        let mut parents: Vec<ClockInput> = vec![source];
        for &size in level_sizes.iter().rev() {
            levels += 1;
            let mut this_level = Vec::with_capacity(size);
            for i in 0..size {
                // Distribute children over parents round-robin by block.
                let parent = parents[i * parents.len() / size];
                let buf = netlist.add_buffer(group, parent)?;
                all_buffers.push(buf);
                this_level.push(ClockInput::Cell(buf));
            }
            parents = this_level;
        }

        let leaves = parents
            .into_iter()
            .map(|p| match p {
                ClockInput::Cell(c) => c,
                ClockInput::Root(_) => unreachable!("leaves are always buffer cells"),
            })
            .collect();

        Ok(ClockTree {
            leaves,
            all_buffers,
            levels,
        })
    }

    /// The leaf buffers, in index order. Registers tap the tree here.
    pub fn leaves(&self) -> &[CellId] {
        &self.leaves
    }

    /// Every buffer inserted by the synthesis, root level first.
    pub fn buffers(&self) -> &[CellId] {
        &self.all_buffers
    }

    /// Number of buffer levels inserted (≥ 1).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The leaf buffer a given sink index should use, wrapping modulo the
    /// leaf count. Convenient when assigning many registers across leaves.
    pub fn leaf_for(&self, sink_index: usize) -> CellId {
        self.leaves[sink_index % self.leaves.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn netlist_with_clock() -> (Netlist, ClockInput) {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        (n, clk.into())
    }

    #[test]
    fn degenerate_shapes_are_rejected() {
        let (mut n, clk) = netlist_with_clock();
        assert_eq!(
            ClockTree::synthesize(&mut n, GroupId::TOP, clk, 0, 4).unwrap_err(),
            NetlistError::InvalidTreeShape
        );
        assert_eq!(
            ClockTree::synthesize(&mut n, GroupId::TOP, clk, 8, 1).unwrap_err(),
            NetlistError::InvalidTreeShape
        );
    }

    #[test]
    fn single_level_when_leaves_fit_fanout() {
        let (mut n, clk) = netlist_with_clock();
        let tree = ClockTree::synthesize(&mut n, GroupId::TOP, clk, 4, 8).expect("valid");
        assert_eq!(tree.levels(), 1);
        assert_eq!(tree.leaves().len(), 4);
        assert_eq!(tree.buffers().len(), 4);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn paper_sized_tree_32_words() {
        // The test chips gate 1,024 registers as 32 words; a tree with 32
        // leaves at fanout 4 has 3 levels (2 + 8 + 32 = 42 buffers).
        let (mut n, clk) = netlist_with_clock();
        let tree = ClockTree::synthesize(&mut n, GroupId::TOP, clk, 32, 4).expect("valid");
        assert_eq!(tree.levels(), 3);
        assert_eq!(tree.leaves().len(), 32);
        assert_eq!(tree.buffers().len(), 2 + 8 + 32);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn every_leaf_reaches_the_root() {
        let (mut n, clk) = netlist_with_clock();
        let tree = ClockTree::synthesize(&mut n, GroupId::TOP, clk, 20, 3).expect("valid");
        for &leaf in tree.leaves() {
            let root = n.clock_root_of(leaf).expect("reaches root");
            assert_eq!(n.clock_root_name(root), Some("clk"));
        }
    }

    #[test]
    fn leaf_for_wraps_modulo() {
        let (mut n, clk) = netlist_with_clock();
        let tree = ClockTree::synthesize(&mut n, GroupId::TOP, clk, 4, 8).expect("valid");
        assert_eq!(tree.leaf_for(0), tree.leaves()[0]);
        assert_eq!(tree.leaf_for(5), tree.leaves()[1]);
    }

    proptest! {
        #[test]
        fn fanout_bound_holds(n_leaves in 1usize..200, max_fanout in 2usize..8) {
            let (mut n, clk) = netlist_with_clock();
            let tree = ClockTree::synthesize(&mut n, GroupId::TOP, clk, n_leaves, max_fanout)
                .expect("valid shape");
            prop_assert_eq!(tree.leaves().len(), n_leaves);

            // Count children per driver.
            let mut fanout = std::collections::HashMap::new();
            for &buf in tree.buffers() {
                let clock = n.cell(buf).expect("known").kind.clock();
                *fanout.entry(clock).or_insert(0usize) += 1;
            }
            for (driver, count) in fanout {
                if let ClockInput::Cell(_) = driver {
                    prop_assert!(count <= max_fanout,
                        "driver fans out to {count} > {max_fanout}");
                }
            }
            prop_assert!(n.validate().is_ok());
        }
    }
}
