//! Minimal FFI surface for the readiness engine: `poll(2)` plus the
//! `RLIMIT_NOFILE` pair, wrapped in safe functions.
//!
//! This mirrors the `corpus::mmap` pattern: the workspace stays
//! `deny(unsafe_code)` everywhere except two scoped `sys` modules that
//! declare a handful of libc prototypes directly (the workspace takes
//! no external dependencies, so there is no `libc` crate to lean on).
//! Everything exported from this module is safe; on non-unix targets
//! the engine falls back to the blocking accept loop and these helpers
//! degrade to no-ops.

#[cfg(unix)]
mod sys {
    #![allow(unsafe_code)]

    /// `struct pollfd` from `<poll.h>`. The layout (int fd, short
    /// events, short revents) is identical on every unix libc.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    /// Readable data (or a hangup flagged together with it).
    pub const POLLIN: i16 = 0x001;
    /// Error / hangup / invalid-fd conditions `poll` may report in
    /// `revents` even when not requested in `events`.
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    /// `RLIMIT_NOFILE` differs between the BSD and Linux numbering.
    const RLIMIT_NOFILE: i32 = if cfg!(any(
        target_os = "macos",
        target_os = "ios",
        target_os = "freebsd"
    )) {
        8
    } else {
        7
    };

    extern "C" {
        // `nfds_t` is `unsigned long` on the platforms this engine
        // targets; `usize` has the same width and ABI class there.
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    /// Polls the given descriptors, retrying on `EINTR`. Returns how
    /// many entries have a non-zero `revents`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // `#[repr(C)]` pollfd records and the kernel writes only
            // inside its `fds.len()` entries.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Raises the soft `RLIMIT_NOFILE` toward `want` (capped at the
    /// hard limit) and returns the soft limit now in effect.
    pub fn raise_nofile_limit(want: u64) -> u64 {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: plain out-parameter call; `lim` lives across it.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 0;
        }
        if lim.cur >= want {
            return lim.cur;
        }
        let raised = RLimit {
            cur: want.min(lim.max),
            max: lim.max,
        };
        // SAFETY: passes a valid, initialised rlimit by const pointer.
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            raised.cur
        } else {
            lim.cur
        }
    }
}

#[cfg(unix)]
pub(crate) use sys::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL};

/// Best-effort raise of the open-file-descriptor soft limit toward
/// `want`, returning the limit actually in effect afterwards.
///
/// The readiness engine registers one descriptor per connected session,
/// so holding thousands of idle sessions needs more than the common
/// 1024-descriptor default. Callers (tests, the `fleet_throughput`
/// bench) check the returned value and scale their session target down
/// when the hard limit refuses. On non-unix targets this is a no-op
/// that reports an effectively unlimited budget, matching the blocking
/// fallback engine used there.
#[cfg(unix)]
pub fn raise_nofile_limit(want: u64) -> u64 {
    sys::raise_nofile_limit(want)
}

/// See the unix variant; non-unix targets have no `RLIMIT_NOFILE`.
#[cfg(not(unix))]
pub fn raise_nofile_limit(_want: u64) -> u64 {
    u64::MAX
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poll_reports_readable_pipe_end() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let mut fds = [PollFd {
            fd: server.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        // Nothing written yet: a short poll must time out clean.
        assert_eq!(poll_fds(&mut fds, 10).unwrap(), 0);

        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn poll_flags_hangup_or_error() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        drop(client);

        let mut fds = [PollFd {
            fd: server.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert_ne!(fds[0].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL), 0);
    }

    #[test]
    fn nofile_limit_is_reported() {
        let now = raise_nofile_limit(64);
        assert!(now >= 64, "soft nofile limit unexpectedly tiny: {now}");
    }
}
