use std::error::Error;
use std::fmt;

use crate::protocol::ErrorCode;

/// Everything that can go wrong on either side of the wire.
///
/// The server maps the relevant variants onto wire error frames (see
/// [`ErrorCode`]); the client maps error frames back into
/// [`ServeError::Remote`] so a caller can distinguish "my request was
/// bad" from "the transport died".
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A socket operation failed.
    Io {
        /// What was being done.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The peer violated the wire protocol.
    Protocol {
        /// What was wrong with the bytes.
        message: String,
    },
    /// A frame declared a payload larger than the negotiated maximum.
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
        /// Maximum the receiver accepts.
        max: u64,
    },
    /// The server's session pool is full; retry after the hinted delay.
    Busy {
        /// Server-suggested backoff before reconnecting.
        retry_after_ms: u32,
    },
    /// The server reported a structured failure for our request.
    Remote {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Server-suggested backoff (0 when retrying is pointless).
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
    /// Correlation analysis failed server- or client-side.
    Cpa(clockmark_cpa::CpaError),
    /// Reading a corpus trace failed.
    Corpus(clockmark_corpus::CorpusError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Protocol { message } => write!(f, "protocol violation: {message}"),
            ServeError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
            ServeError::Busy { retry_after_ms } => {
                write!(f, "server busy; retry after {retry_after_ms} ms")
            }
            ServeError::Remote {
                code,
                retry_after_ms,
                message,
            } => {
                write!(f, "server error ({code:?}): {message}")?;
                if *retry_after_ms > 0 {
                    write!(f, " (retry after {retry_after_ms} ms)")?;
                }
                Ok(())
            }
            ServeError::Cpa(e) => write!(f, "cpa: {e}"),
            ServeError::Corpus(e) => write!(f, "corpus: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Cpa(e) => Some(e),
            ServeError::Corpus(e) => Some(e),
            _ => None,
        }
    }
}

impl From<clockmark_cpa::CpaError> for ServeError {
    fn from(e: clockmark_cpa::CpaError) -> Self {
        ServeError::Cpa(e)
    }
}

impl From<clockmark_corpus::CorpusError> for ServeError {
    fn from(e: clockmark_corpus::CorpusError) -> Self {
        ServeError::Corpus(e)
    }
}

impl From<clockmark_cpa::TraceInputError<clockmark_corpus::CorpusError>> for ServeError {
    fn from(e: clockmark_cpa::TraceInputError<clockmark_corpus::CorpusError>) -> Self {
        match e {
            clockmark_cpa::TraceInputError::Cpa(e) => ServeError::Cpa(e),
            clockmark_cpa::TraceInputError::Input(e) => ServeError::Corpus(e),
        }
    }
}

/// Folds server/client failures into the workspace-wide error type.
///
/// `ClockmarkError` lives below this crate in the dependency graph, so
/// its `Serve` variant carries a rendered message and the conversion is
/// provided here, where `ServeError` is local.
impl From<ServeError> for clockmark::ClockmarkError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Cpa(e) => clockmark::ClockmarkError::Cpa(e),
            ServeError::Corpus(e) => clockmark::ClockmarkError::Corpus(e),
            other => clockmark::ClockmarkError::Serve {
                message: other.to_string(),
            },
        }
    }
}

/// Shorthand for tagging an I/O failure with what was being attempted.
pub(crate) fn io_err(context: impl Into<String>, source: std::io::Error) -> ServeError {
    ServeError::Io {
        context: context.into(),
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_stable() {
        let e = ServeError::FrameTooLarge { len: 10, max: 4 };
        assert_eq!(
            e.to_string(),
            "frame payload of 10 bytes exceeds the 4-byte limit"
        );

        let e = ServeError::Busy { retry_after_ms: 50 };
        assert!(e.to_string().contains("retry after 50 ms"));
    }

    #[test]
    fn folds_into_clockmark_error() {
        let e: clockmark::ClockmarkError = ServeError::Busy { retry_after_ms: 1 }.into();
        assert!(matches!(e, clockmark::ClockmarkError::Serve { .. }));
        assert!(e.to_string().starts_with("serve:"));

        // CPA and corpus failures keep their structured variants.
        let e: clockmark::ClockmarkError =
            ServeError::Cpa(clockmark_cpa::CpaError::ConstantPattern).into();
        assert!(matches!(e, clockmark::ClockmarkError::Cpa(_)));
    }
}
