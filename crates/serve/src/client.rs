//! Blocking client for the detection service.
//!
//! One [`Client`] owns one connection and may issue any number of
//! sequential requests. A `Busy` rejection during [`Client::connect`]'s
//! first exchange surfaces as [`ServeError::Busy`] with the server's
//! retry hint, so callers can implement their own backoff.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use clockmark_cpa::{DetectOptions, DetectionCriterion, TraceDetection};

use crate::error::{io_err, ServeError};
use crate::protocol::{
    mint_span_id, mint_trace_id, read_frame, read_greeting, trace_id_hex, write_frame,
    write_greeting, ErrorCode, Request, Response, ServerStatus, TRACE_ID_LEN,
};

/// Samples per `DetectChunk` frame: 64 KiB of payload, comfortably
/// under any sane `max_frame_bytes`.
pub const CLIENT_CHUNK: usize = 8192;

/// Client-side trace state while wire tracing is enabled.
#[derive(Debug)]
struct TraceState {
    trace_id: [u8; TRACE_ID_LEN],
    /// Server span id from the most recent `TraceEcho` frame.
    last_server_span: u64,
}

/// A connected detection-service client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
    trace: Option<TraceState>,
    bytes_sent: u64,
    bytes_received: u64,
}

impl Client {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connecting", e))?;
        Client::handshake(stream)
    }

    /// [`Client::connect`] with a socket-level read timeout, so a hung
    /// server cannot block the caller forever.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connecting", e))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| io_err("setting read timeout", e))?;
        Client::handshake(stream)
    }

    fn handshake(mut stream: TcpStream) -> Result<Self, ServeError> {
        stream
            .set_nodelay(true)
            .map_err(|e| io_err("setting TCP_NODELAY", e))?;
        write_greeting(&mut stream).map_err(|e| io_err("writing greeting", e))?;
        read_greeting(&mut stream)?;
        Ok(Client {
            stream,
            max_frame_bytes: 1 << 20,
            trace: None,
            bytes_sent: 0,
            bytes_received: 0,
        })
    }

    /// Turns on wire trace propagation for this connection: every
    /// subsequent request is preceded by a `TraceContext` frame and the
    /// server answers each response with a `TraceEcho` carrying its
    /// span id. Returns the minted 16-byte trace id.
    ///
    /// Tracing never changes verdicts — only extra framing and span
    /// events are added.
    pub fn enable_tracing(&mut self) -> [u8; TRACE_ID_LEN] {
        let trace_id = mint_trace_id();
        self.trace = Some(TraceState {
            trace_id,
            last_server_span: 0,
        });
        trace_id
    }

    /// The active trace id as 32 lowercase hex chars, if tracing is on.
    pub fn trace_id_hex(&self) -> Option<String> {
        self.trace.as_ref().map(|t| trace_id_hex(&t.trace_id))
    }

    /// The server span id echoed for the most recent traced response
    /// (zero before any traced response arrives).
    pub fn last_server_span(&self) -> u64 {
        self.trace.as_ref().map_or(0, |t| t.last_server_span)
    }

    /// Total frame bytes written to the wire by this client.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total frame bytes read from the wire by this client.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// When tracing is enabled: mint a client-side span id for the next
    /// request and push it to the server as the parent of its spans.
    fn begin_traced_request(&mut self) -> Result<Option<u64>, ServeError> {
        let Some(trace) = self.trace.as_ref() else {
            return Ok(None);
        };
        let span_id = mint_span_id();
        let frame = Request::TraceContext {
            trace_id: trace.trace_id,
            parent_span: span_id,
        };
        self.send(&frame)?;
        Ok(Some(span_id))
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::Ping)?;
        match self.receive()? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's load counters.
    pub fn status(&mut self) -> Result<ServerStatus, ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::Status)?;
        match self.receive()? {
            Response::Status(status) => Ok(status),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a Prometheus text-format snapshot of the server's live
    /// metrics (always available; serve-level series are injected even
    /// when the server has no recorder installed).
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::Metrics)?;
        match self.receive()? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams `samples` through a full detect exchange and returns the
    /// server's verdict.
    ///
    /// `options.threads` is not carried over the wire: thread policy is
    /// the server's to decide, and every kernel/thread combination
    /// produces bit-identical spectra, so the verdict is unaffected.
    pub fn detect(
        &mut self,
        pattern: &[bool],
        options: DetectOptions,
        samples: &[f64],
    ) -> Result<TraceDetection, ServeError> {
        let sent_before = self.bytes_sent;
        let client_span = self.begin_traced_request()?;
        let mut span = clockmark_obs::span("client.detect")
            .field("cycles", samples.len() as u64)
            .field("period", pattern.len() as u64);
        if let (Some(span_id), Some(trace)) = (client_span, self.trace.as_ref()) {
            span = span
                .field("trace_id", trace_id_hex(&trace.trace_id))
                .field("span_id", span_id);
        }
        if let Some(algo) = options.algo {
            span = span.field("algo", algo.as_str());
        }
        self.send(&Request::DetectStart {
            pattern: pattern.to_vec(),
            algo: options.algo,
            criterion: options.criterion,
        })?;
        for chunk in samples.chunks(CLIENT_CHUNK) {
            self.send(&Request::DetectChunk {
                samples: chunk.to_vec(),
            })?;
        }
        self.send(&Request::DetectFinish)?;
        let outcome = match self.receive()? {
            Response::Detection(detection) => Ok(detection),
            other => Err(unexpected(&other)),
        };
        span = span.field("wire_bytes", self.bytes_sent - sent_before);
        if let Some(trace) = self.trace.as_ref() {
            span = span.field("server_span", trace.last_server_span);
        }
        if let Ok(detection) = &outcome {
            span = span
                .field("peak_rho", detection.result.peak_rho)
                .field("detected", detection.result.detected);
        }
        drop(span);
        outcome
    }

    /// Asks the server to detect `pattern` in a trace stored in a
    /// server-local corpus.
    pub fn detect_corpus(
        &mut self,
        corpus: &str,
        trace: &str,
        pattern: &[bool],
        options: DetectOptions,
    ) -> Result<TraceDetection, ServeError> {
        let client_span = self.begin_traced_request()?;
        let mut span = clockmark_obs::span("client.detect")
            .field("corpus_trace", trace)
            .field("period", pattern.len() as u64);
        if let (Some(span_id), Some(state)) = (client_span, self.trace.as_ref()) {
            span = span
                .field("trace_id", trace_id_hex(&state.trace_id))
                .field("span_id", span_id);
        }
        self.send(&Request::DetectCorpus {
            corpus: corpus.to_string(),
            trace: trace.to_string(),
            pattern: pattern.to_vec(),
            algo: options.algo,
            criterion: options.criterion,
        })?;
        let outcome = match self.receive()? {
            Response::Detection(detection) => Ok(detection),
            other => Err(unexpected(&other)),
        };
        if let Some(state) = self.trace.as_ref() {
            span = span.field("server_span", state.last_server_span);
        }
        if let Ok(detection) = &outcome {
            span = span
                .field("peak_rho", detection.result.peak_rho)
                .field("detected", detection.result.detected);
        }
        drop(span);
        outcome
    }

    /// Convenience wrapper: [`Client::detect`] with default options and
    /// an explicit criterion.
    pub fn detect_with_criterion(
        &mut self,
        pattern: &[bool],
        criterion: DetectionCriterion,
        samples: &[f64],
    ) -> Result<TraceDetection, ServeError> {
        self.detect(
            pattern,
            DetectOptions::default().with_criterion(criterion),
            samples,
        )
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::Shutdown)?;
        match self.receive()? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ServeError> {
        let (ty, payload) = request.encode();
        self.bytes_sent += 5 + payload.len() as u64; // type + u32 length + payload
        write_frame(&mut self.stream, ty, &payload).map_err(|e| io_err("writing request", e))
    }

    /// Reads the next response, translating error frames into
    /// [`ServeError::Busy`] / [`ServeError::Remote`] and absorbing
    /// `TraceEcho` frames into the trace state.
    fn receive(&mut self) -> Result<Response, ServeError> {
        loop {
            let (ty, payload) = read_frame(&mut self.stream, self.max_frame_bytes)?;
            self.bytes_received += 5 + payload.len() as u64;
            match Response::decode(ty, &payload)? {
                Response::TraceEcho { trace_id, span_id } => {
                    // Record the server span for the request in flight;
                    // the substantive response follows on the wire.
                    if let Some(trace) = self.trace.as_mut() {
                        if trace.trace_id == trace_id {
                            trace.last_server_span = span_id;
                        }
                    }
                }
                Response::Error {
                    code: ErrorCode::Busy,
                    retry_after_ms,
                    ..
                } => return Err(ServeError::Busy { retry_after_ms }),
                Response::Error {
                    code,
                    retry_after_ms,
                    message,
                } => {
                    return Err(ServeError::Remote {
                        code,
                        retry_after_ms,
                        message,
                    })
                }
                other => return Ok(other),
            }
        }
    }
}

fn unexpected(response: &Response) -> ServeError {
    ServeError::Protocol {
        message: format!("unexpected response frame: {response:?}"),
    }
}
