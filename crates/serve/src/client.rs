//! Blocking client for the detection service.
//!
//! One [`Client`] owns one connection and may issue any number of
//! sequential requests. A `Busy` rejection during [`Client::connect`]'s
//! first exchange surfaces as [`ServeError::Busy`] with the server's
//! retry hint, so callers can implement their own backoff.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use clockmark_cpa::{DetectOptions, DetectionCriterion, TraceDetection};

use crate::error::{io_err, ServeError};
use crate::protocol::{
    read_frame, read_greeting, write_frame, write_greeting, ErrorCode, Request, Response,
    ServerStatus,
};

/// Samples per `DetectChunk` frame: 64 KiB of payload, comfortably
/// under any sane `max_frame_bytes`.
pub const CLIENT_CHUNK: usize = 8192;

/// A connected detection-service client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connecting", e))?;
        Client::handshake(stream)
    }

    /// [`Client::connect`] with a socket-level read timeout, so a hung
    /// server cannot block the caller forever.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connecting", e))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| io_err("setting read timeout", e))?;
        Client::handshake(stream)
    }

    fn handshake(mut stream: TcpStream) -> Result<Self, ServeError> {
        stream
            .set_nodelay(true)
            .map_err(|e| io_err("setting TCP_NODELAY", e))?;
        write_greeting(&mut stream).map_err(|e| io_err("writing greeting", e))?;
        read_greeting(&mut stream)?;
        Ok(Client {
            stream,
            max_frame_bytes: 1 << 20,
        })
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.send(&Request::Ping)?;
        match self.receive()? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's load counters.
    pub fn status(&mut self) -> Result<ServerStatus, ServeError> {
        self.send(&Request::Status)?;
        match self.receive()? {
            Response::Status(status) => Ok(status),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams `samples` through a full detect exchange and returns the
    /// server's verdict.
    ///
    /// `options.threads` is not carried over the wire: thread policy is
    /// the server's to decide, and every kernel/thread combination
    /// produces bit-identical spectra, so the verdict is unaffected.
    pub fn detect(
        &mut self,
        pattern: &[bool],
        options: DetectOptions,
        samples: &[f64],
    ) -> Result<TraceDetection, ServeError> {
        self.send(&Request::DetectStart {
            pattern: pattern.to_vec(),
            algo: options.algo,
            criterion: options.criterion,
        })?;
        for chunk in samples.chunks(CLIENT_CHUNK) {
            self.send(&Request::DetectChunk {
                samples: chunk.to_vec(),
            })?;
        }
        self.send(&Request::DetectFinish)?;
        match self.receive()? {
            Response::Detection(detection) => Ok(detection),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to detect `pattern` in a trace stored in a
    /// server-local corpus.
    pub fn detect_corpus(
        &mut self,
        corpus: &str,
        trace: &str,
        pattern: &[bool],
        options: DetectOptions,
    ) -> Result<TraceDetection, ServeError> {
        self.send(&Request::DetectCorpus {
            corpus: corpus.to_string(),
            trace: trace.to_string(),
            pattern: pattern.to_vec(),
            algo: options.algo,
            criterion: options.criterion,
        })?;
        match self.receive()? {
            Response::Detection(detection) => Ok(detection),
            other => Err(unexpected(&other)),
        }
    }

    /// Convenience wrapper: [`Client::detect`] with default options and
    /// an explicit criterion.
    pub fn detect_with_criterion(
        &mut self,
        pattern: &[bool],
        criterion: DetectionCriterion,
        samples: &[f64],
    ) -> Result<TraceDetection, ServeError> {
        self.detect(
            pattern,
            DetectOptions::default().with_criterion(criterion),
            samples,
        )
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.send(&Request::Shutdown)?;
        match self.receive()? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ServeError> {
        let (ty, payload) = request.encode();
        write_frame(&mut self.stream, ty, &payload).map_err(|e| io_err("writing request", e))
    }

    /// Reads the next response, translating error frames into
    /// [`ServeError::Busy`] / [`ServeError::Remote`].
    fn receive(&mut self) -> Result<Response, ServeError> {
        let (ty, payload) = read_frame(&mut self.stream, self.max_frame_bytes)?;
        match Response::decode(ty, &payload)? {
            Response::Error {
                code: ErrorCode::Busy,
                retry_after_ms,
                ..
            } => Err(ServeError::Busy { retry_after_ms }),
            Response::Error {
                code,
                retry_after_ms,
                message,
            } => Err(ServeError::Remote {
                code,
                retry_after_ms,
                message,
            }),
            other => Ok(other),
        }
    }
}

fn unexpected(response: &Response) -> ServeError {
    ServeError::Protocol {
        message: format!("unexpected response frame: {response:?}"),
    }
}
