//! Blocking client for the detection service.
//!
//! One [`Client`] owns one connection and may issue any number of
//! sequential requests. A `Busy` rejection during [`Client::connect`]'s
//! first exchange surfaces as [`ServeError::Busy`] with the server's
//! retry hint, so callers can implement their own backoff.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use clockmark_cpa::{
    CandidatePattern, DetectOptions, DetectionCriterion, Identification, SequentialOptions,
    SequentialResult, TraceDetection,
};

use crate::error::{io_err, ServeError};
use crate::protocol::{
    mint_span_id, mint_trace_id, read_frame, read_greeting, trace_id_hex, write_frame,
    write_greeting, ErrorCode, Request, Response, ServerStatus, ShardSpec, WorkerHeartbeat,
    TRACE_ID_LEN,
};

/// Samples per `DetectChunk` frame: 64 KiB of payload, comfortably
/// under any sane `max_frame_bytes`.
pub const CLIENT_CHUNK: usize = 8192;

/// Capped exponential backoff with deterministic jitter for `Busy`
/// rejections.
///
/// The delay for attempt *n* starts from
/// `max(server_hint, base << n)`, is jittered *upward* by up to 50% of
/// itself (so concurrent clients rejected together do not retry in
/// lockstep), and is clamped to `cap`. The jitter stream is a seeded
/// xorshift, so a given seed always produces the same delay sequence —
/// tests and benches stay reproducible while distinct seeds still
/// de-synchronise.
///
/// ```
/// use clockmark_serve::Backoff;
/// let mut backoff = Backoff::new(7);
/// // The server's hint is a hard lower bound on every delay.
/// assert!(backoff.next_delay(25) >= std::time::Duration::from_millis(25));
/// assert!(backoff.next_delay(25) >= std::time::Duration::from_millis(25));
/// assert_eq!(backoff.attempts(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Default bounds: 10 ms base doubling toward a 2 s cap.
    pub fn new(seed: u64) -> Self {
        Backoff::with_bounds(seed, Duration::from_millis(10), Duration::from_secs(2))
    }

    /// Explicit base/cap bounds (`base` is also the smallest delay a
    /// zero server hint can produce).
    pub fn with_bounds(seed: u64, base: Duration, cap: Duration) -> Self {
        // One splitmix64 round so adjacent seeds (worker 0, 1, 2...)
        // land in unrelated jitter streams; `| 1` keeps the xorshift
        // state from starting at zero.
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^= s >> 31;
        Backoff {
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            rng: s | 1,
            attempt: 0,
        }
    }

    /// How many delays have been handed out since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Starts the exponential schedule over (after a success); the
    /// jitter stream keeps advancing so retry storms stay spread out.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The next delay, honouring the server's `retry_after_ms` hint as
    /// a lower bound.
    pub fn next_delay(&mut self, retry_after_ms: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        let floor = exp.max(Duration::from_millis(u64::from(retry_after_ms)));
        // xorshift64* — tiny, seedable, and plenty for de-correlation.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let unit =
            (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = floor.mul_f64(1.0 + 0.5 * unit);
        jittered.clamp(floor, self.cap.max(floor))
    }

    /// Sleeps for [`Backoff::next_delay`].
    pub fn sleep(&mut self, retry_after_ms: u32) {
        std::thread::sleep(self.next_delay(retry_after_ms));
    }
}

/// Client-side trace state while wire tracing is enabled.
#[derive(Debug)]
struct TraceState {
    trace_id: [u8; TRACE_ID_LEN],
    /// Server span id from the most recent `TraceEcho` frame.
    last_server_span: u64,
}

/// A connected detection-service client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
    trace: Option<TraceState>,
    bytes_sent: u64,
    bytes_received: u64,
}

impl Client {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connecting", e))?;
        Client::handshake(stream)
    }

    /// [`Client::connect`] with a socket-level read timeout, so a hung
    /// server cannot block the caller forever.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connecting", e))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| io_err("setting read timeout", e))?;
        Client::handshake(stream)
    }

    /// Connects, retrying `Busy` rejections under `backoff` for up to
    /// `max_attempts` connection attempts.
    ///
    /// A `Busy` rejection only surfaces on the first exchange (the
    /// server answers the greeting, sends the error frame and closes),
    /// so each attempt probes the fresh connection with a `Ping` and
    /// returns it once the probe round-trips. Non-`Busy` errors abort
    /// immediately. The handshake and probe run under a 5 s read
    /// timeout so a mute peer cannot hang the caller; the timeout is
    /// lifted from the returned client, whose exchanges may run
    /// arbitrarily long (fleet shard assignments block for the whole
    /// shard).
    pub fn connect_with_backoff(
        addr: impl ToSocketAddrs + Clone,
        backoff: &mut Backoff,
        max_attempts: u32,
    ) -> Result<Self, ServeError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match Client::connect_with_timeout(addr.clone(), Duration::from_secs(5)).and_then(
                |mut client| {
                    client.ping()?;
                    client.set_read_timeout(None)?;
                    Ok(client)
                },
            ) {
                Ok(client) => return Ok(client),
                Err(ServeError::Busy { retry_after_ms }) if attempt < max_attempts => {
                    backoff.sleep(retry_after_ms);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Adjusts the socket read timeout of an established connection
    /// (`None` blocks indefinitely).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the socket option cannot be set.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| io_err("setting read timeout", e))
    }

    fn handshake(mut stream: TcpStream) -> Result<Self, ServeError> {
        stream
            .set_nodelay(true)
            .map_err(|e| io_err("setting TCP_NODELAY", e))?;
        write_greeting(&mut stream).map_err(|e| io_err("writing greeting", e))?;
        read_greeting(&mut stream)?;
        Ok(Client {
            stream,
            max_frame_bytes: 1 << 20,
            trace: None,
            bytes_sent: 0,
            bytes_received: 0,
        })
    }

    /// Turns on wire trace propagation for this connection: every
    /// subsequent request is preceded by a `TraceContext` frame and the
    /// server answers each response with a `TraceEcho` carrying its
    /// span id. Returns the minted 16-byte trace id.
    ///
    /// Tracing never changes verdicts — only extra framing and span
    /// events are added.
    pub fn enable_tracing(&mut self) -> [u8; TRACE_ID_LEN] {
        let trace_id = mint_trace_id();
        self.trace = Some(TraceState {
            trace_id,
            last_server_span: 0,
        });
        trace_id
    }

    /// The active trace id as 32 lowercase hex chars, if tracing is on.
    pub fn trace_id_hex(&self) -> Option<String> {
        self.trace.as_ref().map(|t| trace_id_hex(&t.trace_id))
    }

    /// The server span id echoed for the most recent traced response
    /// (zero before any traced response arrives).
    pub fn last_server_span(&self) -> u64 {
        self.trace.as_ref().map_or(0, |t| t.last_server_span)
    }

    /// Total frame bytes written to the wire by this client.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total frame bytes read from the wire by this client.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// When tracing is enabled: mint a client-side span id for the next
    /// request and push it to the server as the parent of its spans.
    fn begin_traced_request(&mut self) -> Result<Option<u64>, ServeError> {
        let Some(trace) = self.trace.as_ref() else {
            return Ok(None);
        };
        let span_id = mint_span_id();
        let frame = Request::TraceContext {
            trace_id: trace.trace_id,
            parent_span: span_id,
        };
        self.send(&frame)?;
        Ok(Some(span_id))
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::Ping)?;
        match self.receive()? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the server's load counters.
    pub fn status(&mut self) -> Result<ServerStatus, ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::Status)?;
        match self.receive()? {
            Response::Status(status) => Ok(status),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a Prometheus text-format snapshot of the server's live
    /// metrics (always available; serve-level series are injected even
    /// when the server has no recorder installed).
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::Metrics)?;
        match self.receive()? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Streams `samples` through a full detect exchange and returns the
    /// server's verdict.
    ///
    /// `options.threads` is not carried over the wire: thread policy is
    /// the server's to decide, and every kernel/thread combination
    /// produces bit-identical spectra, so the verdict is unaffected.
    pub fn detect(
        &mut self,
        pattern: &[bool],
        options: DetectOptions,
        samples: &[f64],
    ) -> Result<TraceDetection, ServeError> {
        let sent_before = self.bytes_sent;
        let client_span = self.begin_traced_request()?;
        let mut span = clockmark_obs::span("client.detect")
            .field("cycles", samples.len() as u64)
            .field("period", pattern.len() as u64);
        if let (Some(span_id), Some(trace)) = (client_span, self.trace.as_ref()) {
            span = span
                .field("trace_id", trace_id_hex(&trace.trace_id))
                .field("span_id", span_id);
        }
        if let Some(algo) = options.algo {
            span = span.field("algo", algo.as_str());
        }
        self.send(&Request::DetectStart {
            pattern: pattern.to_vec(),
            algo: options.algo,
            criterion: options.criterion,
        })?;
        for chunk in samples.chunks(CLIENT_CHUNK) {
            self.send(&Request::DetectChunk {
                samples: chunk.to_vec(),
            })?;
        }
        self.send(&Request::DetectFinish)?;
        let outcome = match self.receive()? {
            Response::Detection(detection) => Ok(detection),
            other => Err(unexpected(&other)),
        };
        span = span.field("wire_bytes", self.bytes_sent - sent_before);
        if let Some(trace) = self.trace.as_ref() {
            span = span.field("server_span", trace.last_server_span);
        }
        if let Ok(detection) = &outcome {
            span = span
                .field("peak_rho", detection.result.peak_rho)
                .field("detected", detection.result.detected);
        }
        drop(span);
        outcome
    }

    /// Streams `samples` through a *sequential* detect exchange: the
    /// server evaluates the growing prefix on `seq` checkpoints and
    /// freezes its fold the moment the acceptance rule fires, returning
    /// the verdict with `cycles_consumed` and the checkpoint trail.
    ///
    /// The client still streams the whole trace (the protocol keeps
    /// `DetectChunk` unacknowledged so the socket stays saturated); the
    /// saving is the server's fold/spectrum CPU, not wire bandwidth.
    /// The verdict is bit-identical to an in-process
    /// [`Detector::detect_sequential`](clockmark_cpa::Detector::detect_sequential)
    /// with the same options on the same samples.
    pub fn detect_sequential(
        &mut self,
        pattern: &[bool],
        options: DetectOptions,
        seq: SequentialOptions,
        samples: &[f64],
    ) -> Result<SequentialResult, ServeError> {
        let sent_before = self.bytes_sent;
        let client_span = self.begin_traced_request()?;
        let mut span = clockmark_obs::span("client.detect")
            .field("mode", "sequential")
            .field("cycles", samples.len() as u64)
            .field("period", pattern.len() as u64);
        if let (Some(span_id), Some(trace)) = (client_span, self.trace.as_ref()) {
            span = span
                .field("trace_id", trace_id_hex(&trace.trace_id))
                .field("span_id", span_id);
        }
        if let Some(algo) = options.algo {
            span = span.field("algo", algo.as_str());
        }
        self.send(&Request::DetectSequentialStart {
            pattern: pattern.to_vec(),
            algo: options.algo,
            criterion: options.criterion,
            options: seq,
        })?;
        for chunk in samples.chunks(CLIENT_CHUNK) {
            self.send(&Request::DetectChunk {
                samples: chunk.to_vec(),
            })?;
        }
        self.send(&Request::DetectFinish)?;
        let outcome = match self.receive()? {
            Response::SequentialDetection(result) => Ok(result),
            other => Err(unexpected(&other)),
        };
        span = span.field("wire_bytes", self.bytes_sent - sent_before);
        if let Some(trace) = self.trace.as_ref() {
            span = span.field("server_span", trace.last_server_span);
        }
        if let Ok(result) = &outcome {
            span = span
                .field("cycles_consumed", result.cycles_consumed)
                .field("early_stopped", result.early_stopped)
                .field("detected", result.result.detected);
        }
        drop(span);
        outcome
    }

    /// Streams `samples` once and ranks every candidate pattern against
    /// the shared fold, returning the server's identification ledger —
    /// bit-identical to an in-process
    /// [`Detector::identify`](clockmark_cpa::Detector::identify) on the
    /// same samples.
    pub fn identify(
        &mut self,
        pattern: &[bool],
        options: DetectOptions,
        candidates: &[CandidatePattern],
        samples: &[f64],
    ) -> Result<Identification, ServeError> {
        let sent_before = self.bytes_sent;
        let client_span = self.begin_traced_request()?;
        let mut span = clockmark_obs::span("client.identify")
            .field("cycles", samples.len() as u64)
            .field("period", pattern.len() as u64)
            .field("candidates", candidates.len() as u64);
        if let (Some(span_id), Some(trace)) = (client_span, self.trace.as_ref()) {
            span = span
                .field("trace_id", trace_id_hex(&trace.trace_id))
                .field("span_id", span_id);
        }
        self.send(&Request::IdentifyStart {
            pattern: pattern.to_vec(),
            algo: options.algo,
            criterion: options.criterion,
            candidates: candidates.to_vec(),
        })?;
        for chunk in samples.chunks(CLIENT_CHUNK) {
            self.send(&Request::DetectChunk {
                samples: chunk.to_vec(),
            })?;
        }
        self.send(&Request::DetectFinish)?;
        let outcome = match self.receive()? {
            Response::Identification(identification) => Ok(identification),
            other => Err(unexpected(&other)),
        };
        span = span.field("wire_bytes", self.bytes_sent - sent_before);
        if let Some(trace) = self.trace.as_ref() {
            span = span.field("server_span", trace.last_server_span);
        }
        if let Ok(identification) = &outcome {
            if let Some(best) = identification.scores.first() {
                span = span
                    .field("best", best.label.clone())
                    .field("best_rho", best.result.peak_rho);
            }
        }
        drop(span);
        outcome
    }

    /// Asks the server to detect `pattern` in a trace stored in a
    /// server-local corpus.
    pub fn detect_corpus(
        &mut self,
        corpus: &str,
        trace: &str,
        pattern: &[bool],
        options: DetectOptions,
    ) -> Result<TraceDetection, ServeError> {
        let client_span = self.begin_traced_request()?;
        let mut span = clockmark_obs::span("client.detect")
            .field("corpus_trace", trace)
            .field("period", pattern.len() as u64);
        if let (Some(span_id), Some(state)) = (client_span, self.trace.as_ref()) {
            span = span
                .field("trace_id", trace_id_hex(&state.trace_id))
                .field("span_id", span_id);
        }
        self.send(&Request::DetectCorpus {
            corpus: corpus.to_string(),
            trace: trace.to_string(),
            pattern: pattern.to_vec(),
            algo: options.algo,
            criterion: options.criterion,
        })?;
        let outcome = match self.receive()? {
            Response::Detection(detection) => Ok(detection),
            other => Err(unexpected(&other)),
        };
        if let Some(state) = self.trace.as_ref() {
            span = span.field("server_span", state.last_server_span);
        }
        if let Ok(detection) = &outcome {
            span = span
                .field("peak_rho", detection.result.peak_rho)
                .field("detected", detection.result.detected);
        }
        drop(span);
        outcome
    }

    /// Convenience wrapper: [`Client::detect`] with default options and
    /// an explicit criterion.
    pub fn detect_with_criterion(
        &mut self,
        pattern: &[bool],
        criterion: DetectionCriterion,
        samples: &[f64],
    ) -> Result<TraceDetection, ServeError> {
        self.detect(
            pattern,
            DetectOptions::default().with_criterion(criterion),
            samples,
        )
    }

    /// Hands a fleet worker one shard to run and blocks until the
    /// worker answers with its outcome. Only meaningful against a
    /// server started with a fleet service installed; anything else
    /// answers with an `Internal` error.
    pub fn shard_assign(&mut self, spec: ShardSpec) -> Result<(u64, bool, String), ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::ShardAssign(spec))?;
        match self.receive()? {
            Response::ShardResult {
                shard_id,
                complete,
                outcomes,
            } => Ok((shard_id, complete, outcomes)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a fleet worker's progress heartbeat (an idle default
    /// when the server has no fleet service installed).
    pub fn heartbeat(&mut self) -> Result<WorkerHeartbeat, ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::Heartbeat)?;
        match self.receive()? {
            Response::Heartbeat(beat) => Ok(beat),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.begin_traced_request()?;
        self.send(&Request::Shutdown)?;
        match self.receive()? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ServeError> {
        let (ty, payload) = request.encode();
        self.bytes_sent += 5 + payload.len() as u64; // type + u32 length + payload
        write_frame(&mut self.stream, ty, &payload).map_err(|e| io_err("writing request", e))
    }

    /// Reads the next response, translating error frames into
    /// [`ServeError::Busy`] / [`ServeError::Remote`] and absorbing
    /// `TraceEcho` frames into the trace state.
    fn receive(&mut self) -> Result<Response, ServeError> {
        loop {
            let (ty, payload) = read_frame(&mut self.stream, self.max_frame_bytes)?;
            self.bytes_received += 5 + payload.len() as u64;
            match Response::decode(ty, &payload)? {
                Response::TraceEcho { trace_id, span_id } => {
                    // Record the server span for the request in flight;
                    // the substantive response follows on the wire.
                    if let Some(trace) = self.trace.as_mut() {
                        if trace.trace_id == trace_id {
                            trace.last_server_span = span_id;
                        }
                    }
                }
                Response::Error {
                    code: ErrorCode::Busy,
                    retry_after_ms,
                    ..
                } => return Err(ServeError::Busy { retry_after_ms }),
                Response::Error {
                    code,
                    retry_after_ms,
                    message,
                } => {
                    return Err(ServeError::Remote {
                        code,
                        retry_after_ms,
                        message,
                    })
                }
                other => return Ok(other),
            }
        }
    }
}

fn unexpected(response: &Response) -> ServeError {
    ServeError::Protocol {
        message: format!("unexpected response frame: {response:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let mut a = Backoff::new(42);
        let mut b = Backoff::new(42);
        for _ in 0..8 {
            assert_eq!(a.next_delay(25), b.next_delay(25));
        }
        // A different seed must de-synchronise the jitter stream.
        let mut a2 = Backoff::new(42);
        let mut c = Backoff::new(43);
        let delays_a: Vec<_> = (0..8).map(|_| a2.next_delay(0)).collect();
        let delays_c: Vec<_> = (0..8).map(|_| c.next_delay(0)).collect();
        assert_ne!(delays_a, delays_c);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let mut backoff =
            Backoff::with_bounds(1, Duration::from_millis(10), Duration::from_millis(400));
        let mut previous = Duration::ZERO;
        for attempt in 0..12 {
            let delay = backoff.next_delay(0);
            // The un-jittered floor doubles (10, 20, 40, ...) until the
            // cap; jitter only ever pushes a delay up, never below the
            // floor, and never past the cap.
            let floor = Duration::from_millis(10 << attempt.min(6)).min(Duration::from_millis(400));
            assert!(delay >= floor, "attempt {attempt}: {delay:?} < {floor:?}");
            assert!(delay <= Duration::from_millis(400));
            assert!(delay >= previous.min(Duration::from_millis(400)) || attempt == 0);
            previous = delay;
        }
        assert_eq!(backoff.attempts(), 12);
        backoff.reset();
        assert_eq!(backoff.attempts(), 0);
        assert!(backoff.next_delay(0) < Duration::from_millis(20));
    }

    #[test]
    fn backoff_honours_the_server_hint() {
        let mut backoff = Backoff::new(9);
        // First exponential floor is 10ms; a 250ms hint must win.
        let delay = backoff.next_delay(250);
        assert!(delay >= Duration::from_millis(250));
        // And a hint above the cap still holds as the lower bound.
        let mut tight =
            Backoff::with_bounds(9, Duration::from_millis(1), Duration::from_millis(50));
        assert!(tight.next_delay(80) >= Duration::from_millis(80));
    }
}
