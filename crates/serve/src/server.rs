//! The concurrent detection server.
//!
//! One accept thread polls a nonblocking [`TcpListener`]; each admitted
//! connection gets a session thread from a bounded pool. When the pool
//! is full new connections are *rejected immediately* with a `Busy`
//! error frame carrying a retry hint — the server never queues work it
//! cannot start, so client latency is either "being served" or "told to
//! back off", never "silently parked".
//!
//! Shutdown is a drain: the accept loop stops admitting, in-flight
//! sessions run to completion (idle ones close at their next poll
//! tick), and observability metrics are flushed before
//! [`ServerHandle::shutdown`] returns.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use clockmark_cpa::{CpaAlgo, DetectOptions, Detector, StreamingDetection};

use crate::error::{io_err, ServeError};
use crate::protocol::{
    mint_span_id, read_greeting, trace_id_hex, write_frame, write_greeting, ErrorCode, Request,
    Response, ServerStatus, TRACE_ID_LEN,
};

/// Poll interval of the accept loop and of idle session reads. Short
/// enough that drain latency is imperceptible, long enough to keep an
/// idle server off the scheduler.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Resource limits a server enforces per connection and overall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeLimits {
    /// Concurrent session cap; further connections get `Busy`.
    pub max_sessions: usize,
    /// Largest frame payload either side may send, in bytes.
    pub max_frame_bytes: usize,
    /// Most trace cycles a single detect exchange may stream.
    pub max_cycles: u64,
    /// How long a blocked payload read may take before the session dies.
    pub read_timeout: Duration,
    /// How long a session may sit between frames before it is closed.
    pub idle_timeout: Duration,
    /// Backoff hint attached to `Busy` rejections.
    pub retry_after_ms: u32,
    /// Requests taking longer than this are logged at `warn` level with
    /// their trace id (the slow-request log). `Duration::MAX` disables.
    pub slow_request: Duration,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_sessions: 8,
            max_frame_bytes: 1 << 20,
            max_cycles: 50_000_000,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            retry_after_ms: 100,
            slow_request: Duration::from_secs(1),
        }
    }
}

/// Counters and flags shared between the accept loop, sessions, and the
/// owning handle.
struct Shared {
    limits: ServeLimits,
    start: Instant,
    draining: AtomicBool,
    active: AtomicUsize,
    total: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    algo_naive: AtomicU64,
    algo_folded: AtomicU64,
    algo_fft: AtomicU64,
}

impl Shared {
    fn status(&self) -> ServerStatus {
        ServerStatus {
            active_sessions: self.active.load(Ordering::SeqCst) as u32,
            max_sessions: self.limits.max_sessions as u32,
            served: self.served.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            draining: self.draining.load(Ordering::SeqCst),
            uptime_secs: self.start.elapsed().as_secs(),
            total_sessions: self.total.load(Ordering::SeqCst),
            algo_naive: self.algo_naive.load(Ordering::SeqCst),
            algo_folded: self.algo_folded.load(Ordering::SeqCst),
            algo_fft: self.algo_fft.load(Ordering::SeqCst),
        }
    }

    /// Counts one served verdict against the kernel that produced it.
    fn note_served(&self, algo: CpaAlgo) {
        self.served.fetch_add(1, Ordering::SeqCst);
        let slot = match algo {
            CpaAlgo::Naive => &self.algo_naive,
            CpaAlgo::Folded => &self.algo_folded,
            CpaAlgo::Fft => &self.algo_fft,
            // `CpaAlgo` is non-exhaustive; count unknown kernels as the
            // dispatch default so the mix still sums to `served`.
            _ => &self.algo_folded,
        };
        slot.fetch_add(1, Ordering::SeqCst);
        clockmark_obs::counter_add("serve.served", 1);
    }
}

/// Builds the Prometheus exposition the `Metrics` RPC returns: the
/// global recorder's snapshot (empty when observability is disabled)
/// with the server's own load series injected, so the RPC is useful
/// even in a process with no recorder installed.
fn metrics_text(shared: &Shared) -> String {
    let mut snapshot = clockmark_obs::recorder()
        .map(|r| r.snapshot())
        .unwrap_or_default();
    let status = shared.status();
    snapshot.gauges.extend([
        ("serve.uptime_seconds".to_owned(), status.uptime_secs as f64),
        (
            "serve.active_sessions".to_owned(),
            f64::from(status.active_sessions),
        ),
        (
            "serve.max_sessions".to_owned(),
            f64::from(status.max_sessions),
        ),
        (
            "serve.draining".to_owned(),
            f64::from(u8::from(status.draining)),
        ),
    ]);
    snapshot.counters.extend([
        ("serve.served_verdicts".to_owned(), status.served),
        ("serve.rejected_connections".to_owned(), status.rejected),
        ("serve.sessions".to_owned(), status.total_sessions),
        ("serve.verdicts_naive".to_owned(), status.algo_naive),
        ("serve.verdicts_folded".to_owned(), status.algo_folded),
        ("serve.verdicts_fft".to_owned(), status.algo_fft),
    ]);
    clockmark_obs::prometheus_text(&snapshot)
}

/// A running detection server.
///
/// Returned by [`Server::bind`]; dropping the handle drains the server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("status", &self.shared.status())
            .finish()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current load counters, as a `Status` request would report them.
    pub fn status(&self) -> ServerStatus {
        self.shared.status()
    }

    /// Whether a drain has been requested (by [`Self::shutdown`] or a
    /// wire `Shutdown` request).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains and stops the server: no new connections are admitted,
    /// in-flight sessions finish, metrics are flushed. Returns the
    /// final counters.
    pub fn shutdown(mut self) -> ServerStatus {
        self.begin_drain();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.shared.status()
    }

    /// Blocks until the accept loop exits on its own — used when a wire
    /// `Shutdown` request, not the owning process, ends the server.
    pub fn wait(mut self) -> ServerStatus {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.shared.status()
    }

    fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_drain();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Factory for [`ServerHandle`]s.
#[derive(Debug, Clone, Default)]
pub struct Server {
    limits: ServeLimits,
}

impl Server {
    /// A server with [`ServeLimits::default`].
    pub fn new() -> Self {
        Server::default()
    }

    /// Overrides the resource limits.
    #[must_use]
    pub fn with_limits(mut self, limits: ServeLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Binds the listener and spawns the accept loop.
    ///
    /// Bind to port 0 to let the OS pick a free port; the chosen
    /// address is available via [`ServerHandle::local_addr`].
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("binding listener", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("setting listener nonblocking", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err("reading bound address", e))?;

        let shared = Arc::new(Shared {
            limits: self.limits,
            start: Instant::now(),
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            total: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            algo_naive: AtomicU64::new(0),
            algo_folded: AtomicU64::new(0),
            algo_fft: AtomicU64::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("clockmark-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| io_err("spawning accept thread", e))?;

        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Decrements the active-session counter even if a session errors out
/// early.
struct SessionSlot<'a>(&'a Shared);

impl Drop for SessionSlot<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();

    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let admitted = shared
                    .active
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                        (n < shared.limits.max_sessions).then_some(n + 1)
                    })
                    .is_ok();
                let session_shared = Arc::clone(&shared);
                let spawn = std::thread::Builder::new()
                    .name("clockmark-serve-session".into())
                    .spawn(move || {
                        if admitted {
                            let _slot = SessionSlot(&session_shared);
                            session_shared.total.fetch_add(1, Ordering::SeqCst);
                            clockmark_obs::counter_add("serve.accept", 1);
                            run_session(stream, &session_shared);
                        } else {
                            session_shared.rejected.fetch_add(1, Ordering::SeqCst);
                            clockmark_obs::counter_add("serve.reject", 1);
                            reject_session(stream, &session_shared);
                        }
                    });
                match spawn {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => {
                        // Could not spawn; release the slot we reserved.
                        if admitted {
                            shared.active.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                sessions.retain(|h| !h.is_finished());
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted connection);
                // keep serving.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }

    // Graceful drain: the listener closes here (no new connections),
    // in-flight sessions run to completion, then metrics flush.
    drop(listener);
    for handle in sessions {
        let _ = handle.join();
    }
    clockmark_obs::flush();
}

/// Tells an over-capacity client to back off, then closes.
fn reject_session(mut stream: TcpStream, shared: &Shared) {
    // Keep the rejection path snappy: a client that never sends its
    // greeting must not pin this thread for the full read timeout.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    if read_greeting(&mut stream).is_err() {
        return;
    }
    if write_greeting(&mut stream).is_err() {
        return;
    }
    let (ty, payload) = Response::Error {
        code: ErrorCode::Busy,
        retry_after_ms: shared.limits.retry_after_ms,
        message: format!("session pool full ({} active)", shared.limits.max_sessions),
    }
    .encode();
    let _ = write_frame(&mut stream, ty, &payload);
}

/// An in-progress streamed detect exchange.
struct DetectExchange {
    detector: Detector,
    session: StreamingDetection,
    /// Payload bytes received for this exchange (start + chunks).
    wire_bytes: u64,
}

/// The session's sticky trace context, set by [`Request::TraceContext`].
struct TraceCtx {
    trace_id: [u8; TRACE_ID_LEN],
    parent_span: u64,
    /// Server-side span id minted for the request in flight; echoed in
    /// the `TraceEcho` frame preceding each response.
    current_span: u64,
}

/// Per-session state threaded through the request handler.
struct SessionCtx {
    exchange: Option<DetectExchange>,
    trace: Option<TraceCtx>,
}

/// What the session loop should do after handling one frame.
enum Flow {
    Continue,
    Close,
}

/// Short name of a request frame, used for span fields and logs.
fn request_name(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::DetectStart { .. } => "detect_start",
        Request::DetectChunk { .. } => "detect_chunk",
        Request::DetectFinish => "detect_finish",
        Request::DetectCorpus { .. } => "detect_corpus",
        Request::Status => "status",
        Request::Shutdown => "shutdown",
        Request::TraceContext { .. } => "trace_context",
        Request::Metrics => "metrics",
    }
}

fn run_session(mut stream: TcpStream, shared: &Shared) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(shared.limits.read_timeout));
    if read_greeting(&mut stream).is_err() || write_greeting(&mut stream).is_err() {
        return;
    }

    let span = clockmark_obs::span("serve.session");
    let mut ctx = SessionCtx {
        exchange: None,
        trace: None,
    };
    let mut last_activity = Instant::now();

    loop {
        // Poll for the next frame's *type byte* in short slices so the
        // session notices a drain promptly and enforces the idle budget.
        // A 1-byte read either completes or consumes nothing, so a poll
        // timeout can never desynchronise the stream; the frame body is
        // then read under the full read timeout.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL.max(Duration::from_millis(1))));
        let mut frame_type = [0u8; 1];
        match std::io::Read::read_exact(&mut stream, &mut frame_type) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // No frame yet. An idle session ends when the server
                // drains or the idle budget runs out; one mid-exchange
                // is given until the read timeout to resume streaming.
                let budget = if ctx.exchange.is_some() {
                    shared.limits.read_timeout
                } else {
                    shared.limits.idle_timeout
                };
                let draining = shared.draining.load(Ordering::SeqCst);
                if (draining && ctx.exchange.is_none()) || last_activity.elapsed() > budget {
                    break;
                }
                continue;
            }
            Err(_) => break, // disconnect
        }
        let _ = stream.set_read_timeout(Some(shared.limits.read_timeout));
        let payload =
            match crate::protocol::read_frame_rest(&mut stream, shared.limits.max_frame_bytes) {
                Ok(payload) => payload,
                Err(ServeError::FrameTooLarge { len, max }) => {
                    send_error(
                        &mut stream,
                        None,
                        ErrorCode::FrameTooLarge,
                        0,
                        &format!("frame payload of {len} bytes exceeds the {max}-byte limit"),
                    );
                    break;
                }
                Err(_) => break, // disconnect, stall, or garbled length
            };
        last_activity = Instant::now();

        let wire_bytes = 5u64 + payload.len() as u64; // type byte + u32 length + payload
        let request = match Request::decode(frame_type[0], &payload) {
            Ok(request) => request,
            Err(e) => {
                send_error(&mut stream, None, ErrorCode::Malformed, 0, &e.to_string());
                break;
            }
        };

        // Mint the server-side span id for this request up front so the
        // request span and the TraceEcho frame agree on it.
        if let Some(trace) = ctx.trace.as_mut() {
            trace.current_span = mint_span_id();
        }
        let frame = request_name(&request);
        let started = Instant::now();
        let request_span = {
            let mut s = clockmark_obs::span("serve.request")
                .field("frame", frame)
                .field("wire_bytes", wire_bytes);
            if let Some(trace) = ctx.trace.as_ref() {
                s = s
                    .field("trace_id", trace_id_hex(&trace.trace_id))
                    .field("span_id", trace.current_span)
                    .field("parent_span", trace.parent_span);
            }
            s
        };
        let flow = handle_request(&mut stream, shared, &mut ctx, request, wire_bytes);
        drop(request_span);

        let elapsed = started.elapsed();
        clockmark_obs::counter_add("serve.requests", 1);
        clockmark_obs::counter_add("serve.wire_bytes", wire_bytes);
        clockmark_obs::observe("serve.request_seconds", elapsed.as_secs_f64());
        if elapsed >= shared.limits.slow_request {
            let trace = ctx
                .trace
                .as_ref()
                .map(|t| trace_id_hex(&t.trace_id))
                .unwrap_or_else(|| "-".to_string());
            clockmark_obs::warn!(
                "slow request: frame={frame} elapsed={:?} trace={trace}",
                elapsed
            );
        }

        match flow {
            Flow::Continue => {}
            Flow::Close => break,
        }
    }
    drop(span);
}

fn handle_request(
    stream: &mut TcpStream,
    shared: &Shared,
    ctx: &mut SessionCtx,
    request: Request,
    wire_bytes: u64,
) -> Flow {
    let trace = ctx.trace.take();
    let flow = handle_request_inner(stream, shared, ctx, trace.as_ref(), request, wire_bytes);
    if ctx.trace.is_none() {
        ctx.trace = trace;
    }
    flow
}

fn handle_request_inner(
    stream: &mut TcpStream,
    shared: &Shared,
    ctx: &mut SessionCtx,
    trace: Option<&TraceCtx>,
    request: Request,
    wire_bytes: u64,
) -> Flow {
    let exchange = &mut ctx.exchange;
    match request {
        Request::Ping => send_response(stream, trace, &Response::Pong),
        Request::Status => send_response(stream, trace, &Response::Status(shared.status())),
        Request::Metrics => send_response(
            stream,
            trace,
            &Response::Metrics {
                text: metrics_text(shared),
            },
        ),
        Request::TraceContext {
            trace_id,
            parent_span,
        } => {
            // Sticky and unacknowledged, like DetectStart: the context
            // takes effect on the next request's response.
            ctx.trace = Some(TraceCtx {
                trace_id,
                parent_span,
                current_span: mint_span_id(),
            });
            Flow::Continue
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            send_response(stream, trace, &Response::ShutdownAck);
            Flow::Close
        }
        Request::DetectStart {
            pattern,
            algo,
            criterion,
        } => {
            if exchange.is_some() {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "DetectStart while a detect exchange is already open",
                );
            }
            if shared.draining.load(Ordering::SeqCst) {
                return fail(stream, trace, ErrorCode::Draining, "server is draining");
            }
            let mut options = DetectOptions::default().with_criterion(criterion);
            if let Some(algo) = algo {
                options = options.with_algo(algo);
            }
            match Detector::with_options(&pattern, options) {
                Ok(detector) => {
                    let session = detector.detect_streaming();
                    *exchange = Some(DetectExchange {
                        detector,
                        session,
                        wire_bytes,
                    });
                    Flow::Continue
                }
                Err(e) => fail(stream, trace, ErrorCode::Cpa, &e.to_string()),
            }
        }
        Request::DetectChunk { samples } => {
            let Some(open) = exchange.as_mut() else {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "DetectChunk without DetectStart",
                );
            };
            let next = open.session.cycles().saturating_add(samples.len() as u64);
            if next > shared.limits.max_cycles {
                *exchange = None;
                return fail(
                    stream,
                    trace,
                    ErrorCode::TooManyCycles,
                    &format!(
                        "trace exceeds the server's {}-cycle budget",
                        shared.limits.max_cycles
                    ),
                );
            }
            open.wire_bytes = open.wire_bytes.saturating_add(wire_bytes);
            open.session.push_chunk(&samples);
            Flow::Continue
        }
        Request::DetectFinish => {
            let Some(open) = exchange.take() else {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "DetectFinish without DetectStart",
                );
            };
            let algo = open.detector.resolved_algo();
            let mut detect_span = clockmark_obs::span("serve.detect")
                .field("cycles", open.session.cycles())
                .field("period", open.session.period() as u64)
                .field("algo", algo.as_str())
                .field("wire_bytes", open.wire_bytes.saturating_add(wire_bytes));
            if let Some(t) = trace {
                detect_span = detect_span
                    .field("trace_id", trace_id_hex(&t.trace_id))
                    .field("parent_span", t.current_span);
            }
            let outcome = open
                .session
                .spectrum()
                .map(|spectrum| clockmark_cpa::TraceDetection {
                    result: open.detector.criterion().evaluate(&spectrum),
                    cycles: open.session.cycles(),
                });
            if let Ok(detection) = &outcome {
                detect_span = detect_span
                    .field("peak_rho", detection.result.peak_rho)
                    .field("detected", detection.result.detected);
            }
            drop(detect_span);
            match outcome {
                Ok(detection) => {
                    shared.note_served(algo);
                    send_response(stream, trace, &Response::Detection(detection))
                }
                Err(e) => fail(stream, trace, ErrorCode::Cpa, &e.to_string()),
            }
        }
        Request::DetectCorpus {
            corpus,
            trace: trace_name,
            pattern,
            algo,
            criterion,
        } => {
            if exchange.is_some() {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "DetectCorpus while a detect exchange is open",
                );
            }
            if shared.draining.load(Ordering::SeqCst) {
                return fail(stream, trace, ErrorCode::Draining, "server is draining");
            }
            match detect_corpus(
                shared,
                &corpus,
                &trace_name,
                &pattern,
                algo,
                criterion,
                trace,
            ) {
                Ok((detection, algo)) => {
                    shared.note_served(algo);
                    send_response(stream, trace, &Response::Detection(detection))
                }
                Err((code, message)) => fail(stream, trace, code, &message),
            }
        } // `Request` is non_exhaustive for downstream crates only; within
          // the defining crate the match above is already exhaustive.
    }
}

/// Runs a corpus-backed detect and classifies any failure for the wire.
/// Returns the verdict together with the CPA kernel that produced it.
#[allow(clippy::too_many_arguments)]
fn detect_corpus(
    shared: &Shared,
    corpus: &str,
    trace: &str,
    pattern: &[bool],
    algo: Option<clockmark_cpa::CpaAlgo>,
    criterion: clockmark_cpa::DetectionCriterion,
    trace_ctx: Option<&TraceCtx>,
) -> Result<(clockmark_cpa::TraceDetection, CpaAlgo), (ErrorCode, String)> {
    let mut options = DetectOptions::default().with_criterion(criterion);
    if let Some(algo) = algo {
        options = options.with_algo(algo);
    }
    let detector =
        Detector::with_options(pattern, options).map_err(|e| (ErrorCode::Cpa, e.to_string()))?;
    let resolved = detector.resolved_algo();

    let store =
        clockmark_corpus::Corpus::open(corpus).map_err(|e| (ErrorCode::Corpus, e.to_string()))?;
    let entry = store.entry(trace).ok_or_else(|| {
        (
            ErrorCode::Corpus,
            format!("no trace named {trace:?} in corpus"),
        )
    })?;
    if entry.cycles > shared.limits.max_cycles {
        return Err((
            ErrorCode::TooManyCycles,
            format!(
                "trace holds {} cycles, over the server's {}-cycle budget",
                entry.cycles, shared.limits.max_cycles
            ),
        ));
    }
    // Memory-mapped where the platform allows it (buffered fallback /
    // CLOCKMARK_NO_MMAP opt-out); repeated detect-corpus requests over
    // the same trace then stream straight from the page cache.
    let reader = store
        .source(trace)
        .map_err(|e| (ErrorCode::Corpus, e.to_string()))?;

    let mut detect_span = clockmark_obs::span("serve.detect")
        .field("cycles", entry.cycles)
        .field("period", pattern.len() as u64)
        .field("algo", resolved.as_str())
        .field("zero_copy", u64::from(reader.is_zero_copy()));
    if let Some(t) = trace_ctx {
        detect_span = detect_span
            .field("trace_id", trace_id_hex(&t.trace_id))
            .field("parent_span", t.current_span);
    }
    let outcome = detector.detect_trace(reader);
    if let Ok(detection) = &outcome {
        detect_span = detect_span
            .field("peak_rho", detection.result.peak_rho)
            .field("detected", detection.result.detected);
    }
    drop(detect_span);

    outcome.map(|detection| (detection, resolved)).map_err(|e| {
        let code = match &e {
            clockmark_cpa::TraceInputError::Cpa(_) => ErrorCode::Cpa,
            clockmark_cpa::TraceInputError::Input(_) => ErrorCode::Corpus,
        };
        (code, e.to_string())
    })
}

/// Writes a response frame, preceded by a [`Response::TraceEcho`] frame
/// carrying the server span id for this request while a trace context
/// is in effect.
fn send_response(stream: &mut TcpStream, trace: Option<&TraceCtx>, response: &Response) -> Flow {
    if let Some(t) = trace {
        let (ty, payload) = Response::TraceEcho {
            trace_id: t.trace_id,
            span_id: t.current_span,
        }
        .encode();
        if write_frame(stream, ty, &payload).is_err() {
            return Flow::Close;
        }
    }
    let (ty, payload) = response.encode();
    match write_frame(stream, ty, &payload) {
        Ok(()) => Flow::Continue,
        Err(_) => Flow::Close,
    }
}

fn send_error(
    stream: &mut impl Write,
    trace: Option<&TraceCtx>,
    code: ErrorCode,
    retry_after_ms: u32,
    message: &str,
) {
    if let Some(t) = trace {
        let (ty, payload) = Response::TraceEcho {
            trace_id: t.trace_id,
            span_id: t.current_span,
        }
        .encode();
        if write_frame(stream, ty, &payload).is_err() {
            return;
        }
    }
    let (ty, payload) = Response::Error {
        code,
        retry_after_ms,
        message: message.to_string(),
    }
    .encode();
    let _ = write_frame(stream, ty, &payload);
}

/// Reports a request failure and keeps the connection alive: the frame
/// that failed was still well-formed, so the session stays usable.
fn fail(stream: &mut TcpStream, trace: Option<&TraceCtx>, code: ErrorCode, message: &str) -> Flow {
    clockmark_obs::counter_add("serve.errors", 1);
    send_error(stream, trace, code, 0, message);
    Flow::Continue
}
