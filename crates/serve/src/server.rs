//! The concurrent detection server.
//!
//! Two interchangeable engines sit behind [`Server::bind`]:
//!
//! - **Readiness engine** (unix, the default): one event-loop thread
//!   `poll(2)`s every connected session plus the listener, and a small
//!   fixed worker pool services only the sessions that actually have
//!   bytes waiting. Thousands of mostly-idle sessions cost one
//!   descriptor each and zero threads, so `max_sessions` can be raised
//!   into the thousands without spawning a thread per connection.
//! - **Blocking engine** (non-unix targets, or
//!   `CLOCKMARK_SERVE_BLOCKING=1`): the original thread-per-connection
//!   pool — an accept thread plus one session thread per admitted
//!   connection.
//!
//! Both engines enforce the same admission rule: at most
//! `max_sessions` connections are served concurrently and the rest are
//! *rejected immediately* with a `Busy` error frame carrying a retry
//! hint — the server never queues work it cannot start, so client
//! latency is either "being served" or "told to back off", never
//! "silently parked".
//!
//! Shutdown is a drain: the listener closes, idle sessions are dropped,
//! sessions mid-exchange run to completion, and observability metrics
//! are flushed before [`ServerHandle::shutdown`] returns.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use clockmark_cpa::{CpaAlgo, DetectOptions, Detector, StreamingDetection};

use crate::error::{io_err, ServeError};
use crate::protocol::{
    mint_span_id, read_greeting, trace_id_hex, write_frame, write_greeting, ErrorCode, Request,
    Response, ServerStatus, ShardSpec, WorkerHeartbeat, TRACE_ID_LEN,
};

/// Poll interval of the event loop (and of idle session reads in the
/// blocking engine). Short enough that drain latency is imperceptible,
/// long enough to keep an idle server off the scheduler.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// How long a pool worker waits for the *next* frame's type byte before
/// handing a session back to the poll set. Readiness already proved
/// bytes were waiting when the session was dispatched, so this timeout
/// only fires once a burst of pipelined frames has been drained.
#[cfg(unix)]
const BURST_POLL: Duration = Duration::from_millis(2);

/// Greeting budget on the rejection path: a client that never sends its
/// greeting must not pin a worker for the full read timeout.
const REJECT_BUDGET: Duration = Duration::from_millis(250);

/// How long the readiness engine parks an over-capacity connection
/// before rejecting it with `Busy`. Slot release is asynchronous here —
/// a disconnect frees its slot only after a pool worker reads the EOF —
/// so a connect racing a disconnect (ubiquitous in retry loops) would
/// otherwise be rejected against a stale "pool full" count that the
/// blocking engine, which releases slots synchronously on its session
/// threads, never shows.
#[cfg(unix)]
const ADMIT_GRACE: Duration = Duration::from_millis(50);

/// Resource limits a server enforces per connection and overall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeLimits {
    /// Concurrent session cap; further connections get `Busy`.
    pub max_sessions: usize,
    /// Largest frame payload either side may send, in bytes.
    pub max_frame_bytes: usize,
    /// Most trace cycles a single detect exchange may stream.
    pub max_cycles: u64,
    /// How long a blocked payload read may take before the session dies.
    pub read_timeout: Duration,
    /// How long a session may sit between frames before it is closed.
    pub idle_timeout: Duration,
    /// Backoff hint attached to `Busy` rejections.
    pub retry_after_ms: u32,
    /// Requests taking longer than this are logged at `warn` level with
    /// their trace id (the slow-request log). `Duration::MAX` disables.
    pub slow_request: Duration,
    /// Size of the readiness engine's worker pool — how many sessions
    /// can be *actively serviced* at once. Idle sessions cost no
    /// worker, so this stays small even with thousands registered. The
    /// blocking engine ignores it (every session has its own thread).
    pub workers: usize,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_sessions: 8,
            max_frame_bytes: 1 << 20,
            max_cycles: 50_000_000,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            retry_after_ms: 100,
            slow_request: Duration::from_secs(1),
            workers: 4,
        }
    }
}

/// The worker-side fleet hook: what a `clockmark-serve` node does when
/// a fleet coordinator hands it work over the wire.
///
/// `crates/fleet` implements this against the campaign machinery;
/// `crates/serve` stays ignorant of campaigns and merely routes the
/// `ShardAssign`/`Heartbeat` frames here. A server without a handler
/// installed (see [`Server::with_fleet`]) answers `ShardAssign` with an
/// `Internal` error and `Heartbeat` with an idle report.
pub trait FleetService: Send + Sync {
    /// Runs one shard to completion (or checkpointed interruption) and
    /// returns its outcome. This call may run for minutes; it occupies
    /// one pool worker (readiness engine) or the session's own thread
    /// (blocking engine) for the duration.
    fn assign(&self, spec: &ShardSpec) -> Result<ShardOutcome, (ErrorCode, String)>;

    /// A cheap, current progress report for the heartbeat connection.
    fn heartbeat(&self) -> WorkerHeartbeat;
}

/// What a fleet worker hands back for a completed (or interrupted)
/// shard; travels as the `ShardResult` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// The shard this outcome answers.
    pub shard_id: u64,
    /// Whether every job in the shard has a result. `false` means the
    /// shard was interrupted after a checkpoint and should be
    /// reassigned (possibly to this same worker) to resume.
    pub complete: bool,
    /// The shard's `results.jsonl` contents, one encoded `JobOutcome`
    /// per line, already remapped to campaign-global job indices.
    pub outcomes: String,
}

/// Counters and flags shared between the engine, sessions, and the
/// owning handle.
struct Shared {
    limits: ServeLimits,
    start: Instant,
    draining: AtomicBool,
    active: AtomicUsize,
    total: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    algo_naive: AtomicU64,
    algo_folded: AtomicU64,
    algo_fft: AtomicU64,
    /// Sessions registered with the readiness poll set (0 under the
    /// blocking engine, which has no poll set).
    registered: AtomicUsize,
    /// Sessions queued for a pool worker (readiness engine only).
    readable: AtomicUsize,
    /// Requests currently inside the handler, either engine.
    in_flight: AtomicUsize,
    fleet: Option<Arc<dyn FleetService>>,
}

impl Shared {
    fn status(&self) -> ServerStatus {
        ServerStatus {
            active_sessions: self.active.load(Ordering::SeqCst) as u32,
            max_sessions: self.limits.max_sessions as u32,
            served: self.served.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            draining: self.draining.load(Ordering::SeqCst),
            uptime_secs: self.start.elapsed().as_secs(),
            total_sessions: self.total.load(Ordering::SeqCst),
            algo_naive: self.algo_naive.load(Ordering::SeqCst),
            algo_folded: self.algo_folded.load(Ordering::SeqCst),
            algo_fft: self.algo_fft.load(Ordering::SeqCst),
            registered: self.registered.load(Ordering::SeqCst) as u32,
            readable: self.readable.load(Ordering::SeqCst) as u32,
            in_flight: self.in_flight.load(Ordering::SeqCst) as u32,
        }
    }

    /// Counts one served verdict against the kernel that produced it.
    fn note_served(&self, algo: CpaAlgo) {
        self.served.fetch_add(1, Ordering::SeqCst);
        let slot = match algo {
            CpaAlgo::Naive => &self.algo_naive,
            CpaAlgo::Folded => &self.algo_folded,
            CpaAlgo::Fft => &self.algo_fft,
            // `CpaAlgo` is non-exhaustive; count unknown kernels as the
            // dispatch default so the mix still sums to `served`.
            _ => &self.algo_folded,
        };
        slot.fetch_add(1, Ordering::SeqCst);
        clockmark_obs::counter_add("serve.served", 1);
    }
}

/// Builds the Prometheus exposition the `Metrics` RPC returns: the
/// global recorder's snapshot (empty when observability is disabled)
/// with the server's own load series injected, so the RPC is useful
/// even in a process with no recorder installed.
fn metrics_text(shared: &Shared) -> String {
    let mut snapshot = clockmark_obs::recorder()
        .map(|r| r.snapshot())
        .unwrap_or_default();
    let status = shared.status();
    snapshot.gauges.extend([
        ("serve.uptime_seconds".to_owned(), status.uptime_secs as f64),
        (
            "serve.active_sessions".to_owned(),
            f64::from(status.active_sessions),
        ),
        (
            "serve.max_sessions".to_owned(),
            f64::from(status.max_sessions),
        ),
        (
            "serve.draining".to_owned(),
            f64::from(u8::from(status.draining)),
        ),
        (
            "serve.sessions_registered".to_owned(),
            f64::from(status.registered),
        ),
        (
            "serve.sessions_readable".to_owned(),
            f64::from(status.readable),
        ),
        (
            "serve.requests_in_flight".to_owned(),
            f64::from(status.in_flight),
        ),
    ]);
    snapshot.counters.extend([
        ("serve.served_verdicts".to_owned(), status.served),
        ("serve.rejected_connections".to_owned(), status.rejected),
        ("serve.sessions".to_owned(), status.total_sessions),
        ("serve.verdicts_naive".to_owned(), status.algo_naive),
        ("serve.verdicts_folded".to_owned(), status.algo_folded),
        ("serve.verdicts_fft".to_owned(), status.algo_fft),
    ]);
    clockmark_obs::prometheus_text(&snapshot)
}

/// A running detection server.
///
/// Returned by [`Server::bind`]; dropping the handle drains the server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    engine_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("status", &self.shared.status())
            .finish()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current load counters, as a `Status` request would report them.
    pub fn status(&self) -> ServerStatus {
        self.shared.status()
    }

    /// Whether a drain has been requested (by [`Self::shutdown`] or a
    /// wire `Shutdown` request).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains and stops the server: no new connections are admitted,
    /// in-flight sessions finish, metrics are flushed. Returns the
    /// final counters.
    pub fn shutdown(mut self) -> ServerStatus {
        self.begin_drain();
        if let Some(handle) = self.engine_thread.take() {
            let _ = handle.join();
        }
        self.shared.status()
    }

    /// Blocks until the engine exits on its own — used when a wire
    /// `Shutdown` request, not the owning process, ends the server.
    pub fn wait(mut self) -> ServerStatus {
        if let Some(handle) = self.engine_thread.take() {
            let _ = handle.join();
        }
        self.shared.status()
    }

    fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_drain();
        if let Some(handle) = self.engine_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Factory for [`ServerHandle`]s.
#[derive(Clone, Default)]
pub struct Server {
    limits: ServeLimits,
    fleet: Option<Arc<dyn FleetService>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("limits", &self.limits)
            .field("fleet", &self.fleet.is_some())
            .finish()
    }
}

impl Server {
    /// A server with [`ServeLimits::default`].
    pub fn new() -> Self {
        Server::default()
    }

    /// Overrides the resource limits.
    #[must_use]
    pub fn with_limits(mut self, limits: ServeLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Installs the fleet-worker hook: with this set, the server
    /// answers `ShardAssign` by running the shard through `fleet` and
    /// `Heartbeat` with its live progress report.
    #[must_use]
    pub fn with_fleet(mut self, fleet: Arc<dyn FleetService>) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Binds the listener and spawns the serving engine.
    ///
    /// Bind to port 0 to let the OS pick a free port; the chosen
    /// address is available via [`ServerHandle::local_addr`]. On unix
    /// the poll-based readiness engine serves the socket unless
    /// `CLOCKMARK_SERVE_BLOCKING=1` opts into the legacy
    /// thread-per-connection engine (the only engine elsewhere).
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("binding listener", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("setting listener nonblocking", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err("reading bound address", e))?;

        let shared = Arc::new(Shared {
            limits: self.limits,
            start: Instant::now(),
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            total: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            algo_naive: AtomicU64::new(0),
            algo_folded: AtomicU64::new(0),
            algo_fft: AtomicU64::new(0),
            registered: AtomicUsize::new(0),
            readable: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            fleet: self.fleet,
        });

        let engine_shared = Arc::clone(&shared);
        let engine_thread = std::thread::Builder::new()
            .name("clockmark-serve-engine".into())
            .spawn(move || engine_main(listener, engine_shared))
            .map_err(|e| io_err("spawning engine thread", e))?;

        Ok(ServerHandle {
            addr,
            shared,
            engine_thread: Some(engine_thread),
        })
    }
}

/// Picks the serving engine for this platform and process.
fn engine_main(listener: TcpListener, shared: Arc<Shared>) {
    #[cfg(unix)]
    if !blocking_engine_forced() {
        return readiness::readiness_loop(listener, shared);
    }
    accept_loop(listener, shared);
}

#[cfg(unix)]
fn blocking_engine_forced() -> bool {
    std::env::var_os("CLOCKMARK_SERVE_BLOCKING").is_some_and(|v| !v.is_empty() && v != "0")
}

// ---------------------------------------------------------------------
// Blocking engine: accept thread + one thread per admitted session.
// ---------------------------------------------------------------------

/// Decrements the active-session counter even if a session errors out
/// early.
struct SessionSlot<'a>(&'a Shared);

impl Drop for SessionSlot<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();

    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let admitted = shared
                    .active
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                        (n < shared.limits.max_sessions).then_some(n + 1)
                    })
                    .is_ok();
                let session_shared = Arc::clone(&shared);
                let spawn = std::thread::Builder::new()
                    .name("clockmark-serve-session".into())
                    .spawn(move || {
                        if admitted {
                            let _slot = SessionSlot(&session_shared);
                            session_shared.total.fetch_add(1, Ordering::SeqCst);
                            clockmark_obs::counter_add("serve.accept", 1);
                            run_session(stream, &session_shared);
                        } else {
                            session_shared.rejected.fetch_add(1, Ordering::SeqCst);
                            clockmark_obs::counter_add("serve.reject", 1);
                            reject_session(stream, &session_shared);
                        }
                    });
                match spawn {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => {
                        // Could not spawn; release the slot we reserved.
                        if admitted {
                            shared.active.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                sessions.retain(|h| !h.is_finished());
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted connection);
                // keep serving.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }

    // Graceful drain: the listener closes here (no new connections),
    // in-flight sessions run to completion, then metrics flush.
    drop(listener);
    for handle in sessions {
        let _ = handle.join();
    }
    clockmark_obs::flush();
}

/// Tells an over-capacity client to back off, then closes.
fn reject_session(mut stream: TcpStream, shared: &Shared) {
    // Keep the rejection path snappy: a client that never sends its
    // greeting must not pin this thread for the full read timeout.
    let _ = stream.set_read_timeout(Some(REJECT_BUDGET));
    if read_greeting(&mut stream).is_err() {
        return;
    }
    if write_greeting(&mut stream).is_err() {
        return;
    }
    let (ty, payload) = Response::Error {
        code: ErrorCode::Busy,
        retry_after_ms: shared.limits.retry_after_ms,
        message: format!("session pool full ({} active)", shared.limits.max_sessions),
    }
    .encode();
    if write_frame(&mut stream, ty, &payload).is_err() {
        return;
    }
    // Drain until the client hangs up (bounded by the reject budget):
    // closing while its first request sits unread in our receive buffer
    // would turn the close into an RST, which may discard the Busy
    // frame before the client reads it.
    let mut scratch = [0u8; 256];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

/// What a streamed detect exchange resolves to at `DetectFinish`.
enum ExchangeKind {
    /// Classic fixed-budget detect: fold everything, evaluate once.
    Plain(StreamingDetection),
    /// Sequential early-termination detect: the session freezes its
    /// fold once the acceptance rule fires, so later chunks cost only
    /// the `decided()` check. The client keeps streaming — the saving
    /// is server CPU, not wire bandwidth.
    Sequential(clockmark_cpa::SequentialDetection),
    /// Batched identification: one fold, scored against every candidate
    /// at finish.
    Identify {
        session: StreamingDetection,
        candidates: Vec<clockmark_cpa::CandidatePattern>,
    },
}

/// An in-progress streamed detect exchange.
struct DetectExchange {
    detector: Detector,
    kind: ExchangeKind,
    /// Cycles streamed by the client, counted independently of the
    /// session: a decided sequential session stops ingesting (its
    /// `cycles()` freezes), but the server's per-exchange cycle budget
    /// applies to what arrives on the wire.
    streamed: u64,
    /// Payload bytes received for this exchange (start + chunks).
    wire_bytes: u64,
}

/// The session's sticky trace context, set by [`Request::TraceContext`].
struct TraceCtx {
    trace_id: [u8; TRACE_ID_LEN],
    parent_span: u64,
    /// Server-side span id minted for the request in flight; echoed in
    /// the `TraceEcho` frame preceding each response.
    current_span: u64,
}

/// Per-session state threaded through the request handler.
struct SessionCtx {
    exchange: Option<DetectExchange>,
    trace: Option<TraceCtx>,
}

impl SessionCtx {
    fn new() -> Self {
        SessionCtx {
            exchange: None,
            trace: None,
        }
    }
}

/// What the session loop should do after handling one frame.
enum Flow {
    Continue,
    Close,
}

/// Short name of a request frame, used for span fields and logs.
fn request_name(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::DetectStart { .. } => "detect_start",
        Request::DetectChunk { .. } => "detect_chunk",
        Request::DetectFinish => "detect_finish",
        Request::DetectCorpus { .. } => "detect_corpus",
        Request::Status => "status",
        Request::Shutdown => "shutdown",
        Request::TraceContext { .. } => "trace_context",
        Request::Metrics => "metrics",
        Request::ShardAssign(_) => "shard_assign",
        Request::Heartbeat => "heartbeat",
        Request::DetectSequentialStart { .. } => "detect_sequential_start",
        Request::IdentifyStart { .. } => "identify_start",
    }
}

fn run_session(mut stream: TcpStream, shared: &Shared) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(shared.limits.read_timeout));
    if read_greeting(&mut stream).is_err() || write_greeting(&mut stream).is_err() {
        return;
    }

    let span = clockmark_obs::span("serve.session");
    let mut ctx = SessionCtx::new();
    let mut last_activity = Instant::now();

    loop {
        // Poll for the next frame's *type byte* in short slices so the
        // session notices a drain promptly and enforces the idle budget.
        // A 1-byte read either completes or consumes nothing, so a poll
        // timeout can never desynchronise the stream; the frame body is
        // then read under the full read timeout.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL.max(Duration::from_millis(1))));
        let mut frame_type = [0u8; 1];
        match std::io::Read::read_exact(&mut stream, &mut frame_type) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // No frame yet. An idle session ends when the server
                // drains or the idle budget runs out; one mid-exchange
                // is given until the read timeout to resume streaming.
                let budget = if ctx.exchange.is_some() {
                    shared.limits.read_timeout
                } else {
                    shared.limits.idle_timeout
                };
                let draining = shared.draining.load(Ordering::SeqCst);
                if (draining && ctx.exchange.is_none()) || last_activity.elapsed() > budget {
                    break;
                }
                continue;
            }
            Err(_) => break, // disconnect
        }
        match service_frame(&mut stream, shared, &mut ctx, frame_type[0]) {
            Flow::Continue => last_activity = Instant::now(),
            Flow::Close => break,
        }
    }
    drop(span);
}

/// Reads the remainder of a frame whose type byte has already arrived,
/// decodes it and dispatches the request — the request path shared by
/// both engines. Returns what the session loop should do next; any
/// transport failure maps to [`Flow::Close`].
fn service_frame(
    stream: &mut TcpStream,
    shared: &Shared,
    ctx: &mut SessionCtx,
    frame_type: u8,
) -> Flow {
    let _ = stream.set_read_timeout(Some(shared.limits.read_timeout));
    let payload = match crate::protocol::read_frame_rest(stream, shared.limits.max_frame_bytes) {
        Ok(payload) => payload,
        Err(ServeError::FrameTooLarge { len, max }) => {
            send_error(
                stream,
                None,
                ErrorCode::FrameTooLarge,
                0,
                &format!("frame payload of {len} bytes exceeds the {max}-byte limit"),
            );
            return Flow::Close;
        }
        Err(_) => return Flow::Close, // disconnect, stall, or garbled length
    };

    let wire_bytes = 5u64 + payload.len() as u64; // type byte + u32 length + payload
    let request = match Request::decode(frame_type, &payload) {
        Ok(request) => request,
        Err(e) => {
            send_error(stream, None, ErrorCode::Malformed, 0, &e.to_string());
            return Flow::Close;
        }
    };

    // Mint the server-side span id for this request up front so the
    // request span and the TraceEcho frame agree on it.
    if let Some(trace) = ctx.trace.as_mut() {
        trace.current_span = mint_span_id();
    }
    let frame = request_name(&request);
    let started = Instant::now();
    let request_span = {
        let mut s = clockmark_obs::span("serve.request")
            .field("frame", frame)
            .field("wire_bytes", wire_bytes);
        if let Some(trace) = ctx.trace.as_ref() {
            s = s
                .field("trace_id", trace_id_hex(&trace.trace_id))
                .field("span_id", trace.current_span)
                .field("parent_span", trace.parent_span);
        }
        s
    };
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    let flow = handle_request(stream, shared, ctx, request, wire_bytes);
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    drop(request_span);

    let elapsed = started.elapsed();
    clockmark_obs::counter_add("serve.requests", 1);
    clockmark_obs::counter_add("serve.wire_bytes", wire_bytes);
    clockmark_obs::observe("serve.request_seconds", elapsed.as_secs_f64());
    if elapsed >= shared.limits.slow_request {
        let trace = ctx
            .trace
            .as_ref()
            .map(|t| trace_id_hex(&t.trace_id))
            .unwrap_or_else(|| "-".to_string());
        clockmark_obs::warn!(
            "slow request: frame={frame} elapsed={:?} trace={trace}",
            elapsed
        );
    }
    flow
}

// ---------------------------------------------------------------------
// Readiness engine: poll(2) event loop + fixed worker pool (unix).
// ---------------------------------------------------------------------

#[cfg(unix)]
mod readiness {
    use super::*;
    use crate::poll::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL};
    use std::collections::VecDeque;
    use std::os::unix::io::AsRawFd;
    use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

    /// A connected session parked in (or checked out of) the poll set.
    struct Session {
        stream: TcpStream,
        ctx: SessionCtx,
        greeted: bool,
        last_activity: Instant,
    }

    /// One entry of the slot registry.
    ///
    /// Only the event loop moves `Idle → Busy` (dispatching to the
    /// queue) and only a worker moves `Busy → Idle`/`Empty`, so a
    /// session is never polled and serviced at the same time.
    enum Slot {
        Empty,
        Idle(Box<Session>),
        Busy,
    }

    enum Work {
        /// An admitted session with bytes (or a hangup) waiting.
        Session { idx: usize, session: Box<Session> },
        /// An over-capacity connection owed a `Busy` frame.
        Reject(TcpStream),
    }

    struct Engine {
        shared: Arc<Shared>,
        slots: Mutex<Vec<Slot>>,
        queue: Mutex<VecDeque<Work>>,
        queue_cv: Condvar,
        done: AtomicBool,
    }

    fn relock<'a, T>(
        r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
    ) -> MutexGuard<'a, T> {
        // A panicking worker must not wedge the whole server; the
        // registry and queue hold only owned state that stays valid.
        r.unwrap_or_else(PoisonError::into_inner)
    }

    pub(super) fn readiness_loop(listener: TcpListener, shared: Arc<Shared>) {
        let engine = Arc::new(Engine {
            shared: Arc::clone(&shared),
            slots: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            done: AtomicBool::new(false),
        });

        let workers: Vec<JoinHandle<()>> = (0..shared.limits.workers.max(1))
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::Builder::new()
                    .name(format!("clockmark-serve-worker-{i}"))
                    .spawn(move || worker_loop(&engine))
                    .expect("spawning pool worker")
            })
            .collect();

        let mut listener = Some(listener);
        let mut deferred: VecDeque<(TcpStream, Instant)> = VecDeque::new();
        loop {
            let draining = shared.draining.load(Ordering::SeqCst);
            if draining {
                // Drain step 1: close the listener, admit nothing new.
                listener = None;
            }
            if let Some(l) = &listener {
                accept_ready(l, &engine, &mut deferred);
            }
            retry_deferred(&engine, &mut deferred, draining);

            // Sweep budgets, then snapshot the descriptors to poll.
            let mut fds: Vec<PollFd> = Vec::new();
            let mut slot_of: Vec<usize> = Vec::new();
            let mut all_empty = true;
            {
                let mut slots = relock(engine.slots.lock());
                for (idx, slot) in slots.iter_mut().enumerate() {
                    let close = match slot {
                        Slot::Empty => continue,
                        Slot::Busy => {
                            all_empty = false;
                            continue;
                        }
                        Slot::Idle(session) => {
                            all_empty = false;
                            let budget = if session.ctx.exchange.is_some() {
                                shared.limits.read_timeout
                            } else {
                                shared.limits.idle_timeout
                            };
                            // Drain step 2: sessions between exchanges
                            // close now; one mid-exchange keeps its
                            // read-timeout budget and runs to completion.
                            (draining && session.ctx.exchange.is_none())
                                || session.last_activity.elapsed() > budget
                        }
                    };
                    if close {
                        *slot = Slot::Empty;
                        shared.registered.fetch_sub(1, Ordering::SeqCst);
                        shared.active.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    let Slot::Idle(session) = slot else {
                        unreachable!()
                    };
                    fds.push(PollFd {
                        fd: session.stream.as_raw_fd(),
                        events: POLLIN,
                        revents: 0,
                    });
                    slot_of.push(idx);
                }
            }

            if draining && all_empty && relock(engine.queue.lock()).is_empty() {
                break;
            }

            // Wait for readiness (or the tick) and dispatch.
            let timeout = POLL_INTERVAL.as_millis() as i32;
            if fds.is_empty() {
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
            let n_ready = match poll_fds(&mut fds, timeout) {
                Ok(n) => n,
                Err(_) => {
                    std::thread::sleep(POLL_INTERVAL);
                    continue;
                }
            };
            if n_ready == 0 {
                continue;
            }
            let mut dispatched = Vec::new();
            {
                let mut slots = relock(engine.slots.lock());
                for (pos, fd) in fds.iter().enumerate() {
                    if fd.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) == 0 {
                        continue;
                    }
                    let idx = slot_of[pos];
                    // The slot is still Idle: workers never touch Idle
                    // slots and only this thread checks sessions out.
                    if let Slot::Idle(session) = std::mem::replace(&mut slots[idx], Slot::Busy) {
                        dispatched.push(Work::Session { idx, session });
                    }
                }
            }
            if !dispatched.is_empty() {
                shared
                    .readable
                    .fetch_add(dispatched.len(), Ordering::SeqCst);
                let mut queue = relock(engine.queue.lock());
                queue.extend(dispatched);
                drop(queue);
                engine.queue_cv.notify_all();
            }
        }

        // Drain step 3: stop the pool, join it, flush metrics.
        engine.done.store(true, Ordering::SeqCst);
        engine.queue_cv.notify_all();
        for handle in workers {
            let _ = handle.join();
        }
        clockmark_obs::flush();
    }

    /// Accepts every connection currently pending on the listener.
    /// Over-capacity connections are parked in `deferred` rather than
    /// rejected outright — see [`ADMIT_GRACE`].
    fn accept_ready(
        listener: &TcpListener,
        engine: &Engine,
        deferred: &mut VecDeque<(TcpStream, Instant)>,
    ) {
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => return, // transient (e.g. aborted connection)
            };
            if let Err(stream) = try_admit(engine, stream) {
                deferred.push_back((stream, Instant::now()));
            }
        }
    }

    /// Re-tries admission for parked connections; entries that outlive
    /// [`ADMIT_GRACE`] (or arrive at a draining server) get the `Busy`
    /// rejection they were owed.
    fn retry_deferred(
        engine: &Engine,
        deferred: &mut VecDeque<(TcpStream, Instant)>,
        draining: bool,
    ) {
        for _ in 0..deferred.len() {
            let (stream, since) = deferred.pop_front().expect("len-bounded");
            if draining {
                reject(engine, stream);
                continue;
            }
            if let Err(stream) = try_admit(engine, stream) {
                if since.elapsed() >= ADMIT_GRACE {
                    reject(engine, stream);
                } else {
                    deferred.push_back((stream, since));
                }
            }
        }
    }

    /// Admission control plus slot installation. Returns the stream
    /// back when the pool is at capacity so the caller can defer or
    /// reject it; a connection dead at `set_nodelay` is silently
    /// dropped (admitting it would only waste a dispatch).
    fn try_admit(engine: &Engine, stream: TcpStream) -> Result<(), TcpStream> {
        let shared = &engine.shared;
        let admitted = shared
            .active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < shared.limits.max_sessions).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            return Err(stream);
        }
        if stream.set_nodelay(true).is_err() {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            return Ok(());
        }
        shared.total.fetch_add(1, Ordering::SeqCst);
        clockmark_obs::counter_add("serve.accept", 1);
        let session = Box::new(Session {
            stream,
            ctx: SessionCtx::new(),
            greeted: false,
            last_activity: Instant::now(),
        });
        let mut slots = relock(engine.slots.lock());
        match slots.iter().position(|s| matches!(s, Slot::Empty)) {
            Some(idx) => slots[idx] = Slot::Idle(session),
            None => slots.push(Slot::Idle(session)),
        }
        shared.registered.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Queues the `Busy` rejection of one connection.
    fn reject(engine: &Engine, stream: TcpStream) {
        let shared = &engine.shared;
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        clockmark_obs::counter_add("serve.reject", 1);
        let mut queue = relock(engine.queue.lock());
        queue.push_back(Work::Reject(stream));
        drop(queue);
        engine.queue_cv.notify_one();
    }

    fn worker_loop(engine: &Engine) {
        loop {
            let work = {
                let mut queue = relock(engine.queue.lock());
                loop {
                    if let Some(work) = queue.pop_front() {
                        break Some(work);
                    }
                    if engine.done.load(Ordering::SeqCst) {
                        break None;
                    }
                    queue = relock(engine.queue_cv.wait(queue));
                }
            };
            let Some(work) = work else { return };
            match work {
                Work::Reject(stream) => reject_session(stream, &engine.shared),
                Work::Session { idx, mut session } => {
                    engine.shared.readable.fetch_sub(1, Ordering::SeqCst);
                    let keep = service_session(&mut session, &engine.shared);
                    let mut slots = relock(engine.slots.lock());
                    if keep {
                        session.last_activity = Instant::now();
                        slots[idx] = Slot::Idle(session);
                    } else {
                        slots[idx] = Slot::Empty;
                        drop(slots);
                        engine.shared.registered.fetch_sub(1, Ordering::SeqCst);
                        engine.shared.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
        }
    }

    /// Services one checked-out session: greet it if this is its first
    /// wakeup, then drain every frame already buffered on the socket.
    /// Returns whether the session should go back into the poll set.
    fn service_session(session: &mut Session, shared: &Shared) -> bool {
        let stream = &mut session.stream;
        if !session.greeted {
            // Readiness fired, so at least the greeting's first bytes
            // are here; a stalled remainder gets the read budget.
            let _ = stream.set_read_timeout(Some(shared.limits.read_timeout));
            if read_greeting(stream).is_err() || write_greeting(stream).is_err() {
                return false;
            }
            session.greeted = true;
        }
        loop {
            // The first iteration after a wakeup normally finds a type
            // byte at once; once the burst is drained, hand the session
            // back to the poll set instead of camping on the socket —
            // level-triggered polling re-signals anything left over.
            let _ = stream.set_read_timeout(Some(BURST_POLL));
            let mut frame_type = [0u8; 1];
            match std::io::Read::read_exact(stream, &mut frame_type) {
                Ok(()) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return true;
                }
                Err(_) => return false, // disconnect
            }
            match service_frame(stream, shared, &mut session.ctx, frame_type[0]) {
                Flow::Continue => session.last_activity = Instant::now(),
                Flow::Close => return false,
            }
        }
    }
}

fn handle_request(
    stream: &mut TcpStream,
    shared: &Shared,
    ctx: &mut SessionCtx,
    request: Request,
    wire_bytes: u64,
) -> Flow {
    let trace = ctx.trace.take();
    let flow = handle_request_inner(stream, shared, ctx, trace.as_ref(), request, wire_bytes);
    if ctx.trace.is_none() {
        ctx.trace = trace;
    }
    flow
}

fn handle_request_inner(
    stream: &mut TcpStream,
    shared: &Shared,
    ctx: &mut SessionCtx,
    trace: Option<&TraceCtx>,
    request: Request,
    wire_bytes: u64,
) -> Flow {
    let exchange = &mut ctx.exchange;
    match request {
        Request::Ping => send_response(stream, trace, &Response::Pong),
        Request::Status => send_response(stream, trace, &Response::Status(shared.status())),
        Request::Metrics => send_response(
            stream,
            trace,
            &Response::Metrics {
                text: metrics_text(shared),
            },
        ),
        Request::TraceContext {
            trace_id,
            parent_span,
        } => {
            // Sticky and unacknowledged, like DetectStart: the context
            // takes effect on the next request's response.
            ctx.trace = Some(TraceCtx {
                trace_id,
                parent_span,
                current_span: mint_span_id(),
            });
            Flow::Continue
        }
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            send_response(stream, trace, &Response::ShutdownAck);
            Flow::Close
        }
        Request::DetectStart {
            pattern,
            algo,
            criterion,
        } => {
            if exchange.is_some() {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "DetectStart while a detect exchange is already open",
                );
            }
            if shared.draining.load(Ordering::SeqCst) {
                return fail(stream, trace, ErrorCode::Draining, "server is draining");
            }
            let mut options = DetectOptions::default().with_criterion(criterion);
            if let Some(algo) = algo {
                options = options.with_algo(algo);
            }
            match Detector::with_options(&pattern, options) {
                Ok(detector) => {
                    let session = detector.detect_streaming();
                    *exchange = Some(DetectExchange {
                        detector,
                        kind: ExchangeKind::Plain(session),
                        streamed: 0,
                        wire_bytes,
                    });
                    Flow::Continue
                }
                Err(e) => fail(stream, trace, ErrorCode::Cpa, &e.to_string()),
            }
        }
        Request::DetectSequentialStart {
            pattern,
            algo,
            criterion,
            options: seq_options,
        } => {
            if exchange.is_some() {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "DetectSequentialStart while a detect exchange is already open",
                );
            }
            if shared.draining.load(Ordering::SeqCst) {
                return fail(stream, trace, ErrorCode::Draining, "server is draining");
            }
            let mut options = DetectOptions::default().with_criterion(criterion);
            if let Some(algo) = algo {
                options = options.with_algo(algo);
            }
            match Detector::with_options(&pattern, options) {
                Ok(detector) => {
                    let session = detector.detect_sequential_streaming(seq_options);
                    *exchange = Some(DetectExchange {
                        detector,
                        kind: ExchangeKind::Sequential(session),
                        streamed: 0,
                        wire_bytes,
                    });
                    Flow::Continue
                }
                Err(e) => fail(stream, trace, ErrorCode::Cpa, &e.to_string()),
            }
        }
        Request::IdentifyStart {
            pattern,
            algo,
            criterion,
            candidates,
        } => {
            if exchange.is_some() {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "IdentifyStart while a detect exchange is already open",
                );
            }
            if shared.draining.load(Ordering::SeqCst) {
                return fail(stream, trace, ErrorCode::Draining, "server is draining");
            }
            if candidates.is_empty() {
                return fail(
                    stream,
                    trace,
                    ErrorCode::Cpa,
                    "identify needs at least one candidate pattern",
                );
            }
            let mut options = DetectOptions::default().with_criterion(criterion);
            if let Some(algo) = algo {
                options = options.with_algo(algo);
            }
            match Detector::with_options(&pattern, options) {
                Ok(detector) => {
                    let session = detector.detect_streaming();
                    *exchange = Some(DetectExchange {
                        detector,
                        kind: ExchangeKind::Identify {
                            session,
                            candidates,
                        },
                        streamed: 0,
                        wire_bytes,
                    });
                    Flow::Continue
                }
                Err(e) => fail(stream, trace, ErrorCode::Cpa, &e.to_string()),
            }
        }
        Request::DetectChunk { samples } => {
            let Some(open) = exchange.as_mut() else {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "DetectChunk without DetectStart",
                );
            };
            let next = open.streamed.saturating_add(samples.len() as u64);
            if next > shared.limits.max_cycles {
                *exchange = None;
                return fail(
                    stream,
                    trace,
                    ErrorCode::TooManyCycles,
                    &format!(
                        "trace exceeds the server's {}-cycle budget",
                        shared.limits.max_cycles
                    ),
                );
            }
            open.streamed = next;
            open.wire_bytes = open.wire_bytes.saturating_add(wire_bytes);
            match &mut open.kind {
                ExchangeKind::Plain(session) => session.push_chunk(&samples),
                ExchangeKind::Sequential(session) => session.push_chunk(&samples),
                ExchangeKind::Identify { session, .. } => session.push_chunk(&samples),
            }
            Flow::Continue
        }
        Request::DetectFinish => {
            let Some(open) = exchange.take() else {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "DetectFinish without DetectStart",
                );
            };
            finish_exchange(stream, shared, trace, open, wire_bytes)
        }
        Request::DetectCorpus {
            corpus,
            trace: trace_name,
            pattern,
            algo,
            criterion,
        } => {
            if exchange.is_some() {
                return fail(
                    stream,
                    trace,
                    ErrorCode::BadSequence,
                    "DetectCorpus while a detect exchange is open",
                );
            }
            if shared.draining.load(Ordering::SeqCst) {
                return fail(stream, trace, ErrorCode::Draining, "server is draining");
            }
            match detect_corpus(
                shared,
                &corpus,
                &trace_name,
                &pattern,
                algo,
                criterion,
                trace,
            ) {
                Ok((detection, algo)) => {
                    shared.note_served(algo);
                    send_response(stream, trace, &Response::Detection(detection))
                }
                Err((code, message)) => fail(stream, trace, code, &message),
            }
        }
        Request::ShardAssign(spec) => {
            if shared.draining.load(Ordering::SeqCst) {
                return fail(stream, trace, ErrorCode::Draining, "server is draining");
            }
            let Some(fleet) = shared.fleet.as_ref() else {
                return fail(
                    stream,
                    trace,
                    ErrorCode::Internal,
                    "this server is not a fleet worker (no fleet service installed)",
                );
            };
            // Runs the whole shard before answering; the coordinator
            // holds this connection open as the shard's completion
            // signal and heartbeats on a separate one.
            let span = clockmark_obs::span("serve.shard")
                .field("shard_id", spec.shard_id)
                .field("jobs", spec.jobs.len() as u64);
            let outcome = fleet.assign(&spec);
            drop(span);
            match outcome {
                Ok(outcome) => send_response(
                    stream,
                    trace,
                    &Response::ShardResult {
                        shard_id: outcome.shard_id,
                        complete: outcome.complete,
                        outcomes: outcome.outcomes,
                    },
                ),
                Err((code, message)) => fail(stream, trace, code, &message),
            }
        }
        Request::Heartbeat => {
            let beat = shared
                .fleet
                .as_ref()
                .map(|fleet| fleet.heartbeat())
                .unwrap_or_default();
            send_response(stream, trace, &Response::Heartbeat(beat))
        } // `Request` is non_exhaustive for downstream crates only; within
          // the defining crate the match above is already exhaustive.
    }
}

/// Resolves a finished detect exchange into its response frame: the
/// plain verdict, the sequential verdict plus checkpoint trail, or the
/// ranked identification ledger.
fn finish_exchange(
    stream: &mut TcpStream,
    shared: &Shared,
    trace: Option<&TraceCtx>,
    open: DetectExchange,
    wire_bytes: u64,
) -> Flow {
    let algo = open.detector.resolved_algo();
    let wire_total = open.wire_bytes.saturating_add(wire_bytes);
    let with_trace = |mut span: clockmark_obs::Span| {
        if let Some(t) = trace {
            span = span
                .field("trace_id", trace_id_hex(&t.trace_id))
                .field("parent_span", t.current_span);
        }
        span
    };
    match open.kind {
        ExchangeKind::Plain(session) => {
            let mut detect_span = with_trace(
                clockmark_obs::span("serve.detect")
                    .field("cycles", session.cycles())
                    .field("period", session.period() as u64)
                    .field("algo", algo.as_str())
                    .field("wire_bytes", wire_total),
            );
            let outcome = session
                .spectrum()
                .map(|spectrum| clockmark_cpa::TraceDetection {
                    result: open.detector.criterion().evaluate(&spectrum),
                    cycles: session.cycles(),
                });
            if let Ok(detection) = &outcome {
                detect_span = detect_span
                    .field("peak_rho", detection.result.peak_rho)
                    .field("detected", detection.result.detected);
            }
            drop(detect_span);
            match outcome {
                Ok(detection) => {
                    clockmark_obs::observe("serve.detect.cycles_consumed", detection.cycles as f64);
                    shared.note_served(algo);
                    send_response(stream, trace, &Response::Detection(detection))
                }
                Err(e) => fail(stream, trace, ErrorCode::Cpa, &e.to_string()),
            }
        }
        ExchangeKind::Sequential(session) => {
            let detect_span = with_trace(
                clockmark_obs::span("serve.detect")
                    .field("mode", "sequential")
                    .field("streamed", open.streamed)
                    .field("period", session.period() as u64)
                    .field("algo", algo.as_str())
                    .field("wire_bytes", wire_total),
            );
            let outcome = session.finalize();
            let detect_span = detect_span
                .field("cycles", outcome.cycles_consumed)
                .field("early_stopped", outcome.early_stopped)
                .field("peak_rho", outcome.result.peak_rho)
                .field("detected", outcome.result.detected);
            drop(detect_span);
            clockmark_obs::observe(
                "serve.detect.cycles_consumed",
                outcome.cycles_consumed as f64,
            );
            shared.note_served(algo);
            send_response(stream, trace, &Response::SequentialDetection(outcome))
        }
        ExchangeKind::Identify {
            session,
            candidates,
        } => {
            let identify_span = with_trace(
                clockmark_obs::span("serve.identify")
                    .field("cycles", session.cycles())
                    .field("period", session.period() as u64)
                    .field("candidates", candidates.len() as u64)
                    .field("algo", algo.as_str())
                    .field("wire_bytes", wire_total),
            );
            let outcome = session.identify(&candidates);
            drop(identify_span);
            match outcome {
                Ok(identification) => {
                    shared.note_served(algo);
                    send_response(stream, trace, &Response::Identification(identification))
                }
                Err(e) => fail(stream, trace, ErrorCode::Cpa, &e.to_string()),
            }
        }
    }
}

/// Runs a corpus-backed detect and classifies any failure for the wire.
/// Returns the verdict together with the CPA kernel that produced it.
#[allow(clippy::too_many_arguments)]
fn detect_corpus(
    shared: &Shared,
    corpus: &str,
    trace: &str,
    pattern: &[bool],
    algo: Option<clockmark_cpa::CpaAlgo>,
    criterion: clockmark_cpa::DetectionCriterion,
    trace_ctx: Option<&TraceCtx>,
) -> Result<(clockmark_cpa::TraceDetection, CpaAlgo), (ErrorCode, String)> {
    let mut options = DetectOptions::default().with_criterion(criterion);
    if let Some(algo) = algo {
        options = options.with_algo(algo);
    }
    let detector =
        Detector::with_options(pattern, options).map_err(|e| (ErrorCode::Cpa, e.to_string()))?;
    let resolved = detector.resolved_algo();

    let store =
        clockmark_corpus::Corpus::open(corpus).map_err(|e| (ErrorCode::Corpus, e.to_string()))?;
    let entry = store.entry(trace).ok_or_else(|| {
        (
            ErrorCode::Corpus,
            format!("no trace named {trace:?} in corpus"),
        )
    })?;
    if entry.cycles > shared.limits.max_cycles {
        return Err((
            ErrorCode::TooManyCycles,
            format!(
                "trace holds {} cycles, over the server's {}-cycle budget",
                entry.cycles, shared.limits.max_cycles
            ),
        ));
    }
    // Memory-mapped where the platform allows it (buffered fallback /
    // CLOCKMARK_NO_MMAP opt-out); repeated detect-corpus requests over
    // the same trace then stream straight from the page cache.
    let reader = store
        .source(trace)
        .map_err(|e| (ErrorCode::Corpus, e.to_string()))?;

    let mut detect_span = clockmark_obs::span("serve.detect")
        .field("cycles", entry.cycles)
        .field("period", pattern.len() as u64)
        .field("algo", resolved.as_str())
        .field("zero_copy", u64::from(reader.is_zero_copy()));
    if let Some(t) = trace_ctx {
        detect_span = detect_span
            .field("trace_id", trace_id_hex(&t.trace_id))
            .field("parent_span", t.current_span);
    }
    let outcome = detector.detect_trace(reader);
    if let Ok(detection) = &outcome {
        detect_span = detect_span
            .field("peak_rho", detection.result.peak_rho)
            .field("detected", detection.result.detected);
    }
    drop(detect_span);

    outcome.map(|detection| (detection, resolved)).map_err(|e| {
        let code = match &e {
            clockmark_cpa::TraceInputError::Cpa(_) => ErrorCode::Cpa,
            clockmark_cpa::TraceInputError::Input(_) => ErrorCode::Corpus,
        };
        (code, e.to_string())
    })
}

/// Writes a response frame, preceded by a [`Response::TraceEcho`] frame
/// carrying the server span id for this request while a trace context
/// is in effect.
fn send_response(stream: &mut TcpStream, trace: Option<&TraceCtx>, response: &Response) -> Flow {
    if let Some(t) = trace {
        let (ty, payload) = Response::TraceEcho {
            trace_id: t.trace_id,
            span_id: t.current_span,
        }
        .encode();
        if write_frame(stream, ty, &payload).is_err() {
            return Flow::Close;
        }
    }
    let (ty, payload) = response.encode();
    match write_frame(stream, ty, &payload) {
        Ok(()) => Flow::Continue,
        Err(_) => Flow::Close,
    }
}

fn send_error(
    stream: &mut impl Write,
    trace: Option<&TraceCtx>,
    code: ErrorCode,
    retry_after_ms: u32,
    message: &str,
) {
    if let Some(t) = trace {
        let (ty, payload) = Response::TraceEcho {
            trace_id: t.trace_id,
            span_id: t.current_span,
        }
        .encode();
        if write_frame(stream, ty, &payload).is_err() {
            return;
        }
    }
    let (ty, payload) = Response::Error {
        code,
        retry_after_ms,
        message: message.to_string(),
    }
    .encode();
    let _ = write_frame(stream, ty, &payload);
}

/// Reports a request failure and keeps the connection alive: the frame
/// that failed was still well-formed, so the session stays usable.
fn fail(stream: &mut TcpStream, trace: Option<&TraceCtx>, code: ErrorCode, message: &str) -> Flow {
    clockmark_obs::counter_add("serve.errors", 1);
    send_error(stream, trace, code, 0, message);
    Flow::Continue
}
