//! The concurrent detection server.
//!
//! One accept thread polls a nonblocking [`TcpListener`]; each admitted
//! connection gets a session thread from a bounded pool. When the pool
//! is full new connections are *rejected immediately* with a `Busy`
//! error frame carrying a retry hint — the server never queues work it
//! cannot start, so client latency is either "being served" or "told to
//! back off", never "silently parked".
//!
//! Shutdown is a drain: the accept loop stops admitting, in-flight
//! sessions run to completion (idle ones close at their next poll
//! tick), and observability metrics are flushed before
//! [`ServerHandle::shutdown`] returns.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use clockmark_cpa::{DetectOptions, Detector, StreamingDetection};

use crate::error::{io_err, ServeError};
use crate::protocol::{
    read_greeting, write_frame, write_greeting, ErrorCode, Request, Response, ServerStatus,
};

/// Poll interval of the accept loop and of idle session reads. Short
/// enough that drain latency is imperceptible, long enough to keep an
/// idle server off the scheduler.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Resource limits a server enforces per connection and overall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeLimits {
    /// Concurrent session cap; further connections get `Busy`.
    pub max_sessions: usize,
    /// Largest frame payload either side may send, in bytes.
    pub max_frame_bytes: usize,
    /// Most trace cycles a single detect exchange may stream.
    pub max_cycles: u64,
    /// How long a blocked payload read may take before the session dies.
    pub read_timeout: Duration,
    /// How long a session may sit between frames before it is closed.
    pub idle_timeout: Duration,
    /// Backoff hint attached to `Busy` rejections.
    pub retry_after_ms: u32,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_sessions: 8,
            max_frame_bytes: 1 << 20,
            max_cycles: 50_000_000,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            retry_after_ms: 100,
        }
    }
}

/// Counters and flags shared between the accept loop, sessions, and the
/// owning handle.
struct Shared {
    limits: ServeLimits,
    draining: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    rejected: AtomicU64,
}

impl Shared {
    fn status(&self) -> ServerStatus {
        ServerStatus {
            active_sessions: self.active.load(Ordering::SeqCst) as u32,
            max_sessions: self.limits.max_sessions as u32,
            served: self.served.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            draining: self.draining.load(Ordering::SeqCst),
        }
    }
}

/// A running detection server.
///
/// Returned by [`Server::bind`]; dropping the handle drains the server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("status", &self.shared.status())
            .finish()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current load counters, as a `Status` request would report them.
    pub fn status(&self) -> ServerStatus {
        self.shared.status()
    }

    /// Whether a drain has been requested (by [`Self::shutdown`] or a
    /// wire `Shutdown` request).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Drains and stops the server: no new connections are admitted,
    /// in-flight sessions finish, metrics are flushed. Returns the
    /// final counters.
    pub fn shutdown(mut self) -> ServerStatus {
        self.begin_drain();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.shared.status()
    }

    /// Blocks until the accept loop exits on its own — used when a wire
    /// `Shutdown` request, not the owning process, ends the server.
    pub fn wait(mut self) -> ServerStatus {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.shared.status()
    }

    fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_drain();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Factory for [`ServerHandle`]s.
#[derive(Debug, Clone, Default)]
pub struct Server {
    limits: ServeLimits,
}

impl Server {
    /// A server with [`ServeLimits::default`].
    pub fn new() -> Self {
        Server::default()
    }

    /// Overrides the resource limits.
    #[must_use]
    pub fn with_limits(mut self, limits: ServeLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Binds the listener and spawns the accept loop.
    ///
    /// Bind to port 0 to let the OS pick a free port; the chosen
    /// address is available via [`ServerHandle::local_addr`].
    pub fn bind(self, addr: impl ToSocketAddrs) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("binding listener", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("setting listener nonblocking", e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| io_err("reading bound address", e))?;

        let shared = Arc::new(Shared {
            limits: self.limits,
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("clockmark-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| io_err("spawning accept thread", e))?;

        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Decrements the active-session counter even if a session errors out
/// early.
struct SessionSlot<'a>(&'a Shared);

impl Drop for SessionSlot<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();

    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let admitted = shared
                    .active
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                        (n < shared.limits.max_sessions).then_some(n + 1)
                    })
                    .is_ok();
                let session_shared = Arc::clone(&shared);
                let spawn = std::thread::Builder::new()
                    .name("clockmark-serve-session".into())
                    .spawn(move || {
                        if admitted {
                            let _slot = SessionSlot(&session_shared);
                            clockmark_obs::counter_add("serve.accept", 1);
                            run_session(stream, &session_shared);
                        } else {
                            session_shared.rejected.fetch_add(1, Ordering::SeqCst);
                            clockmark_obs::counter_add("serve.reject", 1);
                            reject_session(stream, &session_shared);
                        }
                    });
                match spawn {
                    Ok(handle) => sessions.push(handle),
                    Err(_) => {
                        // Could not spawn; release the slot we reserved.
                        if admitted {
                            shared.active.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                sessions.retain(|h| !h.is_finished());
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted connection);
                // keep serving.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }

    // Graceful drain: the listener closes here (no new connections),
    // in-flight sessions run to completion, then metrics flush.
    drop(listener);
    for handle in sessions {
        let _ = handle.join();
    }
    clockmark_obs::flush();
}

/// Tells an over-capacity client to back off, then closes.
fn reject_session(mut stream: TcpStream, shared: &Shared) {
    // Keep the rejection path snappy: a client that never sends its
    // greeting must not pin this thread for the full read timeout.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    if read_greeting(&mut stream).is_err() {
        return;
    }
    if write_greeting(&mut stream).is_err() {
        return;
    }
    let (ty, payload) = Response::Error {
        code: ErrorCode::Busy,
        retry_after_ms: shared.limits.retry_after_ms,
        message: format!("session pool full ({} active)", shared.limits.max_sessions),
    }
    .encode();
    let _ = write_frame(&mut stream, ty, &payload);
}

/// An in-progress streamed detect exchange.
struct DetectExchange {
    detector: Detector,
    session: StreamingDetection,
}

/// What the session loop should do after handling one frame.
enum Flow {
    Continue,
    Close,
}

fn run_session(mut stream: TcpStream, shared: &Shared) {
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(shared.limits.read_timeout));
    if read_greeting(&mut stream).is_err() || write_greeting(&mut stream).is_err() {
        return;
    }

    let span = clockmark_obs::span("serve.session");
    let mut exchange: Option<DetectExchange> = None;
    let mut last_activity = Instant::now();

    loop {
        // Poll for the next frame's *type byte* in short slices so the
        // session notices a drain promptly and enforces the idle budget.
        // A 1-byte read either completes or consumes nothing, so a poll
        // timeout can never desynchronise the stream; the frame body is
        // then read under the full read timeout.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL.max(Duration::from_millis(1))));
        let mut frame_type = [0u8; 1];
        match std::io::Read::read_exact(&mut stream, &mut frame_type) {
            Ok(()) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // No frame yet. An idle session ends when the server
                // drains or the idle budget runs out; one mid-exchange
                // is given until the read timeout to resume streaming.
                let budget = if exchange.is_some() {
                    shared.limits.read_timeout
                } else {
                    shared.limits.idle_timeout
                };
                let draining = shared.draining.load(Ordering::SeqCst);
                if (draining && exchange.is_none()) || last_activity.elapsed() > budget {
                    break;
                }
                continue;
            }
            Err(_) => break, // disconnect
        }
        let _ = stream.set_read_timeout(Some(shared.limits.read_timeout));
        let payload =
            match crate::protocol::read_frame_rest(&mut stream, shared.limits.max_frame_bytes) {
                Ok(payload) => payload,
                Err(ServeError::FrameTooLarge { len, max }) => {
                    send_error(
                        &mut stream,
                        ErrorCode::FrameTooLarge,
                        0,
                        &format!("frame payload of {len} bytes exceeds the {max}-byte limit"),
                    );
                    break;
                }
                Err(_) => break, // disconnect, stall, or garbled length
            };
        last_activity = Instant::now();

        let request = match Request::decode(frame_type[0], &payload) {
            Ok(request) => request,
            Err(e) => {
                send_error(&mut stream, ErrorCode::Malformed, 0, &e.to_string());
                break;
            }
        };

        match handle_request(&mut stream, shared, &mut exchange, request) {
            Flow::Continue => {}
            Flow::Close => break,
        }
    }
    drop(span);
}

fn handle_request(
    stream: &mut TcpStream,
    shared: &Shared,
    exchange: &mut Option<DetectExchange>,
    request: Request,
) -> Flow {
    match request {
        Request::Ping => send_response(stream, &Response::Pong),
        Request::Status => send_response(stream, &Response::Status(shared.status())),
        Request::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            send_response(stream, &Response::ShutdownAck);
            Flow::Close
        }
        Request::DetectStart {
            pattern,
            algo,
            criterion,
        } => {
            if exchange.is_some() {
                return fail(
                    stream,
                    ErrorCode::BadSequence,
                    "DetectStart while a detect exchange is already open",
                );
            }
            if shared.draining.load(Ordering::SeqCst) {
                return fail(stream, ErrorCode::Draining, "server is draining");
            }
            let mut options = DetectOptions::default().with_criterion(criterion);
            if let Some(algo) = algo {
                options = options.with_algo(algo);
            }
            match Detector::with_options(&pattern, options) {
                Ok(detector) => {
                    let session = detector.detect_streaming();
                    *exchange = Some(DetectExchange { detector, session });
                    Flow::Continue
                }
                Err(e) => fail(stream, ErrorCode::Cpa, &e.to_string()),
            }
        }
        Request::DetectChunk { samples } => {
            let Some(open) = exchange.as_mut() else {
                return fail(
                    stream,
                    ErrorCode::BadSequence,
                    "DetectChunk without DetectStart",
                );
            };
            let next = open.session.cycles().saturating_add(samples.len() as u64);
            if next > shared.limits.max_cycles {
                *exchange = None;
                return fail(
                    stream,
                    ErrorCode::TooManyCycles,
                    &format!(
                        "trace exceeds the server's {}-cycle budget",
                        shared.limits.max_cycles
                    ),
                );
            }
            open.session.push_chunk(&samples);
            Flow::Continue
        }
        Request::DetectFinish => {
            let Some(open) = exchange.take() else {
                return fail(
                    stream,
                    ErrorCode::BadSequence,
                    "DetectFinish without DetectStart",
                );
            };
            let detect_span = clockmark_obs::span("serve.detect")
                .field("cycles", open.session.cycles())
                .field("period", open.session.period() as u64);
            let outcome = open
                .session
                .spectrum()
                .map(|spectrum| clockmark_cpa::TraceDetection {
                    result: open.detector.criterion().evaluate(&spectrum),
                    cycles: open.session.cycles(),
                });
            drop(detect_span);
            match outcome {
                Ok(detection) => {
                    shared.served.fetch_add(1, Ordering::SeqCst);
                    send_response(stream, &Response::Detection(detection))
                }
                Err(e) => fail(stream, ErrorCode::Cpa, &e.to_string()),
            }
        }
        Request::DetectCorpus {
            corpus,
            trace,
            pattern,
            algo,
            criterion,
        } => {
            if exchange.is_some() {
                return fail(
                    stream,
                    ErrorCode::BadSequence,
                    "DetectCorpus while a detect exchange is open",
                );
            }
            if shared.draining.load(Ordering::SeqCst) {
                return fail(stream, ErrorCode::Draining, "server is draining");
            }
            match detect_corpus(shared, &corpus, &trace, &pattern, algo, criterion) {
                Ok(detection) => {
                    shared.served.fetch_add(1, Ordering::SeqCst);
                    send_response(stream, &Response::Detection(detection))
                }
                Err((code, message)) => fail(stream, code, &message),
            }
        }
    }
}

/// Runs a corpus-backed detect and classifies any failure for the wire.
fn detect_corpus(
    shared: &Shared,
    corpus: &str,
    trace: &str,
    pattern: &[bool],
    algo: Option<clockmark_cpa::CpaAlgo>,
    criterion: clockmark_cpa::DetectionCriterion,
) -> Result<clockmark_cpa::TraceDetection, (ErrorCode, String)> {
    let mut options = DetectOptions::default().with_criterion(criterion);
    if let Some(algo) = algo {
        options = options.with_algo(algo);
    }
    let detector =
        Detector::with_options(pattern, options).map_err(|e| (ErrorCode::Cpa, e.to_string()))?;

    let store =
        clockmark_corpus::Corpus::open(corpus).map_err(|e| (ErrorCode::Corpus, e.to_string()))?;
    let entry = store.entry(trace).ok_or_else(|| {
        (
            ErrorCode::Corpus,
            format!("no trace named {trace:?} in corpus"),
        )
    })?;
    if entry.cycles > shared.limits.max_cycles {
        return Err((
            ErrorCode::TooManyCycles,
            format!(
                "trace holds {} cycles, over the server's {}-cycle budget",
                entry.cycles, shared.limits.max_cycles
            ),
        ));
    }
    // Memory-mapped where the platform allows it (buffered fallback /
    // CLOCKMARK_NO_MMAP opt-out); repeated detect-corpus requests over
    // the same trace then stream straight from the page cache.
    let reader = store
        .source(trace)
        .map_err(|e| (ErrorCode::Corpus, e.to_string()))?;

    let detect_span = clockmark_obs::span("serve.detect")
        .field("cycles", entry.cycles)
        .field("period", pattern.len() as u64)
        .field("zero_copy", u64::from(reader.is_zero_copy()));
    let outcome = detector.detect_trace(reader);
    drop(detect_span);

    outcome.map_err(|e| {
        let code = match &e {
            clockmark_cpa::TraceInputError::Cpa(_) => ErrorCode::Cpa,
            clockmark_cpa::TraceInputError::Input(_) => ErrorCode::Corpus,
        };
        (code, e.to_string())
    })
}

fn send_response(stream: &mut TcpStream, response: &Response) -> Flow {
    let (ty, payload) = response.encode();
    match write_frame(stream, ty, &payload) {
        Ok(()) => Flow::Continue,
        Err(_) => Flow::Close,
    }
}

fn send_error(stream: &mut impl Write, code: ErrorCode, retry_after_ms: u32, message: &str) {
    let (ty, payload) = Response::Error {
        code,
        retry_after_ms,
        message: message.to_string(),
    }
    .encode();
    let _ = write_frame(stream, ty, &payload);
}

/// Reports a request failure and keeps the connection alive: the frame
/// that failed was still well-formed, so the session stays usable.
fn fail(stream: &mut TcpStream, code: ErrorCode, message: &str) -> Flow {
    send_error(stream, code, 0, message);
    Flow::Continue
}
