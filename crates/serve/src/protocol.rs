//! The `CMRPC` wire protocol: a thin binary encoding of the
//! [`Detector`](clockmark_cpa::Detector) API.
//!
//! ## Byte layout
//!
//! Every connection opens with an 8-byte greeting from the client —
//! the magic `b"CMRPC1"` followed by a `u16` little-endian protocol
//! version — which the server echoes back verbatim on success.
//!
//! After the handshake both directions speak *frames*:
//!
//! ```text
//! +------+----------------+-----------------+
//! | type | payload length | payload         |
//! | u8   | u32 LE         | `length` bytes  |
//! +------+----------------+-----------------+
//! ```
//!
//! Request types occupy `0x01..=0x7E`, response types `0x81..=0xFE`,
//! and `0x7F` is the error frame in either direction. All multi-byte
//! integers are little-endian; floating-point values are IEEE-754
//! `f64` bit patterns, so a detection verdict survives the wire
//! bit-for-bit.
//!
//! A `Detect` exchange streams the trace:
//!
//! ```text
//! client: DetectStart (pattern, algo, criterion)
//! client: DetectChunk (raw f64 samples) ... repeated ...
//! client: DetectFinish
//! server: DetectResult (verdict + cycle count)   -- or Error at any point
//! ```
//!
//! `DetectStart` and `DetectChunk` are deliberately unacknowledged so
//! a client can saturate the socket; the server replies exactly once
//! per detect exchange, at `DetectFinish` or on the first failure.
//!
//! ## Trace context
//!
//! A client that wants distributed tracing sends a `TraceContext`
//! frame (16-byte trace id + `u64` parent span id, both
//! client-generated) before a request. The context is sticky for the
//! session: while one is set, the server precedes **every** response
//! frame with a `TraceEcho` frame echoing the trace id plus the
//! server-side span id it minted for the request, so client and server
//! span events share one causally-linked trace. `TraceContext` is
//! unacknowledged, like `DetectStart`; clients that never send it never
//! see an echo, which keeps the frame optional and the protocol
//! backward-compatible at the frame level.

use clockmark_cpa::{
    CandidatePattern, CandidateScore, CpaAlgo, DetectionCriterion, DetectionResult, Identification,
    SequentialCheckpoint, SequentialOptions, SequentialResult, TraceDetection,
};

use crate::error::ServeError;

/// Magic bytes every connection must open with.
pub const MAGIC: [u8; 6] = *b"CMRPC1";

/// Wire protocol version carried in the greeting. Version 2 added the
/// `TraceContext`/`TraceEcho` and `Metrics` frames and extended the
/// `Status` report with uptime, session totals and the algo mix.
/// Version 3 added the fleet frames (`ShardAssign`/`ShardResult`/
/// `Heartbeat`) and extended the `Status` report with the readiness-loop
/// session counts (registered/readable/in-flight). Version 4 added the
/// sequential early-termination exchange
/// (`DetectSequentialStart`/`SequentialDetection`) and the batched
/// multi-candidate exchange (`IdentifyStart`/`Identification`), both
/// reusing `DetectChunk`/`DetectFinish` for the trace stream.
pub const PROTOCOL_VERSION: u16 = 4;

/// Frame-type byte of the error frame (valid in either direction).
pub const FRAME_ERROR: u8 = 0x7F;

const FRAME_PING: u8 = 0x01;
const FRAME_DETECT_START: u8 = 0x02;
const FRAME_DETECT_CHUNK: u8 = 0x03;
const FRAME_DETECT_FINISH: u8 = 0x04;
const FRAME_DETECT_CORPUS: u8 = 0x05;
const FRAME_STATUS: u8 = 0x06;
const FRAME_SHUTDOWN: u8 = 0x07;
const FRAME_TRACE_CONTEXT: u8 = 0x08;
const FRAME_METRICS: u8 = 0x09;
const FRAME_SHARD_ASSIGN: u8 = 0x0A;
const FRAME_HEARTBEAT: u8 = 0x0B;
const FRAME_DETECT_SEQ_START: u8 = 0x0C;
const FRAME_IDENTIFY_START: u8 = 0x0D;

const FRAME_PONG: u8 = 0x81;
const FRAME_DETECT_RESULT: u8 = 0x82;
const FRAME_STATUS_REPORT: u8 = 0x83;
const FRAME_SHUTDOWN_ACK: u8 = 0x84;
const FRAME_METRICS_REPORT: u8 = 0x85;
const FRAME_TRACE_ECHO: u8 = 0x86;
const FRAME_SHARD_RESULT: u8 = 0x87;
const FRAME_HEARTBEAT_ACK: u8 = 0x88;
const FRAME_DETECT_SEQ_RESULT: u8 = 0x89;
const FRAME_IDENTIFY_RESULT: u8 = 0x8A;

/// Length in bytes of a wire trace id.
pub const TRACE_ID_LEN: usize = 16;

/// Machine-readable failure class carried by an error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request bytes did not decode.
    Malformed,
    /// A frame exceeded the server's payload limit.
    FrameTooLarge,
    /// The session pool is full; honour `retry_after_ms`.
    Busy,
    /// Correlation analysis rejected the inputs.
    Cpa,
    /// The referenced corpus or trace could not be read.
    Corpus,
    /// The streamed trace exceeded the server's cycle budget.
    TooManyCycles,
    /// A detect frame arrived outside a detect exchange (or vice versa).
    BadSequence,
    /// The server is draining and no longer accepts work.
    Draining,
    /// An unclassified server-side failure.
    Internal,
}

impl ErrorCode {
    fn to_wire(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::FrameTooLarge => 2,
            ErrorCode::Busy => 3,
            ErrorCode::Cpa => 4,
            ErrorCode::Corpus => 5,
            ErrorCode::TooManyCycles => 6,
            ErrorCode::BadSequence => 7,
            ErrorCode::Draining => 8,
            ErrorCode::Internal => 9,
        }
    }

    fn from_wire(raw: u16) -> Option<Self> {
        Some(match raw {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::FrameTooLarge,
            3 => ErrorCode::Busy,
            4 => ErrorCode::Cpa,
            5 => ErrorCode::Corpus,
            6 => ErrorCode::TooManyCycles,
            7 => ErrorCode::BadSequence,
            8 => ErrorCode::Draining,
            9 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A decoded client-to-server frame.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Open a detect exchange for the given watermark pattern.
    DetectStart {
        /// Watermark pattern, one bool per cycle.
        pattern: Vec<bool>,
        /// Kernel to pin, or `None` for the server-side heuristic.
        algo: Option<CpaAlgo>,
        /// Peak-significance thresholds to apply.
        criterion: DetectionCriterion,
    },
    /// Trace samples for the open detect exchange.
    DetectChunk {
        /// Power samples in watts.
        samples: Vec<f64>,
    },
    /// Close the detect exchange and request the verdict.
    DetectFinish,
    /// Detect against a trace stored in an on-disk corpus.
    DetectCorpus {
        /// Filesystem path of the corpus root (server-local).
        corpus: String,
        /// Trace name inside the corpus manifest.
        trace: String,
        /// Watermark pattern, one bool per cycle.
        pattern: Vec<bool>,
        /// Kernel to pin, or `None` for the server-side heuristic.
        algo: Option<CpaAlgo>,
        /// Peak-significance thresholds to apply.
        criterion: DetectionCriterion,
    },
    /// Request server load counters.
    Status,
    /// Ask the server to drain and exit.
    Shutdown,
    /// Set (or replace) the session's trace context. Unacknowledged;
    /// while set, every response is preceded by [`Response::TraceEcho`].
    TraceContext {
        /// Client-generated 16-byte trace id shared by all spans of the
        /// logical operation.
        trace_id: [u8; TRACE_ID_LEN],
        /// Client-side span id the server's spans are parented under.
        parent_span: u64,
    },
    /// Request a Prometheus-text metrics snapshot.
    Metrics,
    /// Coordinator → worker: run one campaign shard to completion. The
    /// worker answers with [`Response::ShardResult`] when the shard is
    /// done (or hits an injected limit), so one shard occupies its
    /// connection end to end — the heartbeat travels on a second
    /// connection.
    ShardAssign(ShardSpec),
    /// Coordinator → worker: liveness + progress probe, answered with
    /// [`Response::Heartbeat`].
    Heartbeat,
    /// Open a *sequential* detect exchange: the server evaluates the
    /// growing prefix on the schedule in `options` and freezes the fold
    /// once the acceptance rule fires (the client keeps streaming; the
    /// saving is server CPU, not bandwidth). Streams and finishes with
    /// the same `DetectChunk`/`DetectFinish` frames as a plain detect;
    /// answered with [`Response::SequentialDetection`].
    DetectSequentialStart {
        /// Watermark pattern, one bool per cycle.
        pattern: Vec<bool>,
        /// Kernel to pin, or `None` for the server-side heuristic.
        algo: Option<CpaAlgo>,
        /// Peak-significance thresholds to apply.
        criterion: DetectionCriterion,
        /// Checkpoint schedule, confidence gate and budget.
        options: SequentialOptions,
    },
    /// Open an *identification* exchange: one fold over the streamed
    /// trace, scored against every candidate pattern. Streams and
    /// finishes with `DetectChunk`/`DetectFinish`; answered with
    /// [`Response::Identification`]. The anchor `pattern` fixes the fold
    /// period; every candidate must share it.
    IdentifyStart {
        /// Fold-anchor pattern, one bool per cycle.
        pattern: Vec<bool>,
        /// Kernel to pin, or `None` for the server-side heuristic.
        algo: Option<CpaAlgo>,
        /// Peak-significance thresholds to apply.
        criterion: DetectionCriterion,
        /// Labelled candidate patterns to rank.
        candidates: Vec<CandidatePattern>,
    },
}

/// One job inside a [`ShardSpec`]: a global campaign index plus the
/// corpus trace it detects over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardJob {
    /// Index of the job in the *fleet-wide* campaign (what the merged
    /// report is keyed by — not the shard-local position).
    pub index: u64,
    /// Corpus trace name.
    pub trace: String,
}

/// Everything a worker needs to run one campaign shard: where the shard
/// campaign lives on (shared) disk, which corpus and jobs it covers,
/// and the detection tuning pinned by the fleet spec.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Stable shard identifier (the consistent-hash bucket).
    pub shard_id: u64,
    /// Filesystem path of the shard's campaign directory. Checkpoints
    /// and `results.jsonl` persist here, so a shard reassigned after a
    /// worker death resumes from whatever the dead worker had saved.
    pub dir: String,
    /// Filesystem path of the corpus root.
    pub corpus: String,
    /// Watermark pattern, one bool per cycle.
    pub pattern: Vec<bool>,
    /// Peak-significance thresholds.
    pub criterion: DetectionCriterion,
    /// Spectrum kernel, pinned fleet-wide (required: the byte-identical
    /// merged report only holds within one kernel's arithmetic).
    pub algo: CpaAlgo,
    /// Checkpoint interval in cycles (0 disables).
    pub checkpoint_cycles: u64,
    /// Read-chunk size in cycles.
    pub chunk_cycles: u64,
    /// Worker threads for this shard (0 = worker default).
    pub threads: u32,
    /// Stop after at most this many jobs (0 = no limit) — test hook
    /// mirroring `CampaignLimits::max_jobs`.
    pub max_jobs: u64,
    /// Interrupt each job after this many ingested cycles (0 = none) —
    /// test hook mirroring `CampaignLimits::interrupt_job_after_cycles`.
    pub interrupt_after_cycles: u64,
    /// The shard's jobs, in shard-local order.
    pub jobs: Vec<ShardJob>,
}

/// A worker's heartbeat: liveness plus live progress of the shard it is
/// currently running, aggregated by the coordinator into the fleet's
/// `progress.json`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkerHeartbeat {
    /// Whether a shard is currently running.
    pub busy: bool,
    /// Shard id in flight (`u64::MAX` when idle).
    pub shard_id: u64,
    /// Jobs of the in-flight shard already landed.
    pub jobs_done: u64,
    /// Jobs in the in-flight shard.
    pub jobs_total: u64,
    /// Trace cycles the in-flight shard run has ingested.
    pub cycles: u64,
    /// Ingest throughput of the in-flight shard run, cycles/second.
    pub cycles_per_sec: f64,
    /// Shards this worker has completed since startup.
    pub shards_done: u64,
}

/// A decoded server-to-client frame.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Verdict of a detect exchange (inline or corpus-backed).
    Detection(TraceDetection),
    /// Answer to [`Request::Status`].
    Status(ServerStatus),
    /// The server acknowledged [`Request::Shutdown`] and is draining.
    ShutdownAck,
    /// Answer to [`Request::Metrics`]: a Prometheus text-format
    /// snapshot of the server's live metrics.
    Metrics {
        /// Prometheus exposition text (version 0.0.4).
        text: String,
    },
    /// Answer to [`Request::ShardAssign`]: the shard ran (to completion
    /// or to an injected limit) and these are its landed outcomes.
    ShardResult {
        /// The shard this result answers for.
        shard_id: u64,
        /// Whether every job of the shard has landed.
        complete: bool,
        /// Landed outcomes as `results.jsonl` lines (one encoded
        /// `JobOutcome` per line), already remapped to *global* campaign
        /// indices.
        outcomes: String,
    },
    /// Answer to [`Request::Heartbeat`].
    Heartbeat(WorkerHeartbeat),
    /// Verdict of a sequential detect exchange: the classic result plus
    /// cycles actually consumed, the early-stop flag and the checkpoint
    /// trail — all IEEE-754 bit patterns, so the verdict is bit-identical
    /// to an in-process `clockmark_cpa::Detector::detect_sequential` on
    /// the same samples.
    SequentialDetection(SequentialResult),
    /// Ranked ledger of an identification exchange, bit-identical to an
    /// in-process `Detector::identify` on the same samples.
    Identification(Identification),
    /// Echo of the session's trace context, sent immediately before a
    /// response while a [`Request::TraceContext`] is in effect.
    TraceEcho {
        /// The trace id the client supplied.
        trace_id: [u8; TRACE_ID_LEN],
        /// Server-side span id minted for this request.
        span_id: u64,
    },
    /// The request failed; the connection may or may not survive.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Suggested backoff in milliseconds (0 = don't bother).
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
}

/// Load counters reported by [`Request::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStatus {
    /// Sessions currently holding a pool slot.
    pub active_sessions: u32,
    /// Pool capacity.
    pub max_sessions: u32,
    /// Detect verdicts served since startup.
    pub served: u64,
    /// Connections rejected with `Busy` since startup.
    pub rejected: u64,
    /// Whether the server has stopped accepting connections.
    pub draining: bool,
    /// Seconds since the server started.
    pub uptime_secs: u64,
    /// Sessions admitted since startup (active + completed).
    pub total_sessions: u64,
    /// Verdicts served by the naive kernel.
    pub algo_naive: u64,
    /// Verdicts served by the folded kernel.
    pub algo_folded: u64,
    /// Verdicts served by the FFT kernel.
    pub algo_fft: u64,
    /// Sessions registered with the readiness loop (sockets in the poll
    /// set). Equals `active_sessions` under the readiness engine; under
    /// the blocking fallback it mirrors `active_sessions` too.
    pub registered: u32,
    /// Registered sessions flagged readable and queued for a worker.
    pub readable: u32,
    /// Requests currently being handled by pool workers.
    pub in_flight: u32,
}

// ---------------------------------------------------------------------------
// Trace-id minting
// ---------------------------------------------------------------------------

/// Per-process random base for minted ids, so ids from different
/// processes (client vs server, successive runs) do not collide. Std
/// only: `RandomState` is the standard library's entropy source.
fn id_base() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::OnceLock;
    static BASE: OnceLock<u64> = OnceLock::new();
    *BASE.get_or_init(|| {
        std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish()
    })
}

/// Mints a process-unique span id (never zero).
pub fn mint_span_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    id_base()
        .wrapping_add(NEXT.fetch_add(1, Ordering::Relaxed))
        .max(1)
}

/// Mints a fresh 16-byte trace id for a new logical operation.
pub fn mint_trace_id() -> [u8; TRACE_ID_LEN] {
    use std::hash::{BuildHasher, Hasher};
    let mut id = [0u8; TRACE_ID_LEN];
    let fresh = std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish();
    id[..8].copy_from_slice(&fresh.to_le_bytes());
    id[8..].copy_from_slice(&mint_span_id().rotate_left(17).to_le_bytes());
    id
}

/// Renders a trace id as the conventional 32-char lowercase hex string.
pub fn trace_id_hex(id: &[u8; TRACE_ID_LEN]) -> String {
    let mut out = String::with_capacity(TRACE_ID_LEN * 2);
    for b in id {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_pattern(out: &mut Vec<u8>, pattern: &[bool]) {
    put_u32(out, pattern.len() as u32);
    out.extend(pattern.iter().map(|&b| b as u8));
}

fn put_algo(out: &mut Vec<u8>, algo: Option<CpaAlgo>) {
    out.push(match algo {
        None => 0,
        Some(CpaAlgo::Naive) => 1,
        Some(CpaAlgo::Folded) => 2,
        Some(CpaAlgo::Fft) => 3,
        // `CpaAlgo` is non-exhaustive; new kernels need a wire tag here
        // and a bump of PROTOCOL_VERSION.
        Some(_) => 0,
    });
}

fn put_criterion(out: &mut Vec<u8>, c: &DetectionCriterion) {
    put_f64(out, c.min_peak_ratio);
    put_f64(out, c.min_zscore);
}

fn put_sequential_options(out: &mut Vec<u8>, o: &SequentialOptions) {
    put_u64(out, o.base_cycles);
    put_f64(out, o.growth);
    match o.confidence {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_f64(out, c);
        }
    }
    put_u64(out, o.min_cycles);
    match o.max_cycles {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            put_u64(out, m);
        }
    }
}

fn put_detection_result(out: &mut Vec<u8>, r: &DetectionResult) {
    out.push(r.detected as u8);
    put_u64(out, r.peak_rotation as u64);
    put_f64(out, r.peak_rho);
    put_f64(out, r.floor_max_abs);
    put_f64(out, r.ratio);
    put_f64(out, r.zscore);
}

fn put_sequential_result(out: &mut Vec<u8>, s: &SequentialResult) {
    put_detection_result(out, &s.result);
    put_u64(out, s.cycles_consumed);
    out.push(s.early_stopped as u8);
    put_u32(out, s.checkpoints.len() as u32);
    for cp in &s.checkpoints {
        put_u64(out, cp.cycles);
        out.push(cp.accepted as u8);
        put_f64(out, cp.peak_rho);
        put_f64(out, cp.p_value);
    }
}

fn put_identification(out: &mut Vec<u8>, id: &Identification) {
    put_u64(out, id.cycles);
    put_u32(out, id.scores.len() as u32);
    for score in &id.scores {
        put_u64(out, score.index as u64);
        put_bytes(out, score.label.as_bytes());
        put_detection_result(out, &score.result);
    }
}

fn put_shard_spec(out: &mut Vec<u8>, s: &ShardSpec) {
    put_u64(out, s.shard_id);
    put_bytes(out, s.dir.as_bytes());
    put_bytes(out, s.corpus.as_bytes());
    put_pattern(out, &s.pattern);
    put_criterion(out, &s.criterion);
    put_algo(out, Some(s.algo));
    put_u64(out, s.checkpoint_cycles);
    put_u64(out, s.chunk_cycles);
    put_u32(out, s.threads);
    put_u64(out, s.max_jobs);
    put_u64(out, s.interrupt_after_cycles);
    put_u32(out, s.jobs.len() as u32);
    for job in &s.jobs {
        put_u64(out, job.index);
        put_bytes(out, job.trace.as_bytes());
    }
}

fn put_heartbeat(out: &mut Vec<u8>, h: &WorkerHeartbeat) {
    out.push(h.busy as u8);
    put_u64(out, h.shard_id);
    put_u64(out, h.jobs_done);
    put_u64(out, h.jobs_total);
    put_u64(out, h.cycles);
    put_f64(out, h.cycles_per_sec);
    put_u64(out, h.shards_done);
}

/// Sequential payload reader that turns truncation into a protocol error.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(malformed(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ServeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not UTF-8"))
    }

    fn pattern(&mut self) -> Result<Vec<bool>, ServeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        bytes
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                other => Err(malformed(format!(
                    "pattern byte must be 0 or 1, got {other}"
                ))),
            })
            .collect()
    }

    fn algo(&mut self) -> Result<Option<CpaAlgo>, ServeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(CpaAlgo::Naive)),
            2 => Ok(Some(CpaAlgo::Folded)),
            3 => Ok(Some(CpaAlgo::Fft)),
            other => Err(malformed(format!("unknown algo tag {other}"))),
        }
    }

    fn trace_id(&mut self) -> Result<[u8; TRACE_ID_LEN], ServeError> {
        Ok(self.take(TRACE_ID_LEN)?.try_into().unwrap())
    }

    fn criterion(&mut self) -> Result<DetectionCriterion, ServeError> {
        Ok(DetectionCriterion {
            min_peak_ratio: self.f64()?,
            min_zscore: self.f64()?,
        })
    }

    fn bool(&mut self) -> Result<bool, ServeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(malformed(format!("flag byte must be 0/1, got {other}"))),
        }
    }

    fn sequential_options(&mut self) -> Result<SequentialOptions, ServeError> {
        let base_cycles = self.u64()?;
        let growth = self.f64()?;
        let confidence = if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        };
        let min_cycles = self.u64()?;
        let max_cycles = if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        };
        Ok(SequentialOptions {
            base_cycles,
            growth,
            confidence,
            min_cycles,
            max_cycles,
        })
    }

    fn detection_result(&mut self) -> Result<DetectionResult, ServeError> {
        Ok(DetectionResult {
            detected: self.bool()?,
            peak_rotation: self.u64()? as usize,
            peak_rho: self.f64()?,
            floor_max_abs: self.f64()?,
            ratio: self.f64()?,
            zscore: self.f64()?,
        })
    }

    fn sequential_result(&mut self) -> Result<SequentialResult, ServeError> {
        let result = self.detection_result()?;
        let cycles_consumed = self.u64()?;
        let early_stopped = self.bool()?;
        let count = self.u32()? as usize;
        let mut checkpoints = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            checkpoints.push(SequentialCheckpoint {
                cycles: self.u64()?,
                accepted: self.bool()?,
                peak_rho: self.f64()?,
                p_value: self.f64()?,
            });
        }
        Ok(SequentialResult {
            result,
            cycles_consumed,
            early_stopped,
            checkpoints,
        })
    }

    fn identification(&mut self) -> Result<Identification, ServeError> {
        let cycles = self.u64()?;
        let count = self.u32()? as usize;
        let mut scores = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            scores.push(CandidateScore {
                index: self.u64()? as usize,
                label: self.string()?,
                result: self.detection_result()?,
            });
        }
        Ok(Identification { cycles, scores })
    }

    fn candidates(&mut self) -> Result<Vec<CandidatePattern>, ServeError> {
        let count = self.u32()? as usize;
        let mut out = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            out.push(CandidatePattern {
                label: self.string()?,
                pattern: self.pattern()?,
            });
        }
        Ok(out)
    }

    fn shard_spec(&mut self) -> Result<ShardSpec, ServeError> {
        let shard_id = self.u64()?;
        let dir = self.string()?;
        let corpus = self.string()?;
        let pattern = self.pattern()?;
        let criterion = self.criterion()?;
        let algo = self
            .algo()?
            .ok_or_else(|| malformed("shard spec must pin a spectrum kernel"))?;
        let checkpoint_cycles = self.u64()?;
        let chunk_cycles = self.u64()?;
        let threads = self.u32()?;
        let max_jobs = self.u64()?;
        let interrupt_after_cycles = self.u64()?;
        let count = self.u32()? as usize;
        let mut jobs = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            jobs.push(ShardJob {
                index: self.u64()?,
                trace: self.string()?,
            });
        }
        Ok(ShardSpec {
            shard_id,
            dir,
            corpus,
            pattern,
            criterion,
            algo,
            checkpoint_cycles,
            chunk_cycles,
            threads,
            max_jobs,
            interrupt_after_cycles,
            jobs,
        })
    }

    fn heartbeat(&mut self) -> Result<WorkerHeartbeat, ServeError> {
        Ok(WorkerHeartbeat {
            busy: self.u8()? != 0,
            shard_id: self.u64()?,
            jobs_done: self.u64()?,
            jobs_total: self.u64()?,
            cycles: self.u64()?,
            cycles_per_sec: self.f64()?,
            shards_done: self.u64()?,
        })
    }

    fn samples(&mut self) -> Result<Vec<f64>, ServeError> {
        let rest = self.buf.len() - self.pos;
        if !rest.is_multiple_of(8) {
            return Err(malformed(format!(
                "sample payload of {rest} bytes is not a multiple of 8"
            )));
        }
        let mut out = Vec::with_capacity(rest / 8);
        while self.pos < self.buf.len() {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn expect_end(&self) -> Result<(), ServeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn malformed(message: impl Into<String>) -> ServeError {
    ServeError::Protocol {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Frame codecs
// ---------------------------------------------------------------------------

impl Request {
    /// Encodes the request as `(frame type, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let ty = match self {
            Request::Ping => FRAME_PING,
            Request::DetectStart {
                pattern,
                algo,
                criterion,
            } => {
                put_pattern(&mut out, pattern);
                put_algo(&mut out, *algo);
                put_criterion(&mut out, criterion);
                FRAME_DETECT_START
            }
            Request::DetectChunk { samples } => {
                out.reserve(samples.len() * 8);
                for &s in samples {
                    put_f64(&mut out, s);
                }
                FRAME_DETECT_CHUNK
            }
            Request::DetectFinish => FRAME_DETECT_FINISH,
            Request::DetectCorpus {
                corpus,
                trace,
                pattern,
                algo,
                criterion,
            } => {
                put_bytes(&mut out, corpus.as_bytes());
                put_bytes(&mut out, trace.as_bytes());
                put_pattern(&mut out, pattern);
                put_algo(&mut out, *algo);
                put_criterion(&mut out, criterion);
                FRAME_DETECT_CORPUS
            }
            Request::Status => FRAME_STATUS,
            Request::Shutdown => FRAME_SHUTDOWN,
            Request::TraceContext {
                trace_id,
                parent_span,
            } => {
                out.extend_from_slice(trace_id);
                put_u64(&mut out, *parent_span);
                FRAME_TRACE_CONTEXT
            }
            Request::Metrics => FRAME_METRICS,
            Request::ShardAssign(spec) => {
                put_shard_spec(&mut out, spec);
                FRAME_SHARD_ASSIGN
            }
            Request::Heartbeat => FRAME_HEARTBEAT,
            Request::DetectSequentialStart {
                pattern,
                algo,
                criterion,
                options,
            } => {
                put_pattern(&mut out, pattern);
                put_algo(&mut out, *algo);
                put_criterion(&mut out, criterion);
                put_sequential_options(&mut out, options);
                FRAME_DETECT_SEQ_START
            }
            Request::IdentifyStart {
                pattern,
                algo,
                criterion,
                candidates,
            } => {
                put_pattern(&mut out, pattern);
                put_algo(&mut out, *algo);
                put_criterion(&mut out, criterion);
                put_u32(&mut out, candidates.len() as u32);
                for candidate in candidates {
                    put_bytes(&mut out, candidate.label.as_bytes());
                    put_pattern(&mut out, &candidate.pattern);
                }
                FRAME_IDENTIFY_START
            }
        };
        (ty, out)
    }

    /// Decodes a request frame received by the server.
    pub fn decode(frame_type: u8, payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        let req = match frame_type {
            FRAME_PING => Request::Ping,
            FRAME_DETECT_START => Request::DetectStart {
                pattern: c.pattern()?,
                algo: c.algo()?,
                criterion: c.criterion()?,
            },
            FRAME_DETECT_CHUNK => Request::DetectChunk {
                samples: c.samples()?,
            },
            FRAME_DETECT_FINISH => Request::DetectFinish,
            FRAME_DETECT_CORPUS => Request::DetectCorpus {
                corpus: c.string()?,
                trace: c.string()?,
                pattern: c.pattern()?,
                algo: c.algo()?,
                criterion: c.criterion()?,
            },
            FRAME_STATUS => Request::Status,
            FRAME_SHUTDOWN => Request::Shutdown,
            FRAME_TRACE_CONTEXT => Request::TraceContext {
                trace_id: c.trace_id()?,
                parent_span: c.u64()?,
            },
            FRAME_METRICS => Request::Metrics,
            FRAME_SHARD_ASSIGN => Request::ShardAssign(c.shard_spec()?),
            FRAME_HEARTBEAT => Request::Heartbeat,
            FRAME_DETECT_SEQ_START => Request::DetectSequentialStart {
                pattern: c.pattern()?,
                algo: c.algo()?,
                criterion: c.criterion()?,
                options: c.sequential_options()?,
            },
            FRAME_IDENTIFY_START => Request::IdentifyStart {
                pattern: c.pattern()?,
                algo: c.algo()?,
                criterion: c.criterion()?,
                candidates: c.candidates()?,
            },
            other => return Err(malformed(format!("unknown request frame 0x{other:02x}"))),
        };
        c.expect_end()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as `(frame type, payload)`.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let ty = match self {
            Response::Pong => FRAME_PONG,
            Response::Detection(d) => {
                out.push(d.result.detected as u8);
                put_u64(&mut out, d.result.peak_rotation as u64);
                put_f64(&mut out, d.result.peak_rho);
                put_f64(&mut out, d.result.floor_max_abs);
                put_f64(&mut out, d.result.ratio);
                put_f64(&mut out, d.result.zscore);
                put_u64(&mut out, d.cycles);
                FRAME_DETECT_RESULT
            }
            Response::Status(s) => {
                put_u32(&mut out, s.active_sessions);
                put_u32(&mut out, s.max_sessions);
                put_u64(&mut out, s.served);
                put_u64(&mut out, s.rejected);
                out.push(s.draining as u8);
                put_u64(&mut out, s.uptime_secs);
                put_u64(&mut out, s.total_sessions);
                put_u64(&mut out, s.algo_naive);
                put_u64(&mut out, s.algo_folded);
                put_u64(&mut out, s.algo_fft);
                put_u32(&mut out, s.registered);
                put_u32(&mut out, s.readable);
                put_u32(&mut out, s.in_flight);
                FRAME_STATUS_REPORT
            }
            Response::ShardResult {
                shard_id,
                complete,
                outcomes,
            } => {
                put_u64(&mut out, *shard_id);
                out.push(*complete as u8);
                put_bytes(&mut out, outcomes.as_bytes());
                FRAME_SHARD_RESULT
            }
            Response::Heartbeat(h) => {
                put_heartbeat(&mut out, h);
                FRAME_HEARTBEAT_ACK
            }
            Response::SequentialDetection(s) => {
                put_sequential_result(&mut out, s);
                FRAME_DETECT_SEQ_RESULT
            }
            Response::Identification(id) => {
                put_identification(&mut out, id);
                FRAME_IDENTIFY_RESULT
            }
            Response::ShutdownAck => FRAME_SHUTDOWN_ACK,
            Response::Metrics { text } => {
                put_bytes(&mut out, text.as_bytes());
                FRAME_METRICS_REPORT
            }
            Response::TraceEcho { trace_id, span_id } => {
                out.extend_from_slice(trace_id);
                put_u64(&mut out, *span_id);
                FRAME_TRACE_ECHO
            }
            Response::Error {
                code,
                retry_after_ms,
                message,
            } => {
                out.extend_from_slice(&code.to_wire().to_le_bytes());
                put_u32(&mut out, *retry_after_ms);
                put_bytes(&mut out, message.as_bytes());
                FRAME_ERROR
            }
        };
        (ty, out)
    }

    /// Decodes a response frame received by the client.
    pub fn decode(frame_type: u8, payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        let resp = match frame_type {
            FRAME_PONG => Response::Pong,
            FRAME_DETECT_RESULT => {
                let detected = match c.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(malformed(format!("detected flag must be 0/1, got {other}")))
                    }
                };
                let peak_rotation = c.u64()? as usize;
                let peak_rho = c.f64()?;
                let floor_max_abs = c.f64()?;
                let ratio = c.f64()?;
                let zscore = c.f64()?;
                let cycles = c.u64()?;
                Response::Detection(TraceDetection {
                    result: DetectionResult {
                        detected,
                        peak_rotation,
                        peak_rho,
                        floor_max_abs,
                        ratio,
                        zscore,
                    },
                    cycles,
                })
            }
            FRAME_STATUS_REPORT => Response::Status(ServerStatus {
                active_sessions: c.u32()?,
                max_sessions: c.u32()?,
                served: c.u64()?,
                rejected: c.u64()?,
                draining: c.u8()? != 0,
                uptime_secs: c.u64()?,
                total_sessions: c.u64()?,
                algo_naive: c.u64()?,
                algo_folded: c.u64()?,
                algo_fft: c.u64()?,
                registered: c.u32()?,
                readable: c.u32()?,
                in_flight: c.u32()?,
            }),
            FRAME_SHARD_RESULT => Response::ShardResult {
                shard_id: c.u64()?,
                complete: c.u8()? != 0,
                outcomes: c.string()?,
            },
            FRAME_HEARTBEAT_ACK => Response::Heartbeat(c.heartbeat()?),
            FRAME_DETECT_SEQ_RESULT => Response::SequentialDetection(c.sequential_result()?),
            FRAME_IDENTIFY_RESULT => Response::Identification(c.identification()?),
            FRAME_SHUTDOWN_ACK => Response::ShutdownAck,
            FRAME_METRICS_REPORT => Response::Metrics { text: c.string()? },
            FRAME_TRACE_ECHO => Response::TraceEcho {
                trace_id: c.trace_id()?,
                span_id: c.u64()?,
            },
            FRAME_ERROR => {
                let raw = c.u16()?;
                let code = ErrorCode::from_wire(raw)
                    .ok_or_else(|| malformed(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    retry_after_ms: c.u32()?,
                    message: c.string()?,
                }
            }
            other => return Err(malformed(format!("unknown response frame 0x{other:02x}"))),
        };
        c.expect_end()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Socket helpers
// ---------------------------------------------------------------------------

/// Writes the 8-byte connection greeting.
pub fn write_greeting(w: &mut impl std::io::Write) -> std::io::Result<()> {
    let mut greeting = [0u8; 8];
    greeting[..6].copy_from_slice(&MAGIC);
    greeting[6..].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    w.write_all(&greeting)
}

/// Reads and validates the 8-byte connection greeting.
pub fn read_greeting(r: &mut impl std::io::Read) -> Result<(), ServeError> {
    let mut greeting = [0u8; 8];
    r.read_exact(&mut greeting)
        .map_err(|e| crate::error::io_err("reading greeting", e))?;
    if greeting[..6] != MAGIC {
        return Err(malformed("bad magic in greeting"));
    }
    let version = u16::from_le_bytes(greeting[6..].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        return Err(malformed(format!(
            "peer speaks protocol version {version}, this build speaks {PROTOCOL_VERSION}"
        )));
    }
    Ok(())
}

/// Writes one `type + length + payload` frame.
pub fn write_frame(
    w: &mut impl std::io::Write,
    frame_type: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut header = [0u8; 5];
    header[0] = frame_type;
    header[1..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing `max_payload` before allocating.
pub fn read_frame(
    r: &mut impl std::io::Read,
    max_payload: usize,
) -> Result<(u8, Vec<u8>), ServeError> {
    let mut frame_type = [0u8; 1];
    r.read_exact(&mut frame_type)
        .map_err(|e| crate::error::io_err("reading frame type", e))?;
    let payload = read_frame_rest(r, max_payload)?;
    Ok((frame_type[0], payload))
}

/// Reads the length + payload of a frame whose type byte was already
/// consumed.
///
/// Split out so a server can *poll* for the single type byte under a
/// short timeout (a 1-byte read either completes or consumes nothing,
/// so a timeout never desyncs the stream) and then read the remainder
/// under the full read timeout.
pub fn read_frame_rest(
    r: &mut impl std::io::Read,
    max_payload: usize,
) -> Result<Vec<u8>, ServeError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)
        .map_err(|e| crate::error::io_err("reading frame length", e))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_payload {
        return Err(ServeError::FrameTooLarge {
            len: len as u64,
            max: max_payload as u64,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| crate::error::io_err("reading frame payload", e))?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let (ty, payload) = req.encode();
        let decoded = Request::decode(ty, &payload).expect("decodes");
        assert_eq!(decoded, req);
    }

    fn round_trip_response(resp: Response) {
        let (ty, payload) = resp.encode();
        let decoded = Response::decode(ty, &payload).expect("decodes");
        assert_eq!(decoded, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::DetectStart {
            pattern: vec![true, false, true, true],
            algo: Some(CpaAlgo::Fft),
            criterion: DetectionCriterion::default(),
        });
        round_trip_request(Request::DetectStart {
            pattern: vec![true, false],
            algo: None,
            criterion: DetectionCriterion::lenient(),
        });
        round_trip_request(Request::DetectChunk {
            samples: vec![0.25, -1.5, f64::MIN_POSITIVE],
        });
        round_trip_request(Request::DetectFinish);
        round_trip_request(Request::DetectCorpus {
            corpus: "/tmp/corpus".into(),
            trace: "chip_i_s3".into(),
            pattern: vec![false, true, true],
            algo: Some(CpaAlgo::Naive),
            criterion: DetectionCriterion::default(),
        });
        round_trip_request(Request::Status);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::TraceContext {
            trace_id: *b"0123456789abcdef",
            parent_span: u64::MAX,
        });
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Heartbeat);
        round_trip_request(Request::ShardAssign(ShardSpec {
            shard_id: 5,
            dir: "/fleet/shards/shard_5".into(),
            corpus: "/fleet/corpus".into(),
            pattern: vec![true, false, true],
            criterion: DetectionCriterion::lenient(),
            algo: CpaAlgo::Folded,
            checkpoint_cycles: 4096,
            chunk_cycles: 512,
            threads: 1,
            max_jobs: 0,
            interrupt_after_cycles: 10_000,
            jobs: vec![
                ShardJob {
                    index: 2,
                    trace: "chip_i_s0002".into(),
                },
                ShardJob {
                    index: 7,
                    trace: "chip_i_s0007_off".into(),
                },
            ],
        }));
    }

    #[test]
    fn sequential_and_identify_frames_round_trip() {
        round_trip_request(Request::DetectSequentialStart {
            pattern: vec![true, false, true],
            algo: Some(CpaAlgo::Fft),
            criterion: DetectionCriterion::default(),
            options: SequentialOptions::default()
                .with_confidence(1e-9)
                .with_max_cycles(300_000),
        });
        round_trip_request(Request::DetectSequentialStart {
            pattern: vec![true, false],
            algo: None,
            criterion: DetectionCriterion::lenient(),
            options: SequentialOptions::every(512),
        });
        round_trip_request(Request::IdentifyStart {
            pattern: vec![true, false, true, false],
            algo: Some(CpaAlgo::Folded),
            criterion: DetectionCriterion::default(),
            candidates: vec![
                CandidatePattern::new("a", vec![true, false, true, false]),
                CandidatePattern::new("b", vec![false, true, true, false]),
            ],
        });
        round_trip_response(Response::SequentialDetection(SequentialResult {
            result: DetectionResult {
                detected: true,
                peak_rotation: 41,
                peak_rho: f64::from_bits(0x3FE5_5555_5555_5555),
                floor_max_abs: 0.03,
                ratio: 12.5,
                zscore: 8.0,
            },
            cycles_consumed: 16_384,
            early_stopped: true,
            checkpoints: vec![
                SequentialCheckpoint {
                    cycles: 4096,
                    accepted: false,
                    peak_rho: 0.01,
                    p_value: 0.7,
                },
                SequentialCheckpoint {
                    cycles: 16_384,
                    accepted: true,
                    peak_rho: 0.66,
                    p_value: 1e-12,
                },
            ],
        }));
        round_trip_response(Response::Identification(Identification {
            cycles: 40_000,
            scores: vec![CandidateScore {
                index: 3,
                label: "lfsr7:shift=35".into(),
                result: DetectionResult {
                    detected: true,
                    peak_rotation: 13,
                    peak_rho: -0.4,
                    floor_max_abs: 0.02,
                    ratio: 20.0,
                    zscore: 11.0,
                },
            }],
        }));
        // Truncated sequential options (missing the max_cycles flag).
        let (ty, full) = Request::DetectSequentialStart {
            pattern: vec![true, false],
            algo: None,
            criterion: DetectionCriterion::default(),
            options: SequentialOptions::default(),
        }
        .encode();
        assert!(Request::decode(ty, &full[..full.len() - 1]).is_err());
        // A flag byte outside {0, 1} is rejected, not treated as truthy.
        let mut bad = full.clone();
        *bad.last_mut().unwrap() = 2;
        assert!(Request::decode(ty, &bad).is_err());
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong);
        round_trip_response(Response::Detection(TraceDetection {
            result: DetectionResult {
                detected: true,
                peak_rotation: 17,
                peak_rho: -0.42,
                floor_max_abs: 0.01,
                ratio: 42.0,
                zscore: 9.9,
            },
            cycles: 100_000,
        }));
        round_trip_response(Response::Status(ServerStatus {
            active_sessions: 3,
            max_sessions: 8,
            served: 12,
            rejected: 2,
            draining: true,
            uptime_secs: 3601,
            total_sessions: 44,
            algo_naive: 1,
            algo_folded: 7,
            algo_fft: 4,
            registered: 5,
            readable: 1,
            in_flight: 2,
        }));
        round_trip_response(Response::ShutdownAck);
        round_trip_response(Response::ShardResult {
            shard_id: 3,
            complete: true,
            outcomes: "{\"index\":2,\"trace\":\"chip_i_s0002\"}\n".into(),
        });
        round_trip_response(Response::Heartbeat(WorkerHeartbeat {
            busy: true,
            shard_id: 9,
            jobs_done: 3,
            jobs_total: 12,
            cycles: 900_000,
            cycles_per_sec: 123_456.75,
            shards_done: 2,
        }));
        round_trip_response(Response::Heartbeat(WorkerHeartbeat::default()));
        round_trip_response(Response::Metrics {
            text: "# TYPE clockmark_serve_accept_total counter\n\
                   clockmark_serve_accept_total 42\n"
                .into(),
        });
        round_trip_response(Response::TraceEcho {
            trace_id: [0xAB; TRACE_ID_LEN],
            span_id: 7,
        });
        round_trip_response(Response::Error {
            code: ErrorCode::Busy,
            retry_after_ms: 100,
            message: "pool full".into(),
        });
    }

    #[test]
    fn detection_survives_the_wire_bit_for_bit() {
        // NaN-adjacent and subnormal values must round-trip exactly: the
        // wire carries IEEE-754 bit patterns, not decimal renderings.
        let original = TraceDetection {
            result: DetectionResult {
                detected: false,
                peak_rotation: usize::MAX >> 1,
                peak_rho: f64::from_bits(0x3FF0_0000_0000_0001),
                floor_max_abs: f64::MIN_POSITIVE / 2.0,
                ratio: 1.0 + f64::EPSILON,
                zscore: -0.0,
            },
            cycles: u64::MAX,
        };
        let (ty, payload) = Response::Detection(original).encode();
        match Response::decode(ty, &payload).expect("decodes") {
            Response::Detection(d) => {
                assert_eq!(d.result.peak_rotation, original.result.peak_rotation);
                assert_eq!(
                    d.result.peak_rho.to_bits(),
                    original.result.peak_rho.to_bits()
                );
                assert_eq!(
                    d.result.floor_max_abs.to_bits(),
                    original.result.floor_max_abs.to_bits()
                );
                assert_eq!(d.result.ratio.to_bits(), original.result.ratio.to_bits());
                assert_eq!(d.result.zscore.to_bits(), original.result.zscore.to_bits());
                assert_eq!(d.cycles, original.cycles);
            }
            other => panic!("expected Detection, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(0x60, &[]).is_err());
        assert!(Response::decode(0x60, &[]).is_err());
        // Pattern byte outside {0, 1}.
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        payload.push(7);
        assert!(Request::decode(FRAME_DETECT_START, &payload).is_err());
        // Truncated DetectStart.
        let (ty, full) = Request::DetectStart {
            pattern: vec![true, false, true],
            algo: None,
            criterion: DetectionCriterion::default(),
        }
        .encode();
        assert!(Request::decode(ty, &full[..full.len() - 1]).is_err());
        // Trailing bytes after a complete payload.
        let mut padded = full.clone();
        padded.push(0);
        assert!(Request::decode(ty, &padded).is_err());
        // Odd-length sample payload.
        assert!(Request::decode(FRAME_DETECT_CHUNK, &[0u8; 9]).is_err());
        // Truncated trace context (15 of 24 bytes).
        assert!(Request::decode(FRAME_TRACE_CONTEXT, &[0u8; 15]).is_err());
        // Trace echo with trailing bytes.
        assert!(Response::decode(FRAME_TRACE_ECHO, &[0u8; 25]).is_err());
        // A shard spec may not leave the kernel to the server heuristic:
        // algo tag 0 (`None`) must be rejected, or byte-identity across
        // workers would depend on each node's ambient environment.
        let (ty, mut payload) = Request::ShardAssign(ShardSpec {
            shard_id: 0,
            dir: "d".into(),
            corpus: "c".into(),
            pattern: vec![true],
            criterion: DetectionCriterion::default(),
            algo: CpaAlgo::Fft,
            checkpoint_cycles: 1,
            chunk_cycles: 1,
            threads: 1,
            max_jobs: 0,
            interrupt_after_cycles: 0,
            jobs: Vec::new(),
        })
        .encode();
        assert!(Request::decode(ty, &payload).is_ok());
        // The algo byte sits right after shard_id + dir + corpus + pattern
        // + criterion; locate it by re-encoding with the tag zeroed.
        let algo_at = 8 + (4 + 1) + (4 + 1) + (4 + 1) + 16;
        payload[algo_at] = 0;
        let err = Request::decode(ty, &payload).unwrap_err();
        assert!(err.to_string().contains("spectrum kernel"), "{err}");
        // Truncated heartbeat ack.
        assert!(Response::decode(FRAME_HEARTBEAT_ACK, &[0u8; 10]).is_err());
    }

    #[test]
    fn minted_ids_are_unique_and_hex_renders() {
        let a = mint_span_id();
        let b = mint_span_id();
        assert_ne!(a, b);
        assert_ne!(a, 0);
        assert_ne!(mint_trace_id(), mint_trace_id());
        let hex = trace_id_hex(&[0x01, 0xAB, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF]);
        assert_eq!(hex.len(), 32);
        assert!(hex.starts_with("01ab"));
        assert!(hex.ends_with("ff"));
    }

    #[test]
    fn frame_io_round_trips_and_enforces_limit() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_PING, b"xyz").unwrap();
        let (ty, payload) = read_frame(&mut buf.as_slice(), 16).unwrap();
        assert_eq!(ty, FRAME_PING);
        assert_eq!(payload, b"xyz");

        let err = read_frame(&mut buf.as_slice(), 2).unwrap_err();
        assert!(matches!(err, ServeError::FrameTooLarge { len: 3, max: 2 }));
    }

    #[test]
    fn greeting_round_trips_and_rejects_mismatch() {
        let mut buf = Vec::new();
        write_greeting(&mut buf).unwrap();
        read_greeting(&mut buf.as_slice()).expect("valid greeting");

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_greeting(&mut bad.as_slice()).is_err());

        let mut wrong_version = buf.clone();
        wrong_version[6] = 99;
        assert!(read_greeting(&mut wrong_version.as_slice()).is_err());
    }
}
