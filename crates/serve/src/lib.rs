//! # clockmark-serve — concurrent watermark-detection service
//!
//! A std-only TCP server (and matching client) that exposes the
//! [`Detector`](clockmark_cpa::Detector) facade over a versioned,
//! length-prefixed binary protocol. Everything is `std::net` +
//! `std::thread`; there is no async runtime and no external
//! dependency, matching the rest of the workspace.
//!
//! The wire protocol is deliberately a *thin encoding* of the
//! in-process API: a `Detect` exchange streams `f64` chunks into the
//! same [`StreamingDetection`](clockmark_cpa::StreamingDetection)
//! session an in-process caller would use, and verdicts travel as
//! IEEE-754 bit patterns — so a verdict obtained over the wire is
//! bit-identical (peak rotation, ρ, z-score) to one computed locally.
//!
//! ## Quick start
//!
//! ```
//! use clockmark_serve::{Client, ServeLimits, Server};
//! use clockmark::prelude::*;
//!
//! # fn main() -> Result<(), ClockmarkError> {
//! let handle = Server::new()
//!     .with_limits(ServeLimits::default())
//!     .bind("127.0.0.1:0")
//!     .map_err(ClockmarkError::from)?;
//!
//! let pattern: Vec<bool> = (0..64).map(|i| (i * 7) % 3 == 0).collect();
//! let trace: Vec<f64> = (0..640).map(|i| (i as f64 * 0.37).sin()).collect();
//!
//! let mut client = Client::connect(handle.local_addr()).map_err(ClockmarkError::from)?;
//! client.ping().map_err(ClockmarkError::from)?;
//! let wire = client
//!     .detect(&pattern, DetectOptions::default(), &trace)
//!     .map_err(ClockmarkError::from)?;
//!
//! // Bit-identical to the in-process facade.
//! let local = Detector::new(&pattern)?.detect(&trace)?;
//! assert_eq!(wire.result, local);
//!
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! ## Robustness model
//!
//! - **Bounded pool, explicit backpressure.** At most
//!   [`ServeLimits::max_sessions`] connections are served concurrently;
//!   the rest are told `Busy` with a retry hint and closed. Nothing
//!   queues invisibly.
//! - **Per-connection budgets.** Frame size, streamed cycle count, read
//!   and idle timeouts are all capped by [`ServeLimits`].
//! - **Graceful drain.** Shutdown (via [`ServerHandle::shutdown`] or a
//!   wire `Shutdown` request) stops accepting, lets in-flight sessions
//!   finish, and flushes `clockmark-obs` metrics.
//!
//! See `docs/serve.md` at the repository root for the exact byte
//! layout.
//!
//! ## Engines
//!
//! On unix the server runs a `poll(2)`-based **readiness engine**: one
//! event-loop thread watches every connected session and a small
//! worker pool ([`ServeLimits::workers`]) services only the sessions
//! with bytes waiting, so thousands of mostly-idle sessions cost one
//! file descriptor each and zero threads. Elsewhere — or with
//! `CLOCKMARK_SERVE_BLOCKING=1` — the original thread-per-connection
//! engine serves instead. The wire behaviour of both engines is
//! identical; only the `registered`/`readable` fields of
//! [`ServerStatus`] tell them apart.
//!
//! The `poll(2)` and `RLIMIT_NOFILE` prototypes live in one scoped
//! `allow(unsafe_code)` FFI module (`poll::sys`), mirroring the
//! `corpus::mmap` pattern; the rest of the crate denies unsafe code.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod error;
mod poll;
pub mod protocol;
mod server;

pub use client::{Backoff, Client, CLIENT_CHUNK};
pub use error::ServeError;
pub use poll::raise_nofile_limit;
pub use protocol::{
    mint_span_id, mint_trace_id, trace_id_hex, ErrorCode, Request, Response, ServerStatus,
    ShardJob, ShardSpec, WorkerHeartbeat, MAGIC, PROTOCOL_VERSION, TRACE_ID_LEN,
};
pub use server::{FleetService, ServeLimits, Server, ServerHandle, ShardOutcome};
