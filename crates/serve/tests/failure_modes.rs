//! Server robustness: every failure mode must leave the server able to
//! serve the next request.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use clockmark_cpa::{DetectOptions, DetectionCriterion, Detector};
use clockmark_serve::{
    protocol, Client, ErrorCode, Request, Response, ServeError, ServeLimits, Server, ServerHandle,
};

fn pattern() -> Vec<bool> {
    // Xorshift bits give an aperiodic pattern with one clean peak.
    let mut s = 0x0DD0_5EED_1357_9BDFu64;
    (0..64)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s & 1 == 1
        })
        .collect()
}

fn trace(cycles: usize) -> Vec<f64> {
    let pattern = pattern();
    (0..cycles)
        .map(|i| {
            let wm = if pattern[i % pattern.len()] {
                0.8
            } else {
                -0.8
            };
            wm + (i as f64 * 0.61).sin() * 0.3
        })
        .collect()
}

fn quick_limits() -> ServeLimits {
    ServeLimits {
        read_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_secs(2),
        ..ServeLimits::default()
    }
}

fn start(limits: ServeLimits) -> ServerHandle {
    Server::new()
        .with_limits(limits)
        .bind("127.0.0.1:0")
        .expect("bind")
}

/// The canary every test ends with: a fresh client must still get a
/// correct verdict after the failure under test.
fn assert_still_serving(handle: &ServerHandle) {
    assert_still_serving_cycles(handle, pattern().len() * 20);
}

/// [`assert_still_serving`] with an explicit trace length, for tests
/// whose limits would reject the default-sized canary.
fn assert_still_serving_cycles(handle: &ServerHandle, cycles: usize) {
    let pattern = pattern();
    let y = trace(cycles);
    let mut client = Client::connect(handle.local_addr()).expect("connect after failure");
    let wire = client
        .detect(&pattern, DetectOptions::default(), &y)
        .expect("detect after failure");
    let local = Detector::new(&pattern)
        .expect("detector")
        .detect(&y)
        .expect("local detect");
    assert_eq!(wire.result, local);
    assert_eq!(wire.cycles, y.len() as u64);
}

#[test]
fn oversized_frame_is_rejected_and_server_survives() {
    let handle = start(ServeLimits {
        max_frame_bytes: 1 << 16,
        ..quick_limits()
    });

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    protocol::write_greeting(&mut stream).unwrap();
    protocol::read_greeting(&mut stream).expect("greeting echoed");

    // Declare a payload over the limit. The server must refuse before
    // allocating and tell us why.
    let mut header = [0u8; 5];
    header[0] = 0x03; // DetectChunk
    header[1..].copy_from_slice(&((1u32 << 17).to_le_bytes()));
    stream.write_all(&header).unwrap();
    let (ty, payload) = protocol::read_frame(&mut stream, 1 << 16).expect("error frame");
    match Response::decode(ty, &payload).expect("decodes") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::FrameTooLarge),
        other => panic!("expected error frame, got {other:?}"),
    }

    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn truncated_frame_mid_stream_only_kills_that_session() {
    let handle = start(quick_limits());

    {
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        protocol::write_greeting(&mut stream).unwrap();
        protocol::read_greeting(&mut stream).expect("greeting echoed");
        let (ty, payload) = Request::DetectStart {
            pattern: pattern(),
            algo: None,
            criterion: DetectionCriterion::default(),
        }
        .encode();
        protocol::write_frame(&mut stream, ty, &payload).unwrap();
        // Header promises 64 bytes of samples; deliver half and vanish.
        let mut header = [0u8; 5];
        header[0] = 0x03;
        header[1..].copy_from_slice(&(64u32).to_le_bytes());
        stream.write_all(&header).unwrap();
        stream.write_all(&[0u8; 32]).unwrap();
        drop(stream);
    }

    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn client_disconnect_mid_detect_frees_the_slot() {
    // One slot: the canary below only passes if the abandoned session's
    // slot is actually released.
    let handle = start(ServeLimits {
        max_sessions: 1,
        ..quick_limits()
    });

    {
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        protocol::write_greeting(&mut stream).unwrap();
        protocol::read_greeting(&mut stream).expect("greeting echoed");
        let (ty, payload) = Request::DetectStart {
            pattern: pattern(),
            algo: None,
            criterion: DetectionCriterion::default(),
        }
        .encode();
        protocol::write_frame(&mut stream, ty, &payload).unwrap();
        let samples: Vec<f64> = trace(128);
        let (ty, payload) = Request::DetectChunk { samples }.encode();
        protocol::write_frame(&mut stream, ty, &payload).unwrap();
        drop(stream); // disconnect mid-Detect
    }

    // The dead session is reaped within the read timeout; retry until
    // the slot frees rather than sleeping a fixed amount.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(handle.local_addr()).and_then(|mut c| c.ping()) {
            Ok(()) => break,
            Err(ServeError::Busy { .. }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("server did not recover: {e}"),
        }
    }

    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn pool_full_rejects_with_retry_hint_and_retry_succeeds() {
    let handle = start(ServeLimits {
        max_sessions: 1,
        retry_after_ms: 25,
        ..quick_limits()
    });

    // Occupy the single slot with a live session.
    let mut occupant = Client::connect(handle.local_addr()).expect("connect occupant");
    occupant.ping().expect("occupant ping");

    // The next connection must be rejected with Busy + the hint.
    let mut rejected = Client::connect(handle.local_addr()).expect("tcp connect");
    match rejected.ping() {
        Err(ServeError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 25),
        other => panic!("expected Busy, got {other:?}"),
    }
    assert_eq!(handle.status().rejected, 1);

    // Free the slot; a retry within the hinted backoff regime succeeds.
    drop(occupant);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(handle.local_addr()).and_then(|mut c| c.ping()) {
            Ok(()) => break,
            Err(ServeError::Busy { retry_after_ms }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
            }
            Err(e) => panic!("retry failed: {e}"),
        }
    }

    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn detect_frames_out_of_order_get_bad_sequence() {
    let handle = start(quick_limits());

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    protocol::write_greeting(&mut stream).unwrap();
    protocol::read_greeting(&mut stream).expect("greeting echoed");

    let (ty, payload) = Request::DetectChunk {
        samples: vec![1.0, 2.0],
    }
    .encode();
    protocol::write_frame(&mut stream, ty, &payload).unwrap();
    let (ty, payload) = protocol::read_frame(&mut stream, 1 << 16).expect("error frame");
    match Response::decode(ty, &payload).expect("decodes") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadSequence),
        other => panic!("expected error frame, got {other:?}"),
    }

    // A bad sequence is a caller bug, not a transport fault: the same
    // connection must still complete a well-formed exchange.
    let pattern = pattern();
    let y = trace(pattern.len() * 10);
    let (ty, payload) = Request::DetectStart {
        pattern: pattern.clone(),
        algo: None,
        criterion: DetectionCriterion::default(),
    }
    .encode();
    protocol::write_frame(&mut stream, ty, &payload).unwrap();
    let (ty, payload) = Request::DetectChunk { samples: y.clone() }.encode();
    protocol::write_frame(&mut stream, ty, &payload).unwrap();
    let (ty, payload) = Request::DetectFinish.encode();
    protocol::write_frame(&mut stream, ty, &payload).unwrap();
    let (ty, payload) = protocol::read_frame(&mut stream, 1 << 16).expect("result frame");
    match Response::decode(ty, &payload).expect("decodes") {
        Response::Detection(d) => assert_eq!(d.cycles, y.len() as u64),
        other => panic!("expected detection, got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn cycle_budget_is_enforced_per_exchange() {
    let handle = start(ServeLimits {
        max_cycles: 1000,
        ..quick_limits()
    });

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    match client.detect(&pattern(), DetectOptions::default(), &trace(1001)) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::TooManyCycles),
        other => panic!("expected TooManyCycles, got {other:?}"),
    }

    // A trace inside the budget still gets served.
    assert_still_serving_cycles(&handle, 640);
    handle.shutdown();
}

#[test]
fn shutdown_during_in_flight_detect_drains_cleanly() {
    let handle = start(quick_limits());
    let addr = handle.local_addr();

    let pattern = pattern();
    let y = trace(pattern.len() * 50);

    // Drive an exchange manually through the protocol module so the
    // shutdown can be interleaved between its chunks.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    protocol::write_greeting(&mut raw).unwrap();
    protocol::read_greeting(&mut raw).expect("greeting echoed");
    let (ty, payload) = Request::DetectStart {
        pattern: pattern.clone(),
        algo: None,
        criterion: DetectionCriterion::default(),
    }
    .encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();
    let half = y.len() / 2;
    let (ty, payload) = Request::DetectChunk {
        samples: y[..half].to_vec(),
    }
    .encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();

    // Round-trip a Status on the same connection: frames are processed
    // in order, so once it answers, the exchange is open server-side
    // and the drain below cannot outrun the DetectStart.
    let (ty, payload) = Request::Status.encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 16).expect("status frame");
    assert!(matches!(
        Response::decode(ty, &payload).expect("decodes"),
        Response::Status(_)
    ));

    // Begin the drain from another connection while the exchange above
    // is only half streamed.
    let mut killer = Client::connect(addr).expect("connect killer");
    killer.shutdown().expect("shutdown ack");
    assert!(handle.is_draining());

    // The in-flight exchange must still be allowed to finish.
    let (ty, payload) = Request::DetectChunk {
        samples: y[half..].to_vec(),
    }
    .encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();
    let (ty, payload) = Request::DetectFinish.encode();
    protocol::write_frame(&mut raw, ty, &payload).unwrap();
    let (ty, payload) = protocol::read_frame(&mut raw, 1 << 16).expect("result during drain");
    let wire = match Response::decode(ty, &payload).expect("decodes") {
        Response::Detection(d) => d,
        other => panic!("expected detection, got {other:?}"),
    };
    let local = Detector::new(&pattern)
        .expect("detector")
        .detect(&y)
        .expect("local detect");
    assert_eq!(wire.result, local);
    drop(raw);

    let final_status = handle.wait();
    assert!(final_status.draining);
    assert_eq!(
        final_status.active_sessions, 0,
        "drain left sessions behind"
    );
    assert!(final_status.served >= 1);

    // And the port must actually be closed.
    assert!(Client::connect(addr).and_then(|mut c| c.ping()).is_err());
}

#[test]
fn corpus_detect_reports_missing_trace_and_survives() {
    let handle = start(quick_limits());

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let bogus = PathBuf::from("/nonexistent/corpus/path");
    match client.detect_corpus(
        bogus.to_str().unwrap(),
        "no_such_trace",
        &pattern(),
        DetectOptions::default(),
    ) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Corpus),
        other => panic!("expected Corpus error, got {other:?}"),
    }

    assert_still_serving(&handle);
    handle.shutdown();
}
