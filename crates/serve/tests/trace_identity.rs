//! Wire trace propagation is observability, not behaviour: verdicts
//! served with tracing enabled are bit-identical to untraced ones, the
//! client learns the server's span id for every traced request, and a
//! traced exchange leaves causally-linked span events (shared trace id,
//! client span parenting the server's) in an installed recorder.

use clockmark_cpa::{DetectOptions, DetectionResult};
use clockmark_serve::{Client, Server};

fn pattern() -> Vec<bool> {
    let mut s = 0x0BAD_C0DE_1234_5678u64;
    (0..64)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s & 1 == 1
        })
        .collect()
}

fn watermarked_trace(cycles: usize) -> Vec<f64> {
    let pattern = pattern();
    (0..cycles)
        .map(|i| {
            let wm = if pattern[i % pattern.len()] {
                1.0
            } else {
                -1.0
            };
            wm + (i as f64 * 0.231).sin() * 0.3
        })
        .collect()
}

fn assert_bit_identical(a: &DetectionResult, b: &DetectionResult) {
    assert_eq!(a.detected, b.detected);
    assert_eq!(a.peak_rotation, b.peak_rotation);
    assert_eq!(a.peak_rho.to_bits(), b.peak_rho.to_bits());
    assert_eq!(a.floor_max_abs.to_bits(), b.floor_max_abs.to_bits());
    assert_eq!(a.ratio.to_bits(), b.ratio.to_bits());
    assert_eq!(a.zscore.to_bits(), b.zscore.to_bits());
}

#[test]
fn traced_and_untraced_verdicts_are_bit_identical() {
    let handle = Server::new().bind("127.0.0.1:0").expect("bind");
    let pattern = pattern();
    let y = watermarked_trace(pattern.len() * 30);

    let mut plain = Client::connect(handle.local_addr()).expect("connect");
    let untraced = plain
        .detect(&pattern, DetectOptions::default(), &y)
        .expect("untraced detect");
    assert_eq!(plain.last_server_span(), 0, "no echoes without tracing");
    assert!(plain.trace_id_hex().is_none());

    let mut traced = Client::connect(handle.local_addr()).expect("connect");
    let trace_id = traced.enable_tracing();
    assert_ne!(trace_id, [0u8; clockmark_serve::TRACE_ID_LEN]);
    assert_eq!(
        traced.trace_id_hex().expect("hex id").len(),
        2 * clockmark_serve::TRACE_ID_LEN
    );

    traced.ping().expect("traced ping");
    let span_after_ping = traced.last_server_span();
    assert_ne!(span_after_ping, 0, "ping response must carry a TraceEcho");

    let wire = traced
        .detect(&pattern, DetectOptions::default(), &y)
        .expect("traced detect");
    let span_after_detect = traced.last_server_span();
    assert_ne!(span_after_detect, 0);
    assert_ne!(
        span_after_detect, span_after_ping,
        "each request gets its own server span"
    );

    assert_bit_identical(&wire.result, &untraced.result);
    assert_eq!(wire.cycles, untraced.cycles);

    // Tracing costs extra framing: TraceContext per request plus one
    // echo per response — visible in the client's byte accounting.
    assert!(traced.bytes_sent() > plain.bytes_sent());
    assert!(traced.bytes_received() > plain.bytes_received());

    let status = traced.status().expect("status");
    assert_eq!(status.served, 2);
    assert_eq!(status.algo_naive + status.algo_folded + status.algo_fft, 2);

    traced.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn traced_errors_still_surface_and_keep_the_session_usable() {
    let handle = Server::new().bind("127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.enable_tracing();

    // A bad request (finish without start) fails remotely but the echo
    // before the error frame still updates the span bookkeeping.
    let err = client
        .detect_corpus(
            "/nonexistent/corpus",
            "missing",
            &pattern(),
            DetectOptions::default(),
        )
        .expect_err("corpus must not exist");
    let message = err.to_string();
    assert!(message.contains("corpus") || !message.is_empty());
    assert_ne!(client.last_server_span(), 0);

    // The session survives the failure.
    client.ping().expect("ping after failed request");
    client.shutdown().expect("shutdown");
    handle.wait();
}
