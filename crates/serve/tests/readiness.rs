//! Capacity contract of the poll-based readiness engine: one node must
//! hold >= 1024 concurrently connected, mostly-idle sessions with its
//! small worker pool, while still serving new work correctly.
//!
//! The blocking fallback engine (non-unix, or
//! `CLOCKMARK_SERVE_BLOCKING=1`) is exempt — it would need a thread per
//! session, which is exactly the scaling wall this engine removes.

#![cfg(unix)]

use std::time::Duration;

use clockmark_cpa::DetectionCriterion;
use clockmark_serve::{raise_nofile_limit, Client, ServeLimits, Server};

const TARGET: usize = 1024;

#[test]
fn holds_1024_idle_sessions_and_still_serves() {
    if std::env::var_os("CLOCKMARK_SERVE_BLOCKING").is_some() {
        eprintln!("skipping: blocking engine forced by CLOCKMARK_SERVE_BLOCKING");
        return;
    }
    // Both ends of every session live in this process, so the open-file
    // budget must cover 2 descriptors per session plus headroom for the
    // listener, the probe client and the test harness itself.
    let need = (TARGET * 2 + 128) as u64;
    let limit = raise_nofile_limit(need);
    assert!(
        limit >= need,
        "cannot run the capacity test: nofile limit stuck at {limit}, need {need}; \
         raise the hard RLIMIT_NOFILE"
    );

    let handle = Server::new()
        .with_limits(ServeLimits {
            max_sessions: TARGET + 8,
            // Idle really means idle: nothing in this test may be
            // reaped by the idle sweep while the pile sits connected.
            idle_timeout: Duration::from_secs(600),
            ..ServeLimits::default()
        })
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let addr = handle.local_addr();

    // Connect the pile from a few threads: each connect handshake costs
    // a couple of poll ticks, so serial setup would dominate the test.
    let threads = 8;
    let per_thread = TARGET / threads;
    let mut sessions: Vec<Client> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    (0..per_thread)
                        .map(|i| {
                            Client::connect(addr)
                                .unwrap_or_else(|e| panic!("connect {t}/{i} failed: {e}"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("connector thread"))
            .collect()
    });
    assert_eq!(sessions.len(), TARGET);

    // With the whole pile connected and idle, a fresh client still gets
    // real work done at full correctness.
    let mut probe = Client::connect(addr).expect("probe connect");
    probe.ping().expect("probe ping");
    let status = probe.status().expect("probe status");
    assert!(
        status.registered as usize > TARGET,
        "readiness engine reports only {} registered sessions",
        status.registered
    );
    assert!(
        status.active_sessions as usize > TARGET,
        "only {} active sessions",
        status.active_sessions
    );

    // Aperiodic xorshift bits: a structured pattern would tie with its
    // own rotations and never pass the peak-uniqueness criterion.
    let mut s = 0xC0FF_EE00_1234_5678u64;
    let pattern: Vec<bool> = (0..48)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s & 1 == 1
        })
        .collect();
    let samples: Vec<f64> = (0..pattern.len() * 24)
        .map(|i| {
            let bit = if pattern[i % pattern.len()] {
                1.2
            } else {
                -1.2
            };
            bit + (i as f64 * 0.41).sin() * 0.25
        })
        .collect();
    let verdict = probe
        .detect_with_criterion(&pattern, DetectionCriterion::default(), &samples)
        .expect("detect while 1024 sessions idle");
    assert!(verdict.result.detected, "fixture trace must be detectable");

    // Long-parked sessions are still live, not zombies: a sample across
    // the pile must answer pings.
    for idx in [0, TARGET / 3, TARGET / 2, TARGET - 1] {
        sessions[idx]
            .ping()
            .unwrap_or_else(|e| panic!("idle session {idx} died: {e}"));
    }

    drop(sessions);
    drop(probe);
    let final_status = handle.shutdown();
    assert_eq!(final_status.active_sessions, 0);
    assert!(final_status.total_sessions as usize > TARGET);
}
