//! The acceptance bar of the wire protocol: a verdict served over TCP
//! is bit-identical — peak rotation, ρ, z-score, every field — to the
//! one the in-process [`Detector`] computes on the same samples.

use std::path::PathBuf;

use clockmark_corpus::{Corpus, TraceHeader};
use clockmark_cpa::{CpaAlgo, DetectOptions, DetectionCriterion, DetectionResult, Detector};
use clockmark_serve::{Client, Server};

fn pattern() -> Vec<bool> {
    // Xorshift bits: an aperiodic pattern with a single, unambiguous
    // correlation peak (a structured pattern would tie with its own
    // rotations and never satisfy the peak-uniqueness criterion).
    let mut s = 0x1234_5678_9ABC_DEF1u64;
    (0..96)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s & 1 == 1
        })
        .collect()
}

fn watermarked_trace(cycles: usize) -> Vec<f64> {
    let pattern = pattern();
    (0..cycles)
        .map(|i| {
            let wm = if pattern[i % pattern.len()] {
                1.2
            } else {
                -1.2
            };
            wm + (i as f64 * 0.317).sin() * 0.4 + (i as f64 * 0.071).cos() * 0.2
        })
        .collect()
}

fn assert_bit_identical(wire: &DetectionResult, local: &DetectionResult) {
    assert_eq!(wire.detected, local.detected);
    assert_eq!(wire.peak_rotation, local.peak_rotation);
    assert_eq!(wire.peak_rho.to_bits(), local.peak_rho.to_bits());
    assert_eq!(wire.floor_max_abs.to_bits(), local.floor_max_abs.to_bits());
    assert_eq!(wire.ratio.to_bits(), local.ratio.to_bits());
    assert_eq!(wire.zscore.to_bits(), local.zscore.to_bits());
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "cm_serve_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&path).ok();
        std::fs::create_dir_all(&path).expect("mkdir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn streamed_detect_matches_in_process_for_every_kernel() {
    let handle = Server::new().bind("127.0.0.1:0").expect("bind");
    let pattern = pattern();
    let y = watermarked_trace(pattern.len() * 40);

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let algos: [Option<CpaAlgo>; 4] = [
        None,
        Some(CpaAlgo::Naive),
        Some(CpaAlgo::Folded),
        Some(CpaAlgo::Fft),
    ];
    for algo in algos {
        let mut options = DetectOptions::default().with_criterion(DetectionCriterion::lenient());
        if let Some(algo) = algo {
            options = options.with_algo(algo);
        }
        let wire = client.detect(&pattern, options, &y).expect("wire detect");

        // The wire exchange streams chunks into a StreamingDetection on
        // the server, so its exact in-process counterpart is the
        // streaming facade path.
        let detector = Detector::with_options(&pattern, options).expect("detector");
        let mut session = detector.detect_streaming();
        session.push_chunk(&y);
        let spectrum = session.spectrum().expect("streaming spectrum");
        let local = detector.criterion().evaluate(&spectrum);
        assert_bit_identical(&wire.result, &local);
        assert_eq!(wire.cycles, y.len() as u64);
        assert!(wire.result.detected, "watermark should be found ({algo:?})");

        // Batch detect() agrees bit-for-bit too, except under a pinned
        // Naive kernel: a streaming session holds no raw trace, so it
        // evaluates Naive with the (decision-identical) folded
        // arithmetic, which may differ from the raw-trace kernel in ULPs.
        if algo != Some(CpaAlgo::Naive) {
            let batch = detector.detect(&y).expect("batch detect");
            assert_bit_identical(&wire.result, &batch);
        }
    }

    handle.shutdown();
}

#[test]
fn corpus_detect_matches_in_process_detect_trace() {
    let dir = TempDir::new("corpus_identity");
    let pattern = pattern();
    let y = watermarked_trace(pattern.len() * 30);

    let mut corpus = Corpus::create(&dir.0).expect("create corpus");
    corpus
        .add("chip_i_wire", TraceHeader::bare(y.len() as u64), &y)
        .expect("store trace");

    let handle = Server::new().bind("127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let wire = client
        .detect_corpus(
            dir.0.to_str().expect("utf8 path"),
            "chip_i_wire",
            &pattern,
            DetectOptions::default(),
        )
        .expect("wire corpus detect");

    let detector = Detector::new(&pattern).expect("detector");
    let reader = corpus.reader("chip_i_wire").expect("reader");
    let local = detector.detect_trace(reader).expect("local detect_trace");

    assert_bit_identical(&wire.result, &local.result);
    assert_eq!(wire.cycles, local.cycles);

    // And the corpus path agrees with plain in-memory detection too.
    let in_memory = detector.detect(&y).expect("in-memory detect");
    assert_bit_identical(&wire.result, &in_memory);

    handle.shutdown();
}

#[test]
fn concurrent_clients_all_get_bit_identical_verdicts() {
    let handle = Server::new().bind("127.0.0.1:0").expect("bind");
    let addr = handle.local_addr();
    let pattern = pattern();
    let y = watermarked_trace(pattern.len() * 25);
    let local = Detector::new(&pattern)
        .expect("detector")
        .detect(&y)
        .expect("local detect");

    let workers: Vec<_> = (0..4)
        .map(|_| {
            let pattern = pattern.clone();
            let y = y.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .detect(&pattern, DetectOptions::default(), &y)
                    .expect("wire detect")
            })
        })
        .collect();
    for worker in workers {
        let wire = worker.join().expect("worker");
        assert_bit_identical(&wire.result, &local);
    }

    let status = handle.shutdown();
    assert_eq!(status.served, 4);
}

#[test]
fn sequential_detect_over_the_wire_matches_in_process() {
    let handle = Server::new().bind("127.0.0.1:0").expect("bind");
    let pattern = pattern();
    let y = watermarked_trace(pattern.len() * 400);
    let seq = clockmark_cpa::SequentialOptions::default().with_base_cycles(1024);

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for algo in [Some(CpaAlgo::Folded), Some(CpaAlgo::Fft), None] {
        let mut options = DetectOptions::default().with_criterion(DetectionCriterion::lenient());
        if let Some(algo) = algo {
            options = options.with_algo(algo);
        }
        let wire = client
            .detect_sequential(&pattern, options, seq, &y)
            .expect("wire sequential detect");

        let detector = Detector::with_options(&pattern, options).expect("detector");
        let local = detector.detect_sequential(&y, seq).expect("local");
        assert_bit_identical(&wire.result, &local.result);
        assert_eq!(wire.cycles_consumed, local.cycles_consumed);
        assert_eq!(wire.early_stopped, local.early_stopped);
        assert_eq!(wire.checkpoints.len(), local.checkpoints.len());
        for (w, l) in wire.checkpoints.iter().zip(&local.checkpoints) {
            assert_eq!(w.cycles, l.cycles);
            assert_eq!(w.accepted, l.accepted);
            assert_eq!(w.peak_rho.to_bits(), l.peak_rho.to_bits());
            assert_eq!(w.p_value.to_bits(), l.p_value.to_bits());
        }
        // The strong watermark must stop well before the full stream.
        assert!(wire.early_stopped, "{algo:?}");
        assert!(wire.cycles_consumed < y.len() as u64 / 4);
    }

    handle.shutdown();
}

#[test]
fn identify_over_the_wire_matches_in_process() {
    let handle = Server::new().bind("127.0.0.1:0").expect("bind");
    let anchor = pattern();
    let y = watermarked_trace(anchor.len() * 60);

    // Distinct xorshift candidate banks; index 0 is the embedded pattern.
    let candidates: Vec<clockmark_cpa::CandidatePattern> = (0..6u64)
        .map(|seed| {
            let bits: Vec<bool> = if seed == 0 {
                pattern()
            } else {
                let mut s = 0xDEAD_BEEF ^ (seed << 17) | 1;
                (0..96)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        s & 1 == 1
                    })
                    .collect()
            };
            clockmark_cpa::CandidatePattern::new(format!("cand-{seed}"), bits)
        })
        .collect();

    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for algo in [Some(CpaAlgo::Folded), Some(CpaAlgo::Fft)] {
        let mut options = DetectOptions::default().with_criterion(DetectionCriterion::lenient());
        if let Some(algo) = algo {
            options = options.with_algo(algo);
        }
        let wire = client
            .identify(&anchor, options, &candidates, &y)
            .expect("wire identify");

        let detector = Detector::with_options(&anchor, options).expect("detector");
        let local = detector.identify(&y, &candidates).expect("local identify");
        assert_eq!(wire.cycles, local.cycles);
        assert_eq!(wire.scores.len(), local.scores.len());
        for (w, l) in wire.scores.iter().zip(&local.scores) {
            assert_eq!(w.index, l.index);
            assert_eq!(w.label, l.label);
            assert_bit_identical(&w.result, &l.result);
        }
        assert_eq!(wire.best().index, 0, "embedded candidate must rank first");
    }

    handle.shutdown();
}
