//! Property tests of simulator invariants on randomly generated netlists.
//!
//! The generator builds arbitrary (but always legal) netlists: a few clock
//! roots, a layer of buffers and clock gates, registers with random data
//! sources and enables, plus random external drivers — then checks the
//! physical invariants any cycle simulation must uphold.

use clockmark_netlist::{
    CellId, ClockInput, DataSource, GroupId, Netlist, RegisterConfig, SignalExpr, SignalId,
};
use clockmark_sim::{CycleSim, SignalDriver};
use proptest::prelude::*;

/// A recipe for one random netlist.
#[derive(Debug, Clone)]
struct Recipe {
    n_external: usize,
    buffers: usize,
    icgs: usize,
    registers: Vec<RegRecipe>,
}

#[derive(Debug, Clone)]
struct RegRecipe {
    clock_pick: usize,
    data_pick: usize,
    init: bool,
    enable_pick: Option<usize>,
}

fn recipe_strategy() -> impl Strategy<Value = (Recipe, u64)> {
    let reg = (
        0usize..100,
        0usize..5,
        any::<bool>(),
        proptest::option::of(0usize..100),
    )
        .prop_map(|(clock_pick, data_pick, init, enable_pick)| RegRecipe {
            clock_pick,
            data_pick,
            init,
            enable_pick,
        });
    let recipe = (
        1usize..4,
        0usize..4,
        0usize..4,
        proptest::collection::vec(reg, 1..25),
    )
        .prop_map(|(n_external, buffers, icgs, registers)| Recipe {
            n_external,
            buffers,
            icgs,
            registers,
        });
    (recipe, any::<u64>())
}

/// Materialises a recipe into a netlist. Always produces a valid netlist.
fn build(recipe: &Recipe) -> (Netlist, Vec<SignalId>, Vec<CellId>) {
    let mut n = Netlist::new();
    let clk = n.add_clock_root("clk");

    let externals: Vec<SignalId> = (0..recipe.n_external)
        .map(|i| {
            n.add_signal(&format!("ext{i}"), SignalExpr::External)
                .expect("valid")
        })
        .collect();

    // Clock sources: the root plus layered buffers and gates.
    let mut clock_sources: Vec<ClockInput> = vec![clk.into()];
    for i in 0..recipe.buffers {
        let parent = clock_sources[i % clock_sources.len()];
        let buf = n.add_buffer(GroupId::TOP, parent).expect("valid");
        clock_sources.push(buf.into());
    }
    for i in 0..recipe.icgs {
        let parent = clock_sources[(i * 7) % clock_sources.len()];
        let enable = externals[i % externals.len()];
        let icg = n.add_icg(GroupId::TOP, parent, enable).expect("valid");
        clock_sources.push(icg.into());
    }

    let mut registers: Vec<CellId> = Vec::new();
    for r in &recipe.registers {
        let clock = clock_sources[r.clock_pick % clock_sources.len()];
        let data = match r.data_pick {
            0 => DataSource::Hold,
            1 => DataSource::Toggle,
            2 => DataSource::Constant(r.init),
            3 if !registers.is_empty() => {
                DataSource::ShiftFrom(registers[r.clock_pick % registers.len()])
            }
            _ => DataSource::Toggle,
        };
        let mut config = RegisterConfig::new(clock).data(data).init(r.init);
        if let Some(pick) = r.enable_pick {
            config = config.sync_enable(externals[pick % externals.len()]);
        }
        registers.push(n.add_register(GroupId::TOP, config).expect("valid"));
    }
    (n, externals, registers)
}

fn drive_random(sim: &mut CycleSim, externals: &[SignalId], seed: u64) {
    for (i, &sig) in externals.iter().enumerate() {
        // A cheap deterministic bit pattern per signal.
        let bits: Vec<bool> = (0..64)
            .map(|k| (seed.rotate_left((i as u32 * 13 + k) % 64) & 1) != 0)
            .collect();
        sim.drive(sig, SignalDriver::bits(bits, true))
            .expect("external");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn activity_counts_are_bounded_by_cell_counts((recipe, seed) in recipe_strategy()) {
        let (netlist, externals, _) = build(&recipe);
        let mut sim = CycleSim::new(&netlist).expect("generated netlists are valid");
        drive_random(&mut sim, &externals, seed);

        let regs = netlist.register_count() as u32;
        let bufs = netlist.buffer_count() as u32;
        let icgs = netlist.icg_count() as u32;
        let trace = sim.run(50).expect("runs");
        for c in 0..trace.cycles() {
            let a = trace.total(c);
            prop_assert!(a.reg_clock_events <= regs);
            prop_assert!(a.reg_data_toggles <= a.reg_clock_events,
                "data can only toggle on a clocked register");
            prop_assert!(a.buffer_events <= bufs);
            prop_assert!(a.icg_events <= icgs);
        }
    }

    #[test]
    fn stopped_root_means_total_silence((recipe, seed) in recipe_strategy()) {
        let (netlist, externals, _) = build(&recipe);
        let mut sim = CycleSim::new(&netlist).expect("valid");
        drive_random(&mut sim, &externals, seed);
        sim.set_root_running(clockmark_netlist::ClockRootId::from_index(0), false)
            .expect("known root");
        let trace = sim.run(20).expect("runs");
        for c in 0..trace.cycles() {
            prop_assert_eq!(trace.total(c).total_events(), 0);
        }
    }

    #[test]
    fn simulation_is_deterministic((recipe, seed) in recipe_strategy()) {
        let (netlist, externals, registers) = build(&recipe);
        let run = || {
            let mut sim = CycleSim::new(&netlist).expect("valid");
            drive_random(&mut sim, &externals, seed);
            let trace = sim.run(40).expect("runs");
            let finals: Vec<bool> = registers.iter().map(|&r| sim.register_value(r)).collect();
            (trace, finals)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn reset_replays_identically((recipe, seed) in recipe_strategy()) {
        let (netlist, externals, _) = build(&recipe);
        let mut sim = CycleSim::new(&netlist).expect("valid");
        drive_random(&mut sim, &externals, seed);
        let first = sim.run(30).expect("runs");
        sim.reset();
        let second = sim.run(30).expect("runs");
        prop_assert_eq!(first, second);
    }

    #[test]
    fn constant_data_registers_toggle_at_most_once((recipe, seed) in recipe_strategy()) {
        // A register with Constant data can change only on its first
        // enabled clock edge; after that it holds. Verify via per-register
        // value watching.
        let (netlist, externals, registers) = build(&recipe);
        let constant_regs: Vec<CellId> = registers
            .iter()
            .copied()
            .filter(|&r| {
                matches!(
                    netlist.cell(r).expect("known").kind,
                    clockmark_netlist::CellKind::Register(config)
                        if matches!(config.data, DataSource::Constant(_))
                )
            })
            .collect();
        let mut sim = CycleSim::new(&netlist).expect("valid");
        drive_random(&mut sim, &externals, seed);

        let mut changes = vec![0u32; constant_regs.len()];
        let mut last: Vec<bool> = constant_regs.iter().map(|&r| sim.register_value(r)).collect();
        for _ in 0..40 {
            sim.step();
            for (k, &r) in constant_regs.iter().enumerate() {
                let v = sim.register_value(r);
                if v != last[k] {
                    changes[k] += 1;
                    last[k] = v;
                }
            }
        }
        for (k, &count) in changes.iter().enumerate() {
            prop_assert!(count <= 1, "constant register {k} changed {count} times");
        }
    }
}
