use clockmark_netlist::GroupId;
use std::ops::AddAssign;

/// Switching-activity counters for one cell group over one clock cycle.
///
/// These four event classes are exactly the ones the paper's power model
/// distinguishes: register clock pins (the dominant term, 1.476 µW each at
/// 10 MHz in the paper's 65 nm library), register data toggles (1.126 µW),
/// and the clock-tree cells distributing the (possibly gated) clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GroupActivity {
    /// Registers whose clock pin received an active edge this cycle.
    pub reg_clock_events: u32,
    /// Registers whose output value changed this cycle.
    pub reg_data_toggles: u32,
    /// Clock-tree buffers whose input clock was running this cycle.
    pub buffer_events: u32,
    /// Clock-gating cells whose input clock was running this cycle.
    pub icg_events: u32,
}

impl GroupActivity {
    /// Sum of all event counters (a crude scalar activity measure).
    pub fn total_events(&self) -> u32 {
        self.reg_clock_events + self.reg_data_toggles + self.buffer_events + self.icg_events
    }
}

impl AddAssign for GroupActivity {
    fn add_assign(&mut self, rhs: Self) {
        self.reg_clock_events += rhs.reg_clock_events;
        self.reg_data_toggles += rhs.reg_data_toggles;
        self.buffer_events += rhs.buffer_events;
        self.icg_events += rhs.icg_events;
    }
}

/// Per-cycle, per-group switching activity for a simulated interval.
///
/// Stored densely: `n_groups` counters per cycle. Group ids are the ones
/// from the simulated [`Netlist`](clockmark_netlist::Netlist).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActivityTrace {
    n_groups: usize,
    cycles: usize,
    data: Vec<GroupActivity>,
}

impl ActivityTrace {
    /// Creates an empty trace for `n_groups` accounting groups.
    pub fn new(n_groups: usize) -> Self {
        ActivityTrace {
            n_groups,
            cycles: 0,
            data: Vec::new(),
        }
    }

    /// Appends one cycle of per-group activity.
    ///
    /// # Panics
    ///
    /// Panics if `groups.len() != n_groups` — cycle records must be
    /// homogeneous.
    pub fn push_cycle(&mut self, groups: &[GroupActivity]) {
        assert_eq!(
            groups.len(),
            self.n_groups,
            "cycle record has {} groups, trace expects {}",
            groups.len(),
            self.n_groups
        );
        self.data.extend_from_slice(groups);
        self.cycles += 1;
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Number of accounting groups per cycle.
    pub fn group_count(&self) -> usize {
        self.n_groups
    }

    /// Whether the trace holds no cycles.
    pub fn is_empty(&self) -> bool {
        self.cycles == 0
    }

    /// Activity of one group in one cycle.
    ///
    /// # Panics
    ///
    /// Panics when `cycle` or `group` is out of range.
    pub fn activity(&self, cycle: usize, group: GroupId) -> GroupActivity {
        assert!(
            cycle < self.cycles,
            "cycle {cycle} out of range ({})",
            self.cycles
        );
        assert!(group.index() < self.n_groups, "group out of range");
        self.data[cycle * self.n_groups + group.index()]
    }

    /// Summed activity over all groups in one cycle.
    ///
    /// # Panics
    ///
    /// Panics when `cycle` is out of range.
    pub fn total(&self, cycle: usize) -> GroupActivity {
        assert!(
            cycle < self.cycles,
            "cycle {cycle} out of range ({})",
            self.cycles
        );
        let mut sum = GroupActivity::default();
        for g in 0..self.n_groups {
            sum += self.data[cycle * self.n_groups + g];
        }
        sum
    }

    /// Per-cycle activity of one group, over the whole trace.
    pub fn group_series(&self, group: GroupId) -> Vec<GroupActivity> {
        (0..self.cycles).map(|c| self.activity(c, group)).collect()
    }

    /// Aggregate activity of one group over all cycles.
    pub fn group_sum(&self, group: GroupId) -> GroupActivity {
        let mut sum = GroupActivity::default();
        for c in 0..self.cycles {
            sum += self.activity(c, group);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(clk: u32, data: u32) -> GroupActivity {
        GroupActivity {
            reg_clock_events: clk,
            reg_data_toggles: data,
            ..Default::default()
        }
    }

    #[test]
    fn push_and_query_round_trip() {
        let mut trace = ActivityTrace::new(2);
        trace.push_cycle(&[act(3, 1), act(5, 5)]);
        trace.push_cycle(&[act(0, 0), act(2, 1)]);

        assert_eq!(trace.cycles(), 2);
        assert_eq!(trace.activity(0, GroupId::TOP).reg_clock_events, 3);
        assert_eq!(trace.total(0).reg_clock_events, 8);
        assert_eq!(trace.total(1).reg_data_toggles, 1);
    }

    #[test]
    #[should_panic(expected = "cycle record has")]
    fn mismatched_group_count_panics() {
        let mut trace = ActivityTrace::new(2);
        trace.push_cycle(&[act(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cycle_panics() {
        let trace = ActivityTrace::new(1);
        trace.total(0);
    }

    #[test]
    fn group_series_and_sum() {
        let mut trace = ActivityTrace::new(1);
        for i in 0..4 {
            trace.push_cycle(&[act(i, 1)]);
        }
        let series = trace.group_series(GroupId::TOP);
        assert_eq!(series.len(), 4);
        assert_eq!(series[2].reg_clock_events, 2);
        let sum = trace.group_sum(GroupId::TOP);
        assert_eq!(sum.reg_clock_events, 6);
        assert_eq!(sum.reg_data_toggles, 4);
    }

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = GroupActivity {
            reg_clock_events: 1,
            reg_data_toggles: 2,
            buffer_events: 3,
            icg_events: 4,
        };
        a += a;
        assert_eq!(a.reg_clock_events, 2);
        assert_eq!(a.reg_data_toggles, 4);
        assert_eq!(a.buffer_events, 6);
        assert_eq!(a.icg_events, 8);
        assert_eq!(a.total_events(), 20);
    }
}
