use crate::{ActivityTrace, GroupActivity, SignalDriver, SimError};
use clockmark_netlist::{
    CellId, CellKind, ClockInput, ClockRootId, DataSource, Netlist, SignalExpr, SignalId,
};

/// A prepared, owned view of a cell for fast per-cycle evaluation.
#[derive(Debug, Clone, Copy)]
enum PreparedCell {
    Register {
        group: usize,
        clock: PreparedClock,
        data: DataSource,
        sync_enable: Option<usize>,
    },
    Icg {
        group: usize,
        clock: PreparedClock,
        enable: usize,
    },
    Buffer {
        group: usize,
        clock: PreparedClock,
    },
}

#[derive(Debug, Clone, Copy)]
enum PreparedClock {
    Root(usize),
    Cell(usize),
}

/// A deterministic cycle-based simulator over a [`Netlist`].
///
/// Construction snapshots the netlist into flat arrays, so the simulator
/// owns its state and the netlist can be dropped or mutated afterwards.
/// Each [`step`](CycleSim::step) advances one full clock cycle with standard
/// synchronous semantics:
///
/// 1. combinational signals are evaluated from *pre-edge* register outputs
///    and external drivers;
/// 2. clock enables are resolved through the (possibly gated) clock tree;
/// 3. clocked registers sample their data inputs simultaneously.
///
/// Activity counters are accumulated per cell group so that watermark and
/// system power can be separated later.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct CycleSim {
    cells: Vec<PreparedCell>,
    signal_exprs: Vec<SignalExpr>,
    /// Initial register values, for [`reset`](CycleSim::reset).
    init_values: Vec<bool>,
    /// Current register output per cell slot (unused for non-registers).
    reg_values: Vec<bool>,
    /// Scratch for next-state values.
    next_values: Vec<bool>,
    /// Current signal values.
    signal_values: Vec<bool>,
    /// Per-signal external driver (None = undriven or non-external).
    drivers: Vec<Option<SignalDriver>>,
    root_running: Vec<bool>,
    /// Per-cell clock activity this cycle (output activity for sources).
    clock_active: Vec<bool>,
    group_scratch: Vec<GroupActivity>,
    cycle: u64,
}

impl CycleSim {
    /// Prepares a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Netlist`] when the netlist fails validation
    /// (e.g. a clock cycle).
    pub fn new(netlist: &Netlist) -> Result<Self, SimError> {
        netlist.validate()?;

        let mut cells = Vec::with_capacity(netlist.cell_count());
        let mut init_values = vec![false; netlist.cell_count()];
        let prep_clock = |clock: ClockInput| match clock {
            ClockInput::Root(r) => PreparedClock::Root(r.index()),
            ClockInput::Cell(c) => PreparedClock::Cell(c.index()),
        };
        for (id, cell) in netlist.cells() {
            let group = cell.group.index();
            let prepared = match cell.kind {
                CellKind::Register(config) => {
                    init_values[id.index()] = config.init;
                    PreparedCell::Register {
                        group,
                        clock: prep_clock(config.clock),
                        data: config.data,
                        sync_enable: config.sync_enable.map(|s| s.index()),
                    }
                }
                CellKind::ClockGate { clock, enable } => PreparedCell::Icg {
                    group,
                    clock: prep_clock(clock),
                    enable: enable.index(),
                },
                CellKind::ClockBuffer { clock } => PreparedCell::Buffer {
                    group,
                    clock: prep_clock(clock),
                },
            };
            cells.push(prepared);
        }

        let signal_exprs: Vec<SignalExpr> = netlist.signals().map(|(_, s)| s.expr).collect();
        let n_cells = cells.len();
        let n_signals = signal_exprs.len();

        Ok(CycleSim {
            cells,
            signal_exprs,
            reg_values: init_values.clone(),
            next_values: init_values.clone(),
            init_values,
            signal_values: vec![false; n_signals],
            drivers: (0..n_signals).map(|_| None).collect(),
            root_running: vec![true; netlist.clock_root_count()],
            clock_active: vec![false; n_cells],
            group_scratch: vec![GroupActivity::default(); netlist.group_count()],
            cycle: 0,
        })
    }

    /// Attaches a driver to an external signal.
    ///
    /// Replaces any previous driver. Undriven external signals read as
    /// `false`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DriverForNonExternal`] when the signal's
    /// expression is not [`SignalExpr::External`], and
    /// [`SimError::Netlist`] for a dangling id.
    pub fn drive(&mut self, signal: SignalId, driver: SignalDriver) -> Result<(), SimError> {
        let expr = self
            .signal_exprs
            .get(signal.index())
            .ok_or(SimError::Netlist(
                clockmark_netlist::NetlistError::UnknownSignal { signal },
            ))?;
        if !matches!(expr, SignalExpr::External) {
            return Err(SimError::DriverForNonExternal { signal });
        }
        self.drivers[signal.index()] = Some(driver);
        Ok(())
    }

    /// Starts or stops a top-level clock root. Roots start running.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Netlist`] for a dangling id.
    pub fn set_root_running(&mut self, root: ClockRootId, running: bool) -> Result<(), SimError> {
        let slot = self
            .root_running
            .get_mut(root.index())
            .ok_or(SimError::Netlist(
                clockmark_netlist::NetlistError::UnknownClockRoot,
            ))?;
        *slot = running;
        Ok(())
    }

    /// Number of cycles simulated since construction or the last
    /// [`reset`](CycleSim::reset).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The current output value of a register.
    ///
    /// # Panics
    ///
    /// Panics when `cell` is out of range (it must come from the simulated
    /// netlist).
    pub fn register_value(&self, cell: CellId) -> bool {
        self.reg_values[cell.index()]
    }

    /// The value a signal evaluated to in the most recent cycle.
    ///
    /// # Panics
    ///
    /// Panics when `signal` is out of range.
    pub fn signal_value(&self, signal: SignalId) -> bool {
        self.signal_values[signal.index()]
    }

    /// Whether a cell's clock was active in the most recent cycle (for
    /// clock sources: whether their *output* clock ran).
    ///
    /// # Panics
    ///
    /// Panics when `cell` is out of range.
    pub fn clock_was_active(&self, cell: CellId) -> bool {
        self.clock_active[cell.index()]
    }

    /// Returns registers and drivers to their initial state.
    pub fn reset(&mut self) {
        self.reg_values.copy_from_slice(&self.init_values);
        self.next_values.copy_from_slice(&self.init_values);
        for d in self.drivers.iter_mut().flatten() {
            d.reset();
        }
        for v in &mut self.signal_values {
            *v = false;
        }
        for a in &mut self.clock_active {
            *a = false;
        }
        self.cycle = 0;
    }

    /// Advances one clock cycle and returns per-group activity counters.
    ///
    /// The returned slice is indexed by
    /// [`GroupId::index`](clockmark_netlist::GroupId::index) and is valid
    /// until the next call.
    pub fn step(&mut self) -> &[GroupActivity] {
        for g in &mut self.group_scratch {
            *g = GroupActivity::default();
        }

        // Phase 1: evaluate signals in declaration order (declaration order
        // is topological because forward references are rejected at build
        // time).
        for i in 0..self.signal_exprs.len() {
            let value = match self.signal_exprs[i] {
                SignalExpr::Const(v) => v,
                SignalExpr::External => match &mut self.drivers[i] {
                    Some(d) => d.next_value(),
                    None => false,
                },
                SignalExpr::RegOutput(cell) => self.reg_values[cell.index()],
                SignalExpr::And(a, b) => {
                    self.signal_values[a.index()] && self.signal_values[b.index()]
                }
                SignalExpr::Or(a, b) => {
                    self.signal_values[a.index()] || self.signal_values[b.index()]
                }
                SignalExpr::Xor(a, b) => {
                    self.signal_values[a.index()] ^ self.signal_values[b.index()]
                }
                SignalExpr::Not(a) => !self.signal_values[a.index()],
            };
            self.signal_values[i] = value;
        }

        // Phase 2: propagate clock activity (cells appear after their clock
        // drivers, so one forward pass suffices) and count clocked events.
        // Phase 3 is fused: register next states read only pre-edge values.
        for i in 0..self.cells.len() {
            let upstream = |clock: PreparedClock, active: &[bool], roots: &[bool]| match clock {
                PreparedClock::Root(r) => roots[r],
                PreparedClock::Cell(c) => active[c],
            };
            match self.cells[i] {
                PreparedCell::Buffer { group, clock } => {
                    let up = upstream(clock, &self.clock_active, &self.root_running);
                    self.clock_active[i] = up;
                    if up {
                        self.group_scratch[group].buffer_events += 1;
                    }
                }
                PreparedCell::Icg {
                    group,
                    clock,
                    enable,
                } => {
                    let up = upstream(clock, &self.clock_active, &self.root_running);
                    self.clock_active[i] = up && self.signal_values[enable];
                    if up {
                        self.group_scratch[group].icg_events += 1;
                    }
                }
                PreparedCell::Register {
                    group,
                    clock,
                    data,
                    sync_enable,
                } => {
                    let clocked = upstream(clock, &self.clock_active, &self.root_running);
                    self.clock_active[i] = clocked;
                    let current = self.reg_values[i];
                    let mut next = current;
                    if clocked {
                        self.group_scratch[group].reg_clock_events += 1;
                        let enabled = match sync_enable {
                            Some(s) => self.signal_values[s],
                            None => true,
                        };
                        if enabled {
                            next = match data {
                                DataSource::Constant(v) => v,
                                DataSource::Toggle => !current,
                                DataSource::ShiftFrom(src) => self.reg_values[src.index()],
                                DataSource::Signal(sig) => self.signal_values[sig.index()],
                                DataSource::Hold => current,
                            };
                        }
                        if next != current {
                            self.group_scratch[group].reg_data_toggles += 1;
                        }
                    }
                    self.next_values[i] = next;
                }
            }
        }

        // Phase 4: commit register updates simultaneously.
        std::mem::swap(&mut self.reg_values, &mut self.next_values);
        self.cycle += 1;
        &self.group_scratch
    }

    /// Runs `cycles` cycles and collects the per-cycle activity trace.
    pub fn run(&mut self, cycles: usize) -> Result<ActivityTrace, SimError> {
        let _span = clockmark_obs::span("sim.run")
            .field("cycles", cycles)
            .field("groups", self.group_scratch.len());
        let mut trace = ActivityTrace::new(self.group_scratch.len());
        for _ in 0..cycles {
            self.step();
            let scratch = self.group_scratch.clone();
            trace.push_cycle(&scratch);
        }
        clockmark_obs::counter_add("sim.cycles", cycles as u64);
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark_netlist::{GroupId, RegisterConfig};
    use clockmark_seq::{Lfsr, SequenceGenerator};

    fn base() -> (Netlist, ClockRootId) {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        (n, clk)
    }

    #[test]
    fn toggle_register_toggles_every_cycle() {
        let (mut n, clk) = base();
        let reg = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::Toggle),
            )
            .expect("register");
        let mut sim = CycleSim::new(&n).expect("valid");
        let mut values = Vec::new();
        for _ in 0..4 {
            sim.step();
            values.push(sim.register_value(reg));
        }
        assert_eq!(values, [true, false, true, false]);
        let trace = {
            sim.reset();
            sim.run(4).expect("runs")
        };
        for c in 0..4 {
            let a = trace.total(c);
            assert_eq!(a.reg_clock_events, 1);
            assert_eq!(a.reg_data_toggles, 1);
        }
    }

    #[test]
    fn hold_register_burns_clock_but_no_data_power() {
        let (mut n, clk) = base();
        n.add_register(
            GroupId::TOP,
            RegisterConfig::new(clk.into()).data(DataSource::Hold),
        )
        .expect("register");
        let mut sim = CycleSim::new(&n).expect("valid");
        let trace = sim.run(5).expect("runs");
        for c in 0..5 {
            assert_eq!(trace.total(c).reg_clock_events, 1);
            assert_eq!(trace.total(c).reg_data_toggles, 0);
        }
    }

    #[test]
    fn gated_register_consumes_nothing_when_disabled() {
        let (mut n, clk) = base();
        let en = n.add_signal("en", SignalExpr::External).expect("signal");
        let icg = n.add_icg(GroupId::TOP, clk.into(), en).expect("icg");
        n.add_register(
            GroupId::TOP,
            RegisterConfig::new(icg.into()).data(DataSource::Toggle),
        )
        .expect("register");

        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(en, SignalDriver::bits([true, false, false, true], false))
            .expect("external");
        let trace = sim.run(4).expect("runs");

        let clocks: Vec<u32> = (0..4).map(|c| trace.total(c).reg_clock_events).collect();
        assert_eq!(clocks, [1, 0, 0, 1]);
        // The ICG itself still sees its input clock every cycle.
        let icgs: Vec<u32> = (0..4).map(|c| trace.total(c).icg_events).collect();
        assert_eq!(icgs, [1, 1, 1, 1]);
        let _ = icg;
    }

    #[test]
    fn circular_shift_chain_rotates() {
        // 3-stage circular chain seeded 1,0,0 — the loop is closed with
        // set_register_data after all stages exist.
        let (mut n, clk) = base();
        let r0 = n
            .add_register(GroupId::TOP, RegisterConfig::new(clk.into()).init(true))
            .expect("r0");
        let r1 = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::ShiftFrom(r0)),
            )
            .expect("r1");
        let r2 = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(clk.into()).data(DataSource::ShiftFrom(r1)),
            )
            .expect("r2");
        n.set_register_data(r0, DataSource::ShiftFrom(r2))
            .expect("close loop");

        let mut sim = CycleSim::new(&n).expect("valid");
        let mut states = Vec::new();
        for _ in 0..6 {
            sim.step();
            states.push([
                sim.register_value(r0),
                sim.register_value(r1),
                sim.register_value(r2),
            ]);
        }
        // The single 1 walks around the ring with period 3.
        assert_eq!(states[0], [false, true, false]);
        assert_eq!(states[1], [false, false, true]);
        assert_eq!(states[2], [true, false, false]);
        assert_eq!(states[3], states[0]);
    }

    #[test]
    fn structural_lfsr_matches_software_model() {
        // Build a 4-bit Fibonacci LFSR (taps 4,3) out of registers and
        // signals and verify it reproduces the software Lfsr bit stream.
        // State bit i lives in register s[i]; shifting right, the output is
        // s[0]; feedback = s[0] ^ s[1] (taps n and n−1 read state bits 0
        // and 1 in the right-shift convention) enters at s[3].
        let (mut n, clk) = base();
        let s: Vec<_> = (0..4)
            .map(|i| {
                n.add_register(GroupId::TOP, RegisterConfig::new(clk.into()).init(i == 0))
                    .expect("state register")
            })
            .collect();
        for i in 0..3 {
            n.set_register_data(s[i], DataSource::ShiftFrom(s[i + 1]))
                .expect("shift");
        }
        let q0 = n.add_signal("q0", SignalExpr::RegOutput(s[0])).expect("q0");
        let q1 = n.add_signal("q1", SignalExpr::RegOutput(s[1])).expect("q1");
        let fb = n.add_signal("fb", SignalExpr::Xor(q0, q1)).expect("fb");
        n.set_register_data(s[3], DataSource::Signal(fb))
            .expect("feedback");

        let mut reference = Lfsr::maximal_with_seed(4, 1).expect("valid");
        let mut sim = CycleSim::new(&n).expect("valid");
        for cycle in 0..45 {
            // Output is the pre-edge value of s[0], matching the software
            // model which returns the bit shifted out.
            let hardware = sim.register_value(s[0]);
            let software = reference.next_bit();
            assert_eq!(hardware, software, "divergence at cycle {cycle}");
            sim.step();
        }
    }

    #[test]
    fn stopping_the_root_freezes_everything() {
        let (mut n, clk) = base();
        n.add_register(
            GroupId::TOP,
            RegisterConfig::new(clk.into()).data(DataSource::Toggle),
        )
        .expect("register");
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.set_root_running(clk, false).expect("known root");
        let trace = sim.run(3).expect("runs");
        for c in 0..3 {
            assert_eq!(trace.total(c).total_events(), 0);
        }
    }

    #[test]
    fn sync_enable_gates_data_but_not_clock() {
        let (mut n, clk) = base();
        let en = n.add_signal("en", SignalExpr::External).expect("signal");
        n.add_register(
            GroupId::TOP,
            RegisterConfig::new(clk.into())
                .data(DataSource::Toggle)
                .sync_enable(en),
        )
        .expect("register");
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(en, SignalDriver::bits([false, true, false], false))
            .expect("external");
        let trace = sim.run(3).expect("runs");
        let clocks: Vec<u32> = (0..3).map(|c| trace.total(c).reg_clock_events).collect();
        let toggles: Vec<u32> = (0..3).map(|c| trace.total(c).reg_data_toggles).collect();
        assert_eq!(clocks, [1, 1, 1], "clock pin toggles regardless of enable");
        assert_eq!(toggles, [0, 1, 0], "data only moves when enabled");
    }

    #[test]
    fn driver_on_non_external_signal_is_rejected() {
        let (mut n, _clk) = base();
        let c = n.add_signal("c", SignalExpr::Const(true)).expect("signal");
        let mut sim = CycleSim::new(&n).expect("valid");
        let err = sim.drive(c, SignalDriver::Constant(false)).unwrap_err();
        assert_eq!(err, SimError::DriverForNonExternal { signal: c });
    }

    #[test]
    fn generator_driver_controls_icg_like_a_wgc() {
        let (mut n, clk) = base();
        let wm = n.add_group("watermark");
        let wmark = n.add_signal("wmark", SignalExpr::External).expect("signal");
        let icg = n.add_icg(wm, clk.into(), wmark).expect("icg");
        for _ in 0..8 {
            n.add_register(wm, RegisterConfig::new(icg.into()).data(DataSource::Toggle))
                .expect("register");
        }

        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(
            wmark,
            SignalDriver::generator(Lfsr::maximal(6).expect("valid")),
        )
        .expect("external");
        let trace = sim.run(63).expect("runs");

        let mut reference = Lfsr::maximal(6).expect("valid");
        for c in 0..63 {
            let expected = if reference.next_bit() { 8 } else { 0 };
            assert_eq!(
                trace.activity(c, wm).reg_clock_events,
                expected,
                "cycle {c}: gated block clocks iff WMARK is 1"
            );
        }
    }

    #[test]
    fn reset_restores_initial_state_and_replays() {
        let (mut n, clk) = base();
        let en = n.add_signal("en", SignalExpr::External).expect("signal");
        let icg = n.add_icg(GroupId::TOP, clk.into(), en).expect("icg");
        n.add_register(
            GroupId::TOP,
            RegisterConfig::new(icg.into()).data(DataSource::Toggle),
        )
        .expect("register");

        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(
            en,
            SignalDriver::generator(Lfsr::maximal(5).expect("valid")),
        )
        .expect("external");
        let first = sim.run(40).expect("runs");
        sim.reset();
        assert_eq!(sim.cycle(), 0);
        let second = sim.run(40).expect("runs");
        assert_eq!(first, second);
    }
}
