//! Value-change-dump (VCD) export of simulation waveforms.
//!
//! Lets any simulation be inspected in a standard waveform viewer
//! (GTKWave etc.) — the debugging loop a hardware engineer expects when
//! validating a watermark embedding, and the medium in which the paper's
//! Fig. 2 waveforms would actually be produced.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use clockmark_netlist::{DataSource, GroupId, Netlist, RegisterConfig, SignalExpr};
//! use clockmark_sim::{CycleSim, SignalDriver, VcdProbe};
//!
//! let mut netlist = Netlist::new();
//! let clk = netlist.add_clock_root("clk");
//! let en = netlist.add_signal("en", SignalExpr::External)?;
//! let icg = netlist.add_icg(GroupId::TOP, clk.into(), en)?;
//! let reg = netlist.add_register(
//!     GroupId::TOP,
//!     RegisterConfig::new(icg.into()).data(DataSource::Toggle),
//! )?;
//!
//! let mut sim = CycleSim::new(&netlist)?;
//! sim.drive(en, SignalDriver::bits([true, false, true], true))?;
//!
//! let mut probe = VcdProbe::new("clockmark quickstart");
//! probe.watch_signal(en, "en");
//! probe.watch_register(reg, "q");
//! for _ in 0..6 {
//!     sim.step();
//!     probe.sample(&sim);
//! }
//!
//! let mut out = Vec::new();
//! probe.write(&mut out)?;
//! let vcd = String::from_utf8(out)?;
//! assert!(vcd.contains("$var wire 1"));
//! assert!(vcd.contains("$enddefinitions"));
//! # Ok(())
//! # }
//! ```

use crate::CycleSim;
use clockmark_netlist::{CellId, SignalId};
use std::io::{self, Write};

/// What a probe channel observes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Channel {
    Signal(SignalId, String),
    Register(CellId, String),
    ClockActive(CellId, String),
}

impl Channel {
    fn name(&self) -> &str {
        match self {
            Channel::Signal(_, n) | Channel::Register(_, n) | Channel::ClockActive(_, n) => n,
        }
    }

    fn read(&self, sim: &CycleSim) -> bool {
        match self {
            Channel::Signal(id, _) => sim.signal_value(*id),
            Channel::Register(id, _) => sim.register_value(*id),
            Channel::ClockActive(id, _) => sim.clock_was_active(*id),
        }
    }
}

/// Records named signal/register waveforms during simulation and writes
/// them as a VCD file.
///
/// Channels are registered up front, then [`sample`](VcdProbe::sample) is
/// called once per simulated cycle (after [`CycleSim::step`]). The writer
/// emits one VCD timestep per cycle with change-only value dumps, as the
/// format requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdProbe {
    comment: String,
    channels: Vec<Channel>,
    /// samples[cycle][channel]
    samples: Vec<Vec<bool>>,
    /// Clock period in nanoseconds (for the timescale header).
    period_ns: u64,
}

impl VcdProbe {
    /// Creates an empty probe. `comment` lands in the VCD header.
    pub fn new(comment: &str) -> Self {
        VcdProbe {
            comment: comment.to_owned(),
            channels: Vec::new(),
            samples: Vec::new(),
            period_ns: 100, // 10 MHz default
        }
    }

    /// Sets the clock period used for the `$timescale` header.
    pub fn with_period_ns(mut self, period_ns: u64) -> Self {
        self.period_ns = period_ns.max(1);
        self
    }

    /// Watches a combinational signal.
    ///
    /// # Panics
    ///
    /// Panics if called after the first [`sample`](VcdProbe::sample) —
    /// channels must be homogeneous across all samples.
    pub fn watch_signal(&mut self, signal: SignalId, name: &str) {
        assert!(self.samples.is_empty(), "register channels before sampling");
        self.channels.push(Channel::Signal(signal, name.to_owned()));
    }

    /// Watches a register's output value.
    ///
    /// # Panics
    ///
    /// Panics if called after the first [`sample`](VcdProbe::sample).
    pub fn watch_register(&mut self, cell: CellId, name: &str) {
        assert!(self.samples.is_empty(), "register channels before sampling");
        self.channels.push(Channel::Register(cell, name.to_owned()));
    }

    /// Watches whether a cell's clock was active each cycle (the gated
    /// clock waveform `CLK_WMARK` of the paper's Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if called after the first [`sample`](VcdProbe::sample).
    pub fn watch_clock(&mut self, cell: CellId, name: &str) {
        assert!(self.samples.is_empty(), "register channels before sampling");
        self.channels
            .push(Channel::ClockActive(cell, name.to_owned()));
    }

    /// Number of registered channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> usize {
        self.samples.len()
    }

    /// Captures the current values of all channels (call after each
    /// [`CycleSim::step`]).
    pub fn sample(&mut self, sim: &CycleSim) {
        let row: Vec<bool> = self.channels.iter().map(|c| c.read(sim)).collect();
        self.samples.push(row);
    }

    /// VCD identifier code for a channel index (printable ASCII from `!`).
    fn code(index: usize) -> String {
        // Base-94 over the printable range '!'..='~'.
        let mut index = index;
        let mut out = String::new();
        loop {
            out.push((b'!' + (index % 94) as u8) as char);
            index /= 94;
            if index == 0 {
                break;
            }
            index -= 1;
        }
        out
    }

    /// Writes the recorded waveform as VCD.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer (a `&mut Vec<u8>` or
    /// `&mut File` can be passed, since `Write` is implemented for mutable
    /// references).
    pub fn write<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "$comment {} $end", self.comment)?;
        writeln!(w, "$timescale 1ns $end")?;
        writeln!(w, "$scope module clockmark $end")?;
        for (i, channel) in self.channels.iter().enumerate() {
            writeln!(w, "$var wire 1 {} {} $end", Self::code(i), channel.name())?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;

        let mut last: Vec<Option<bool>> = vec![None; self.channels.len()];
        for (cycle, row) in self.samples.iter().enumerate() {
            let changes: Vec<(usize, bool)> = row
                .iter()
                .enumerate()
                .filter(|(i, v)| last[*i] != Some(**v))
                .map(|(i, v)| (i, *v))
                .collect();
            if !changes.is_empty() {
                writeln!(w, "#{}", cycle as u64 * self.period_ns)?;
                for (i, v) in changes {
                    writeln!(w, "{}{}", if v { '1' } else { '0' }, Self::code(i))?;
                    last[i] = Some(v);
                }
            }
        }
        // Final timestamp closing the trace.
        writeln!(w, "#{}", self.samples.len() as u64 * self.period_ns)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignalDriver;
    use clockmark_netlist::{DataSource, GroupId, Netlist, RegisterConfig, SignalExpr};

    fn toggled_netlist() -> (Netlist, SignalId, CellId, CellId) {
        let mut n = Netlist::new();
        let clk = n.add_clock_root("clk");
        let en = n.add_signal("en", SignalExpr::External).expect("signal");
        let icg = n.add_icg(GroupId::TOP, clk.into(), en).expect("icg");
        let reg = n
            .add_register(
                GroupId::TOP,
                RegisterConfig::new(icg.into()).data(DataSource::Toggle),
            )
            .expect("register");
        (n, en, icg, reg)
    }

    fn render(probe: &VcdProbe) -> String {
        let mut out = Vec::new();
        probe.write(&mut out).expect("writes");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn header_declares_every_channel() {
        let (n, en, icg, reg) = toggled_netlist();
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(en, SignalDriver::Constant(true))
            .expect("external");

        let mut probe = VcdProbe::new("test");
        probe.watch_signal(en, "enable");
        probe.watch_register(reg, "q");
        probe.watch_clock(icg, "clk_gated");
        sim.step();
        probe.sample(&sim);

        let vcd = render(&probe);
        assert!(vcd.contains("$var wire 1 ! enable $end"));
        assert!(vcd.contains("$var wire 1 \" q $end"));
        assert!(vcd.contains("$var wire 1 # clk_gated $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$comment test $end"));
    }

    #[test]
    fn toggling_register_produces_change_per_cycle() {
        let (n, en, _icg, reg) = toggled_netlist();
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(en, SignalDriver::Constant(true))
            .expect("external");

        let mut probe = VcdProbe::new("toggle").with_period_ns(100);
        probe.watch_register(reg, "q");
        for _ in 0..4 {
            sim.step();
            probe.sample(&sim);
        }
        let vcd = render(&probe);
        // q goes 1,0,1,0 → a change at every timestep.
        for t in [0u64, 100, 200, 300] {
            assert!(
                vcd.contains(&format!("#{t}\n")),
                "missing timestep {t}:\n{vcd}"
            );
        }
        assert!(vcd.contains("1!"));
        assert!(vcd.contains("0!"));
    }

    #[test]
    fn unchanged_values_are_not_re_dumped() {
        let (n, en, _icg, reg) = toggled_netlist();
        let mut sim = CycleSim::new(&n).expect("valid");
        // Gated off: the register never changes after the first sample.
        sim.drive(en, SignalDriver::Constant(false))
            .expect("external");

        let mut probe = VcdProbe::new("static").with_period_ns(10);
        probe.watch_register(reg, "q");
        for _ in 0..5 {
            sim.step();
            probe.sample(&sim);
        }
        let vcd = render(&probe);
        let dumps = vcd.matches("0!").count() + vcd.matches("1!").count();
        assert_eq!(dumps, 1, "only the initial value dump:\n{vcd}");
    }

    #[test]
    fn gated_clock_channel_mirrors_wmark() {
        let (n, en, icg, _reg) = toggled_netlist();
        let mut sim = CycleSim::new(&n).expect("valid");
        sim.drive(en, SignalDriver::bits([true, false, true, false], true))
            .expect("external");

        let mut probe = VcdProbe::new("gate").with_period_ns(1);
        probe.watch_clock(icg, "clk_wmark");
        for _ in 0..4 {
            sim.step();
            probe.sample(&sim);
        }
        assert_eq!(probe.cycles(), 4);
        let vcd = render(&probe);
        // Alternating gate → change at every step.
        assert!(vcd.contains("#0\n1!"));
        assert!(vcd.contains("#1\n0!"));
        assert!(vcd.contains("#2\n1!"));
        assert!(vcd.contains("#3\n0!"));
    }

    #[test]
    fn identifier_codes_are_unique_and_printable() {
        let codes: Vec<String> = (0..500).map(VcdProbe::code).collect();
        let unique: std::collections::HashSet<&String> = codes.iter().collect();
        assert_eq!(unique.len(), codes.len());
        for code in &codes {
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)), "{code}");
        }
    }

    #[test]
    #[should_panic(expected = "before sampling")]
    fn adding_channels_after_sampling_panics() {
        let (n, en, _icg, reg) = toggled_netlist();
        let mut sim = CycleSim::new(&n).expect("valid");
        let mut probe = VcdProbe::new("late");
        probe.watch_register(reg, "q");
        sim.step();
        probe.sample(&sim);
        probe.watch_signal(en, "too_late");
    }
}
