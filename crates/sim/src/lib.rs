//! Deterministic cycle-based netlist simulation with switching-activity
//! accounting.
//!
//! Correlation power analysis consumes one averaged power value per clock
//! cycle, so this simulator advances whole clock cycles and reports, for
//! every cycle and every cell group, how many register clock pins toggled,
//! how many register outputs changed, and how many clock-tree cells were
//! active. A power model (the `clockmark-power` crate) then prices those
//! events.
//!
//! # Example: watching a clock gate stop the clock
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use clockmark_netlist::{DataSource, GroupId, Netlist, RegisterConfig, SignalExpr};
//! use clockmark_sim::{CycleSim, SignalDriver};
//!
//! let mut netlist = Netlist::new();
//! let clk = netlist.add_clock_root("clk");
//! let enable = netlist.add_signal("enable", SignalExpr::External)?;
//! let icg = netlist.add_icg(GroupId::TOP, clk.into(), enable)?;
//! let reg = netlist.add_register(
//!     GroupId::TOP,
//!     RegisterConfig::new(icg.into()).data(DataSource::Toggle),
//! )?;
//!
//! let mut sim = CycleSim::new(&netlist)?;
//! sim.drive(enable, SignalDriver::bits([true, true, false, true], false))?;
//!
//! let trace = sim.run(4)?;
//! let toggles: Vec<u32> = (0..4).map(|c| trace.total(c).reg_clock_events).collect();
//! assert_eq!(toggles, [1, 1, 0, 1], "the gated cycle clocks no register");
//! # let _ = reg;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod error;
mod sim;
mod stimulus;
mod vcd;

pub use activity::{ActivityTrace, GroupActivity};
pub use error::SimError;
pub use sim::CycleSim;
pub use stimulus::SignalDriver;
pub use vcd::VcdProbe;
