use clockmark_seq::SequenceGenerator;

/// A per-cycle value source for an
/// [`External`](clockmark_netlist::SignalExpr::External) signal.
///
/// Drivers are polled once per simulated cycle. Undriven external signals
/// read as constant `false`.
pub enum SignalDriver {
    /// A constant level.
    Constant(bool),
    /// An explicit per-cycle bit vector. When `repeat` is true the vector
    /// tiles forever; otherwise the driver holds `false` after the end.
    Bits {
        /// The per-cycle values.
        bits: Vec<bool>,
        /// Whether to tile the vector.
        repeat: bool,
        /// Current position (internal cursor).
        position: usize,
    },
    /// A sequence generator (e.g. the software model of a WGC LFSR).
    Generator(Box<dyn SequenceGenerator>),
}

impl SignalDriver {
    /// Convenience constructor for [`SignalDriver::Bits`].
    pub fn bits<I: IntoIterator<Item = bool>>(bits: I, repeat: bool) -> Self {
        SignalDriver::Bits {
            bits: bits.into_iter().collect(),
            repeat,
            position: 0,
        }
    }

    /// Convenience constructor wrapping a sequence generator.
    pub fn generator<G: SequenceGenerator + 'static>(generator: G) -> Self {
        SignalDriver::Generator(Box::new(generator))
    }

    /// Produces the value for the next cycle.
    pub fn next_value(&mut self) -> bool {
        match self {
            SignalDriver::Constant(v) => *v,
            SignalDriver::Bits {
                bits,
                repeat,
                position,
            } => {
                if bits.is_empty() {
                    return false;
                }
                if *position >= bits.len() {
                    if *repeat {
                        *position = 0;
                    } else {
                        return false;
                    }
                }
                let v = bits[*position];
                *position += 1;
                v
            }
            SignalDriver::Generator(g) => g.next_bit(),
        }
    }

    /// Rewinds the driver to its initial state.
    pub fn reset(&mut self) {
        match self {
            SignalDriver::Constant(_) => {}
            SignalDriver::Bits { position, .. } => *position = 0,
            SignalDriver::Generator(g) => g.reset(),
        }
    }
}

impl std::fmt::Debug for SignalDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignalDriver::Constant(v) => f.debug_tuple("Constant").field(v).finish(),
            SignalDriver::Bits {
                bits,
                repeat,
                position,
            } => f
                .debug_struct("Bits")
                .field("len", &bits.len())
                .field("repeat", repeat)
                .field("position", position)
                .finish(),
            SignalDriver::Generator(_) => f.debug_tuple("Generator").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockmark_seq::Lfsr;

    #[test]
    fn constant_driver_never_changes() {
        let mut d = SignalDriver::Constant(true);
        for _ in 0..10 {
            assert!(d.next_value());
        }
    }

    #[test]
    fn bits_driver_holds_false_after_end() {
        let mut d = SignalDriver::bits([true, true], false);
        assert!(d.next_value());
        assert!(d.next_value());
        assert!(!d.next_value());
        assert!(!d.next_value());
    }

    #[test]
    fn bits_driver_tiles_when_repeating() {
        let mut d = SignalDriver::bits([true, false], true);
        let seq: Vec<bool> = (0..6).map(|_| d.next_value()).collect();
        assert_eq!(seq, [true, false, true, false, true, false]);
    }

    #[test]
    fn empty_bits_driver_reads_false() {
        let mut d = SignalDriver::bits([], true);
        assert!(!d.next_value());
    }

    #[test]
    fn generator_driver_matches_raw_generator() {
        let mut raw = Lfsr::maximal(8).expect("valid");
        let mut d = SignalDriver::generator(Lfsr::maximal(8).expect("valid"));
        for _ in 0..100 {
            assert_eq!(d.next_value(), raw.next_bit());
        }
    }

    #[test]
    fn reset_rewinds_all_driver_kinds() {
        let mut bits = SignalDriver::bits([true, false, false], false);
        let first: Vec<bool> = (0..3).map(|_| bits.next_value()).collect();
        bits.reset();
        let second: Vec<bool> = (0..3).map(|_| bits.next_value()).collect();
        assert_eq!(first, second);

        let mut generator = SignalDriver::generator(Lfsr::maximal(6).expect("valid"));
        let first: Vec<bool> = (0..10).map(|_| generator.next_value()).collect();
        generator.reset();
        let second: Vec<bool> = (0..10).map(|_| generator.next_value()).collect();
        assert_eq!(first, second);
    }
}
