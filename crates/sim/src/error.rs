use clockmark_netlist::{NetlistError, SignalId};
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A driver was attached to a signal that is not declared
    /// [`SignalExpr::External`](clockmark_netlist::SignalExpr::External).
    DriverForNonExternal {
        /// The offending signal.
        signal: SignalId,
    },
    /// A structural problem was found in the underlying netlist.
    Netlist(NetlistError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DriverForNonExternal { signal } => {
                write!(f, "signal {signal} is not external and cannot be driven")
            }
            SimError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_errors_convert_and_chain() {
        let err: SimError = NetlistError::UnknownClockRoot.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("netlist error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
