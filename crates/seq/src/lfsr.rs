use crate::taps::maximal_taps;
use crate::{SeqError, SequenceGenerator, MAX_LFSR_WIDTH, MIN_LFSR_WIDTH};

/// A Fibonacci (many-to-one) linear feedback shift register.
///
/// This is the structure used by the paper's watermark generation circuit:
/// a 12-bit maximal LFSR producing the `WMARK` control sequence of period
/// `2^12 - 1 = 4095`. The register shifts towards the least significant bit;
/// the output bit is the bit shifted out, and the feedback (XOR of the
/// tapped bits) is shifted into the most significant position.
///
/// ```
/// # fn main() -> Result<(), clockmark_seq::SeqError> {
/// use clockmark_seq::{Lfsr, SequenceGenerator};
///
/// // The configuration used in the paper's silicon experiments.
/// let mut wgc = Lfsr::maximal(12)?;
/// assert_eq!(wgc.period_hint(), Some(4095));
///
/// // A maximal sequence of width n contains 2^(n-1) ones per period.
/// let ones = (0..4095).filter(|_| wgc.next_bit()).count();
/// assert_eq!(ones, 2048);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lfsr {
    width: u32,
    /// Feedback mask over state bits: bit `n − t` is set for each 1-indexed
    /// tap `t`, so the bit being shifted out (tap `n` → bit 0) always
    /// participates in the feedback.
    tap_mask: u32,
    seed: u32,
    state: u32,
    maximal: bool,
}

impl Lfsr {
    /// Creates a maximal-length LFSR of the given width, seeded with 1.
    ///
    /// Tap positions come from the built-in table ([`maximal_taps`]); the
    /// resulting sequence has period `2^width - 1`.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::InvalidWidth`] for widths outside 2..=32.
    ///
    /// [`maximal_taps`]: crate::maximal_taps
    pub fn maximal(width: u32) -> Result<Self, SeqError> {
        Self::maximal_with_seed(width, 1)
    }

    /// Creates a maximal-length LFSR with an explicit non-zero seed.
    ///
    /// Different seeds produce phase-shifted versions of the same maximal
    /// sequence, which is how the test chips in the paper end up with
    /// different correlation-peak rotations.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::InvalidWidth`] for widths outside 2..=32 and
    /// [`SeqError::ZeroSeed`] when `seed` (masked to `width` bits) is zero.
    pub fn maximal_with_seed(width: u32, seed: u32) -> Result<Self, SeqError> {
        let taps = maximal_taps(width)?;
        let mut lfsr = Self::with_taps(width, taps, seed)?;
        lfsr.maximal = true;
        Ok(lfsr)
    }

    /// Creates an LFSR with explicit feedback taps (1-indexed positions).
    ///
    /// No maximality check is performed; [`period_hint`] returns `None` for
    /// custom taps. Use [`period_exhaustive`] to measure the actual cycle
    /// length.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::InvalidWidth`], [`SeqError::EmptyTaps`],
    /// [`SeqError::TapOutOfRange`] or [`SeqError::ZeroSeed`] on invalid
    /// configuration.
    ///
    /// [`period_hint`]: SequenceGenerator::period_hint
    /// [`period_exhaustive`]: Lfsr::period_exhaustive
    pub fn with_taps(width: u32, taps: &[u32], seed: u32) -> Result<Self, SeqError> {
        if !(MIN_LFSR_WIDTH..=MAX_LFSR_WIDTH).contains(&width) {
            return Err(SeqError::InvalidWidth { width });
        }
        if taps.is_empty() {
            return Err(SeqError::EmptyTaps);
        }
        let mut tap_mask = 0u32;
        for &tap in taps {
            if tap == 0 || tap > width {
                return Err(SeqError::TapOutOfRange { tap, width });
            }
            // Right-shift Fibonacci form: tap `t` of polynomial
            // x^n + ... + x^t + ... + 1 reads state bit `n − t`, so that
            // tap `n` (always present) is the bit shifted out this cycle.
            tap_mask |= 1 << (width - tap);
        }
        let seed = seed & Self::width_mask(width);
        if seed == 0 {
            return Err(SeqError::ZeroSeed);
        }
        Ok(Lfsr {
            width,
            tap_mask,
            seed,
            state: seed,
            maximal: false,
        })
    }

    fn width_mask(width: u32) -> u32 {
        if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        }
    }

    /// The register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// The seed the register resets to.
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// Measures the true cycle length by stepping until the state recurs.
    ///
    /// For a maximal LFSR this equals `2^width - 1`. The generator is reset
    /// afterwards, so calling this does not perturb the output stream.
    ///
    /// Runtime is proportional to the cycle length, so avoid calling this on
    /// wide registers (width ≳ 24) in hot paths.
    pub fn period_exhaustive(&self) -> u64 {
        let mut probe = self.clone();
        probe.state = probe.seed;
        let mut steps: u64 = 0;
        loop {
            probe.next_bit();
            steps += 1;
            if probe.state == probe.seed {
                return steps;
            }
        }
    }
}

impl SequenceGenerator for Lfsr {
    fn next_bit(&mut self) -> bool {
        let out = self.state & 1 != 0;
        let feedback = (self.state & self.tap_mask).count_ones() & 1;
        self.state = (self.state >> 1) | (feedback << (self.width - 1));
        out
    }

    fn reset(&mut self) {
        self.state = self.seed;
    }

    fn period_hint(&self) -> Option<u64> {
        if self.maximal {
            Some((1u64 << self.width) - 1)
        } else {
            None
        }
    }
}

/// A Galois (one-to-many) linear feedback shift register.
///
/// Produces maximal sequences with the same statistical properties as the
/// Fibonacci form but with a single XOR level in the feedback path, which is
/// the form usually synthesised in silicon. The output stream differs from
/// the Fibonacci stream bit-for-bit (it is a phase-shifted decimation), but
/// shares period, balance and autocorrelation structure.
///
/// ```
/// # fn main() -> Result<(), clockmark_seq::SeqError> {
/// use clockmark_seq::{GaloisLfsr, SequenceGenerator};
///
/// let mut g = GaloisLfsr::maximal(8)?;
/// assert_eq!(g.period_hint(), Some(255));
/// let ones = (0..255).filter(|_| g.next_bit()).count();
/// assert_eq!(ones, 128);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GaloisLfsr {
    width: u32,
    /// XOR mask applied when the output bit is 1.
    poly_mask: u32,
    seed: u32,
    state: u32,
    maximal: bool,
}

impl GaloisLfsr {
    /// Creates a maximal-length Galois LFSR of the given width, seeded with 1.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::InvalidWidth`] for widths outside 2..=32.
    pub fn maximal(width: u32) -> Result<Self, SeqError> {
        Self::maximal_with_seed(width, 1)
    }

    /// Creates a maximal-length Galois LFSR with an explicit non-zero seed.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::InvalidWidth`] for widths outside 2..=32 and
    /// [`SeqError::ZeroSeed`] when `seed` (masked to `width` bits) is zero.
    pub fn maximal_with_seed(width: u32, seed: u32) -> Result<Self, SeqError> {
        let taps = maximal_taps(width)?;
        // The Galois mask for polynomial x^n + x^a + ... + 1 sets bit (a-1)
        // for every non-leading tap a, mirroring the Fibonacci tap set.
        let mut poly_mask = 0u32;
        for &tap in taps {
            if tap != width {
                poly_mask |= 1 << (tap - 1);
            }
        }
        // Reciprocal-polynomial form: shifting right, reinject at the top.
        poly_mask |= 1 << (width - 1);
        let seed = seed & Lfsr::width_mask(width);
        if seed == 0 {
            return Err(SeqError::ZeroSeed);
        }
        Ok(GaloisLfsr {
            width,
            poly_mask,
            seed,
            state: seed,
            maximal: true,
        })
    }

    /// The register width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Measures the true cycle length by stepping until the state recurs.
    ///
    /// Runtime is proportional to the cycle length.
    pub fn period_exhaustive(&self) -> u64 {
        let mut probe = self.clone();
        probe.state = probe.seed;
        let mut steps: u64 = 0;
        loop {
            probe.next_bit();
            steps += 1;
            if probe.state == probe.seed {
                return steps;
            }
        }
    }
}

impl SequenceGenerator for GaloisLfsr {
    fn next_bit(&mut self) -> bool {
        let out = self.state & 1 != 0;
        self.state >>= 1;
        if out {
            self.state ^= self.poly_mask;
        }
        out
    }

    fn reset(&mut self) {
        self.state = self.seed;
    }

    fn period_hint(&self) -> Option<u64> {
        if self.maximal {
            Some((1u64 << self.width) - 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MIN_LFSR_WIDTH;
    use proptest::prelude::*;

    #[test]
    fn fibonacci_periods_are_maximal_for_small_widths() {
        for width in MIN_LFSR_WIDTH..=16 {
            let lfsr = Lfsr::maximal(width).expect("valid width");
            assert_eq!(
                lfsr.period_exhaustive(),
                (1u64 << width) - 1,
                "width {width} is not maximal"
            );
        }
    }

    #[test]
    fn galois_periods_are_maximal_for_small_widths() {
        for width in MIN_LFSR_WIDTH..=16 {
            let lfsr = GaloisLfsr::maximal(width).expect("valid width");
            assert_eq!(
                lfsr.period_exhaustive(),
                (1u64 << width) - 1,
                "width {width} is not maximal"
            );
        }
    }

    #[test]
    fn paper_configuration_has_period_4095() {
        let lfsr = Lfsr::maximal(12).expect("valid width");
        assert_eq!(lfsr.period_exhaustive(), 4095);
        assert_eq!(lfsr.period_hint(), Some(4095));
    }

    #[test]
    fn sequence_repeats_with_the_advertised_period() {
        let mut lfsr = Lfsr::maximal(10).expect("valid width");
        let period = lfsr.period_hint().expect("maximal") as usize;
        let first = lfsr.collect_bits(period);
        let second = lfsr.collect_bits(period);
        assert_eq!(first, second);
    }

    #[test]
    fn zero_seed_is_rejected() {
        assert_eq!(
            Lfsr::maximal_with_seed(8, 0).unwrap_err(),
            SeqError::ZeroSeed
        );
        assert_eq!(
            GaloisLfsr::maximal_with_seed(8, 0).unwrap_err(),
            SeqError::ZeroSeed
        );
        // A seed whose in-width bits are all zero is also rejected.
        assert_eq!(
            Lfsr::maximal_with_seed(8, 0x100).unwrap_err(),
            SeqError::ZeroSeed
        );
    }

    #[test]
    fn custom_taps_validation() {
        assert!(matches!(
            Lfsr::with_taps(8, &[], 1).unwrap_err(),
            SeqError::EmptyTaps
        ));
        assert!(matches!(
            Lfsr::with_taps(8, &[9], 1).unwrap_err(),
            SeqError::TapOutOfRange { tap: 9, width: 8 }
        ));
        assert!(matches!(
            Lfsr::with_taps(8, &[0], 1).unwrap_err(),
            SeqError::TapOutOfRange { tap: 0, width: 8 }
        ));
        // Custom taps have no closed-form period.
        let custom = Lfsr::with_taps(8, &[8, 1], 1).expect("valid taps");
        assert_eq!(custom.period_hint(), None);
    }

    #[test]
    fn width_32_does_not_overflow() {
        let mut lfsr = Lfsr::maximal(32).expect("valid width");
        assert_eq!(lfsr.period_hint(), Some((1u64 << 32) - 1));
        // Just exercise stepping; the state must remain within 32 bits and
        // never reach zero.
        for _ in 0..10_000 {
            lfsr.next_bit();
            assert_ne!(lfsr.state(), 0);
        }
    }

    #[test]
    fn different_seeds_are_rotations_of_each_other() {
        // For a maximal LFSR all non-zero states lie on one cycle, so the
        // stream from seed B appears somewhere in the stream from seed A.
        let width = 8;
        let period = (1usize << width) - 1;
        let mut a = Lfsr::maximal_with_seed(width as u32, 1).expect("valid");
        let stream_a = a.collect_bits(2 * period);
        let mut b = Lfsr::maximal_with_seed(width as u32, 0x5A).expect("valid");
        let stream_b = b.collect_bits(period);
        let found = (0..period).any(|off| stream_a[off..off + period] == stream_b[..]);
        assert!(found, "seeded stream is not a rotation of the base stream");
    }

    proptest! {
        #[test]
        fn state_never_zero_for_maximal_lfsrs(width in 2u32..=16, seed in 1u32..=u16::MAX as u32, steps in 0usize..2000) {
            prop_assume!(seed & ((1u32 << width) - 1) != 0);
            let mut lfsr = Lfsr::maximal_with_seed(width, seed).expect("valid");
            for _ in 0..steps {
                lfsr.next_bit();
                prop_assert_ne!(lfsr.state(), 0);
            }
        }

        #[test]
        fn reset_replays_identically(width in 2u32..=16, seed in 1u32..1000u32, len in 1usize..500) {
            prop_assume!(seed & ((1u32 << width) - 1) != 0);
            let mut lfsr = Lfsr::maximal_with_seed(width, seed).expect("valid");
            let first = lfsr.collect_bits(len);
            lfsr.reset();
            let second = lfsr.collect_bits(len);
            prop_assert_eq!(first, second);
        }

        #[test]
        fn ones_count_per_period_is_exactly_half_rounded_up(width in 2u32..=14) {
            let mut lfsr = Lfsr::maximal(width).expect("valid");
            let period = lfsr.period_hint().expect("maximal") as usize;
            let ones = lfsr.collect_bits(period).iter().filter(|&&b| b).count();
            prop_assert_eq!(ones, 1usize << (width - 1));
        }
    }
}
