use crate::{Lfsr, SeqError, SequenceGenerator};

/// A Gold-code sequence generator: the XOR of a preferred pair of
/// maximal-length LFSRs.
///
/// Gold codes are useful when several watermarked IP blocks coexist on one
/// die: the bounded cross-correlation between family members lets each
/// vendor's detector resolve its own watermark against the others. The paper
/// uses a single m-sequence, so Gold codes are provided as an extension for
/// the multi-watermark ablation experiments.
///
/// ```
/// # fn main() -> Result<(), clockmark_seq::SeqError> {
/// use clockmark_seq::{GoldCode, SequenceGenerator};
///
/// let mut gold = GoldCode::preferred(7, 1, 1)?;
/// assert_eq!(gold.period_hint(), Some(127));
/// let bits = gold.collect_bits(127);
/// assert_eq!(bits.len(), 127);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GoldCode {
    a: Lfsr,
    b: Lfsr,
}

/// Tabulated preferred pairs `(taps_a, taps_b)` for Gold-code construction.
///
/// Preferred pairs only exist for widths not divisible by 4; this table
/// covers the widths commonly used in spread-spectrum practice.
const PREFERRED_PAIRS: &[(u32, &[u32], &[u32])] = &[
    (5, &[5, 3], &[5, 4, 3, 2]),
    (6, &[6, 5], &[6, 5, 2, 1]),
    (7, &[7, 3], &[7, 3, 2, 1]),
    (9, &[9, 4], &[9, 6, 4, 3]),
    (10, &[10, 3], &[10, 8, 3, 2]),
    (11, &[11, 2], &[11, 8, 5, 2]),
];

impl GoldCode {
    /// Creates a Gold code from a tabulated preferred pair of the given
    /// width, with per-component seeds.
    ///
    /// Distinct `(seed_a, seed_b)` phase combinations select distinct family
    /// members; a family of width `n` has `2^n + 1` members.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::NoPreferredPair`] when no pair is tabulated for
    /// `width`, or [`SeqError::ZeroSeed`] when either seed is zero in-width.
    pub fn preferred(width: u32, seed_a: u32, seed_b: u32) -> Result<Self, SeqError> {
        let (_, taps_a, taps_b) = PREFERRED_PAIRS
            .iter()
            .find(|(w, _, _)| *w == width)
            .ok_or(SeqError::NoPreferredPair { width })?;
        let a = Lfsr::with_taps(width, taps_a, seed_a)?;
        let b = Lfsr::with_taps(width, taps_b, seed_b)?;
        Ok(GoldCode { a, b })
    }

    /// Creates a Gold code from two explicitly constructed LFSRs.
    ///
    /// The caller is responsible for choosing a preferred pair; arbitrary
    /// pairs still produce a valid periodic sequence but without the Gold
    /// cross-correlation bound.
    pub fn from_components(a: Lfsr, b: Lfsr) -> Self {
        GoldCode { a, b }
    }

    /// The widths for which [`GoldCode::preferred`] has a tabulated pair.
    pub fn tabulated_widths() -> Vec<u32> {
        PREFERRED_PAIRS.iter().map(|(w, _, _)| *w).collect()
    }

    /// The tabulated preferred-pair tap positions for a width, for callers
    /// building the pair structurally (e.g. in a netlist).
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::NoPreferredPair`] when no pair is tabulated.
    pub fn preferred_taps(width: u32) -> Result<(&'static [u32], &'static [u32]), SeqError> {
        PREFERRED_PAIRS
            .iter()
            .find(|(w, _, _)| *w == width)
            .map(|(_, a, b)| (*a, *b))
            .ok_or(SeqError::NoPreferredPair { width })
    }

    /// Borrows the first component LFSR.
    pub fn component_a(&self) -> &Lfsr {
        &self.a
    }

    /// Borrows the second component LFSR.
    pub fn component_b(&self) -> &Lfsr {
        &self.b
    }
}

impl SequenceGenerator for GoldCode {
    fn next_bit(&mut self) -> bool {
        self.a.next_bit() ^ self.b.next_bit()
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
    }

    fn period_hint(&self) -> Option<u64> {
        // Components share a width, so the XOR has the component period.
        Some((1u64 << self.a.width()) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitSequence;

    #[test]
    fn all_tabulated_pairs_are_maximal() {
        for &width in &GoldCode::tabulated_widths() {
            let gold = GoldCode::preferred(width, 1, 1).expect("tabulated");
            let expected = (1u64 << width) - 1;
            assert_eq!(
                gold.component_a().period_exhaustive(),
                expected,
                "component A of width {width} is not maximal"
            );
            assert_eq!(
                gold.component_b().period_exhaustive(),
                expected,
                "component B of width {width} is not maximal"
            );
        }
    }

    #[test]
    fn untabulated_width_is_rejected() {
        assert!(matches!(
            GoldCode::preferred(8, 1, 1).unwrap_err(),
            SeqError::NoPreferredPair { width: 8 }
        ));
    }

    #[test]
    fn gold_sequence_has_component_period() {
        let mut gold = GoldCode::preferred(7, 1, 3).expect("tabulated");
        let p = gold.period_hint().expect("known") as usize;
        let first = gold.collect_bits(p);
        let second = gold.collect_bits(p);
        assert_eq!(first, second);
    }

    #[test]
    fn gold_cross_correlation_is_three_valued() {
        // For a preferred pair of width n (odd), the periodic
        // cross-correlation of any two family members takes values in
        // {-1, -t(n), t(n)-2} with t(n) = 2^((n+1)/2) + 1.
        let width = 7u32;
        let p = (1usize << width) - 1;
        let t = (1i64 << width.div_ceil(2)) + 1;
        let allowed = [-1i64, -t, t - 2];

        let mut member_1 = GoldCode::preferred(width, 1, 1).expect("tabulated");
        let mut member_2 = GoldCode::preferred(width, 1, 9).expect("tabulated");
        let s1 = BitSequence::from_generator(&mut member_1, p);
        let s2 = BitSequence::from_generator(&mut member_2, p);

        for shift in 0..p {
            let mut acc: i64 = 0;
            for i in 0..p {
                let x = if s1.bits()[i] { 1i64 } else { -1 };
                let y = if s2.bits()[(i + shift) % p] { 1i64 } else { -1 };
                acc += x * y;
            }
            assert!(
                allowed.contains(&acc),
                "cross-correlation {acc} at shift {shift} outside Gold bound {allowed:?}"
            );
        }
    }

    #[test]
    fn reset_restores_both_components() {
        let mut gold = GoldCode::preferred(9, 5, 17).expect("tabulated");
        let a = gold.collect_bits(100);
        gold.reset();
        let b = gold.collect_bits(100);
        assert_eq!(a, b);
    }
}
