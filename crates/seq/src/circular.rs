use crate::{SeqError, SequenceGenerator};

/// A circular (rotating) shift register sequence generator.
///
/// The paper's watermark generation circuit can be configured as a "simple
/// 32-bit circular shift register" instead of an LFSR: a fixed pattern is
/// loaded once and rotated by one position every clock cycle, so the output
/// repeats with a period equal to the pattern length. Circular patterns give
/// full control over the duty cycle of the watermark (and hence its average
/// power draw) at the cost of much weaker autocorrelation properties than a
/// maximal-length sequence.
///
/// ```
/// # fn main() -> Result<(), clockmark_seq::SeqError> {
/// use clockmark_seq::{CircularShiftRegister, SequenceGenerator};
///
/// let mut csr = CircularShiftRegister::new(&[true, true, false, false])?;
/// assert_eq!(csr.period_hint(), Some(4));
/// let bits = csr.collect_bits(8);
/// assert_eq!(bits, [true, true, false, false, true, true, false, false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CircularShiftRegister {
    pattern: Vec<bool>,
    position: usize,
}

impl CircularShiftRegister {
    /// Creates a circular shift register holding `pattern`.
    ///
    /// The first output bit is `pattern[0]`.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::EmptyPattern`] when `pattern` is empty.
    pub fn new(pattern: &[bool]) -> Result<Self, SeqError> {
        if pattern.is_empty() {
            return Err(SeqError::EmptyPattern);
        }
        Ok(CircularShiftRegister {
            pattern: pattern.to_vec(),
            position: 0,
        })
    }

    /// Creates a register from the low `width` bits of `word`.
    ///
    /// Bit 0 of `word` is output first. This mirrors loading a hardware
    /// register from a configuration word, as the WGC in the test chips does.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::InvalidWidth`] when `width` is zero or exceeds 64.
    ///
    /// ```
    /// # fn main() -> Result<(), clockmark_seq::SeqError> {
    /// use clockmark_seq::{CircularShiftRegister, SequenceGenerator};
    ///
    /// // The classic 1010... load pattern, 8 bits wide.
    /// let mut csr = CircularShiftRegister::from_word(0b0101_0101, 8)?;
    /// assert!(csr.next_bit());
    /// assert!(!csr.next_bit());
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_word(word: u64, width: u32) -> Result<Self, SeqError> {
        if width == 0 || width > 64 {
            return Err(SeqError::InvalidWidth { width });
        }
        let pattern: Vec<bool> = (0..width).map(|i| (word >> i) & 1 != 0).collect();
        Self::new(&pattern)
    }

    /// The stored pattern, in output order starting from the reset position.
    pub fn pattern(&self) -> &[bool] {
        &self.pattern
    }

    /// Number of bits in one rotation.
    pub fn len(&self) -> usize {
        self.pattern.len()
    }

    /// Whether the register is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.pattern.is_empty()
    }
}

impl SequenceGenerator for CircularShiftRegister {
    fn next_bit(&mut self) -> bool {
        let bit = self.pattern[self.position];
        self.position = (self.position + 1) % self.pattern.len();
        bit
    }

    fn reset(&mut self) {
        self.position = 0;
    }

    fn period_hint(&self) -> Option<u64> {
        Some(self.pattern.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_pattern_is_rejected() {
        assert_eq!(
            CircularShiftRegister::new(&[]).unwrap_err(),
            SeqError::EmptyPattern
        );
    }

    #[test]
    fn from_word_width_bounds() {
        assert!(CircularShiftRegister::from_word(1, 0).is_err());
        assert!(CircularShiftRegister::from_word(1, 65).is_err());
        assert!(CircularShiftRegister::from_word(1, 64).is_ok());
    }

    #[test]
    fn single_bit_pattern_is_constant() {
        let mut csr = CircularShiftRegister::new(&[true]).expect("non-empty");
        assert!(csr.collect_bits(16).iter().all(|&b| b));
    }

    #[test]
    fn rotation_wraps_at_pattern_length() {
        let pattern = [true, false, false, true, true];
        let mut csr = CircularShiftRegister::new(&pattern).expect("non-empty");
        let out = csr.collect_bits(15);
        for (i, &bit) in out.iter().enumerate() {
            assert_eq!(bit, pattern[i % pattern.len()]);
        }
    }

    proptest! {
        #[test]
        fn output_is_periodic_with_pattern_length(pattern in proptest::collection::vec(any::<bool>(), 1..64)) {
            let mut csr = CircularShiftRegister::new(&pattern).expect("non-empty");
            let out = csr.collect_bits(pattern.len() * 3);
            for (i, &bit) in out.iter().enumerate() {
                prop_assert_eq!(bit, pattern[i % pattern.len()]);
            }
        }

        #[test]
        fn reset_replays(pattern in proptest::collection::vec(any::<bool>(), 1..64), len in 1usize..200) {
            let mut csr = CircularShiftRegister::new(&pattern).expect("non-empty");
            let a = csr.collect_bits(len);
            csr.reset();
            let b = csr.collect_bits(len);
            prop_assert_eq!(a, b);
        }
    }
}
