use crate::SeqError;

/// Smallest supported LFSR width.
pub const MIN_LFSR_WIDTH: u32 = 2;

/// Largest supported LFSR width.
///
/// The watermark generation circuit in the paper contains 32-bit sequence
/// generators, so 32 bits bounds everything this library needs.
pub const MAX_LFSR_WIDTH: u32 = 32;

/// Maximal-length feedback tap positions for widths 2..=32.
///
/// Tap positions are 1-indexed bit numbers of the feedback polynomial
/// `x^n + x^t1 + ... + 1`, following the widely used XAPP052 table. Each
/// entry yields a sequence of period `2^n - 1`.
const MAXIMAL_TAPS: [&[u32]; 31] = [
    &[2, 1],           // 2
    &[3, 2],           // 3
    &[4, 3],           // 4
    &[5, 3],           // 5
    &[6, 5],           // 6
    &[7, 6],           // 7
    &[8, 6, 5, 4],     // 8
    &[9, 5],           // 9
    &[10, 7],          // 10
    &[11, 9],          // 11
    &[12, 6, 4, 1],    // 12
    &[13, 4, 3, 1],    // 13
    &[14, 5, 3, 1],    // 14
    &[15, 14],         // 15
    &[16, 15, 13, 4],  // 16
    &[17, 14],         // 17
    &[18, 11],         // 18
    &[19, 6, 2, 1],    // 19
    &[20, 17],         // 20
    &[21, 19],         // 21
    &[22, 21],         // 22
    &[23, 18],         // 23
    &[24, 23, 22, 17], // 24
    &[25, 22],         // 25
    &[26, 6, 2, 1],    // 26
    &[27, 5, 2, 1],    // 27
    &[28, 25],         // 28
    &[29, 27],         // 29
    &[30, 6, 4, 1],    // 30
    &[31, 28],         // 31
    &[32, 22, 2, 1],   // 32
];

/// Returns the tabulated maximal-length tap positions for a register width.
///
/// Tap positions are 1-indexed; position `n` (the register width itself) is
/// always present. Feeding these taps to [`Lfsr::with_taps`] produces a
/// maximum-length sequence of period `2^width - 1`.
///
/// # Errors
///
/// Returns [`SeqError::InvalidWidth`] when `width` is outside
/// [`MIN_LFSR_WIDTH`]..=[`MAX_LFSR_WIDTH`].
///
/// ```
/// # fn main() -> Result<(), clockmark_seq::SeqError> {
/// let taps = clockmark_seq::maximal_taps(12)?;
/// assert_eq!(taps, &[12, 6, 4, 1]);
/// # Ok(())
/// # }
/// ```
///
/// [`Lfsr::with_taps`]: crate::Lfsr::with_taps
pub fn maximal_taps(width: u32) -> Result<&'static [u32], SeqError> {
    if !(MIN_LFSR_WIDTH..=MAX_LFSR_WIDTH).contains(&width) {
        return Err(SeqError::InvalidWidth { width });
    }
    Ok(MAXIMAL_TAPS[(width - MIN_LFSR_WIDTH) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_leads_with_its_own_width() {
        for width in MIN_LFSR_WIDTH..=MAX_LFSR_WIDTH {
            let taps = maximal_taps(width).expect("tabulated width");
            assert_eq!(taps[0], width, "first tap must equal the width");
            assert!(taps.iter().all(|&t| t >= 1 && t <= width));
            // Taps are strictly decreasing (canonical ordering).
            assert!(taps.windows(2).all(|w| w[0] > w[1]));
        }
    }

    #[test]
    fn even_tap_counts() {
        // A maximal polynomial over GF(2) has an even number of feedback
        // taps when the implicit +1 term is excluded, i.e. the tabulated
        // list (which excludes the +1) has an even length.
        for width in MIN_LFSR_WIDTH..=MAX_LFSR_WIDTH {
            let taps = maximal_taps(width).expect("tabulated width");
            assert_eq!(
                taps.len() % 2,
                0,
                "width {width} should have an even tap count"
            );
        }
    }

    #[test]
    fn out_of_range_widths_are_rejected() {
        assert!(maximal_taps(0).is_err());
        assert!(maximal_taps(1).is_err());
        assert!(maximal_taps(33).is_err());
        assert!(maximal_taps(u32::MAX).is_err());
    }
}
