//! Pseudo-random binary sequence generators for power watermarking.
//!
//! The watermark generation circuit (WGC) described in Kufel et al.,
//! *Clock-Modulation Based Watermark for Protection of Embedded Processors*
//! (DATE 2014), contains sequence generators that can be configured as either
//! linear feedback shift registers (LFSRs) or simple circular shift
//! registers. This crate provides bit-exact software models of those
//! generators, plus Gold codes (for multi-watermark coexistence experiments)
//! and statistical analysis of the produced sequences.
//!
//! # Quick example
//!
//! Generate the 12-bit maximum-length sequence used in the paper's silicon
//! experiments and check its period:
//!
//! ```
//! # fn main() -> Result<(), clockmark_seq::SeqError> {
//! use clockmark_seq::{Lfsr, SequenceGenerator};
//!
//! let mut lfsr = Lfsr::maximal(12)?;
//! assert_eq!(lfsr.period_exhaustive(), 4095); // 2^12 - 1
//!
//! // The generator streams the WMARK control bit, one per clock cycle.
//! let first: Vec<bool> = (0..8).map(|_| lfsr.next_bit()).collect();
//! assert_eq!(first.len(), 8);
//! # Ok(())
//! # }
//! ```
//!
//! # Modules
//!
//! - [`Lfsr`] / [`GaloisLfsr`]: maximal-length feedback shift registers for
//!   widths 2..=32, with the standard tap table built in.
//! - [`CircularShiftRegister`]: the paper's alternative WGC configuration.
//! - [`GoldCode`]: preferred-pair Gold sequences.
//! - [`BitSequence`]: collected sequences with balance, run-length and
//!   periodic autocorrelation analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod circular;
mod complexity;
mod error;
mod generator;
mod gold;
mod lfsr;
mod taps;

pub use analysis::{BitSequence, RunStats};
pub use circular::CircularShiftRegister;
pub use complexity::{berlekamp_massey, linear_complexity, LfsrSynthesis};
pub use error::SeqError;
pub use generator::SequenceGenerator;
pub use gold::GoldCode;
pub use lfsr::{GaloisLfsr, Lfsr};
pub use taps::{maximal_taps, MAX_LFSR_WIDTH, MIN_LFSR_WIDTH};
