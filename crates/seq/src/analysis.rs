use crate::SequenceGenerator;

/// A collected binary sequence with statistical analysis helpers.
///
/// The detectability of a power watermark depends on statistical properties
/// of the `WMARK` sequence: its balance sets the average watermark power,
/// and its periodic autocorrelation determines how cleanly a single
/// correlation peak resolves in the spread spectrum (Fig. 5 of the paper).
/// `BitSequence` makes those properties measurable.
///
/// ```
/// # fn main() -> Result<(), clockmark_seq::SeqError> {
/// use clockmark_seq::{BitSequence, Lfsr};
///
/// let mut lfsr = Lfsr::maximal(8)?;
/// let seq = BitSequence::from_generator(&mut lfsr, 255);
///
/// // m-sequence: one extra 1 per period, autocorrelation -1 off-peak.
/// assert_eq!(seq.balance(), 1);
/// assert_eq!(seq.periodic_autocorrelation(10), -1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSequence {
    bits: Vec<bool>,
}

/// Run-length statistics of a binary sequence.
///
/// For a maximal-length sequence of width `n`, half the runs have length 1,
/// a quarter have length 2, and so on, with a single run of `n` ones and a
/// single run of `n-1` zeros per period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RunStats {
    /// Total number of runs (maximal blocks of equal bits).
    pub total_runs: usize,
    /// Length of the longest run of ones.
    pub longest_ones_run: usize,
    /// Length of the longest run of zeros.
    pub longest_zeros_run: usize,
}

impl BitSequence {
    /// Collects `len` bits from a generator.
    pub fn from_generator<G: SequenceGenerator + ?Sized>(generator: &mut G, len: usize) -> Self {
        BitSequence {
            bits: (0..len).map(|_| generator.next_bit()).collect(),
        }
    }

    /// Wraps an existing bit vector.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        BitSequence { bits }
    }

    /// The underlying bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Number of bits in the sequence.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of one bits.
    pub fn ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Number of zero bits.
    pub fn zeros(&self) -> usize {
        self.len() - self.ones()
    }

    /// Ones minus zeros. Zero means a perfectly balanced sequence; a
    /// maximal-length sequence over one full period has balance `+1`.
    pub fn balance(&self) -> i64 {
        self.ones() as i64 - self.zeros() as i64
    }

    /// Fraction of cycles in which the watermark is active (duty cycle).
    ///
    /// This directly scales the average power overhead of the embedded
    /// watermark: a duty cycle of 0.5 means the gated block burns half of
    /// its always-on clock power.
    pub fn duty_cycle(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.ones() as f64 / self.len() as f64
    }

    /// Periodic (circular) autocorrelation at the given shift, computed on
    /// the ±1 mapping of the bits.
    ///
    /// For a maximal-length sequence of period `P`, the result is `P` at
    /// shift 0 (mod `P`) and exactly `-1` everywhere else — the property
    /// that gives the CPA spread spectrum its single clean peak.
    pub fn periodic_autocorrelation(&self, shift: usize) -> i64 {
        let n = self.len();
        if n == 0 {
            return 0;
        }
        let shift = shift % n;
        let mut acc: i64 = 0;
        for i in 0..n {
            let x: i64 = if self.bits[i] { 1 } else { -1 };
            let y: i64 = if self.bits[(i + shift) % n] { 1 } else { -1 };
            acc += x * y;
        }
        acc
    }

    /// The smallest period of the sequence, i.e. the smallest `p` such that
    /// `bits[i] == bits[i % p]` for all `i`. Returns `len()` for aperiodic
    /// content and 0 for an empty sequence.
    pub fn smallest_period(&self) -> usize {
        let n = self.len();
        'candidate: for p in 1..n {
            for i in p..n {
                if self.bits[i] != self.bits[i - p] {
                    continue 'candidate;
                }
            }
            return p;
        }
        n
    }

    /// Run-length statistics.
    pub fn run_stats(&self) -> RunStats {
        let mut stats = RunStats::default();
        let mut iter = self.bits.iter();
        let Some(&first) = iter.next() else {
            return stats;
        };
        let mut current_value = first;
        let mut current_len = 1usize;
        let record = |value: bool, len: usize, stats: &mut RunStats| {
            stats.total_runs += 1;
            if value {
                stats.longest_ones_run = stats.longest_ones_run.max(len);
            } else {
                stats.longest_zeros_run = stats.longest_zeros_run.max(len);
            }
        };
        for &bit in iter {
            if bit == current_value {
                current_len += 1;
            } else {
                record(current_value, current_len, &mut stats);
                current_value = bit;
                current_len = 1;
            }
        }
        record(current_value, current_len, &mut stats);
        stats
    }

    /// Maps the sequence to an `f64` vector with ones → `high` and
    /// zeros → `low`, the form consumed by the CPA model-vector builder.
    pub fn to_levels(&self, low: f64, high: f64) -> Vec<f64> {
        self.bits
            .iter()
            .map(|&b| if b { high } else { low })
            .collect()
    }
}

impl FromIterator<bool> for BitSequence {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitSequence {
            bits: iter.into_iter().collect(),
        }
    }
}

impl Extend<bool> for BitSequence {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        self.bits.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircularShiftRegister, Lfsr};
    use proptest::prelude::*;

    #[test]
    fn m_sequence_balance_is_plus_one() {
        for width in 2u32..=12 {
            let mut lfsr = Lfsr::maximal(width).expect("valid");
            let period = (1usize << width) - 1;
            let seq = BitSequence::from_generator(&mut lfsr, period);
            assert_eq!(seq.balance(), 1, "width {width}");
        }
    }

    #[test]
    fn m_sequence_autocorrelation_is_minus_one_off_peak() {
        let mut lfsr = Lfsr::maximal(9).expect("valid");
        let period = 511;
        let seq = BitSequence::from_generator(&mut lfsr, period);
        assert_eq!(seq.periodic_autocorrelation(0), period as i64);
        for shift in 1..period {
            assert_eq!(seq.periodic_autocorrelation(shift), -1, "shift {shift}");
        }
    }

    #[test]
    fn m_sequence_run_structure() {
        // Width n: one run of n ones, one run of n-1 zeros, and 2^(n-1)
        // runs in total per period.
        let width = 8u32;
        let mut lfsr = Lfsr::maximal(width).expect("valid");
        let period = (1usize << width) - 1;
        let seq = BitSequence::from_generator(&mut lfsr, period);
        let stats = seq.run_stats();
        assert_eq!(stats.longest_ones_run, width as usize);
        assert_eq!(stats.longest_zeros_run, width as usize - 1);
        // Periodic run count: the linear scan may split one run across the
        // wrap, overcounting by at most one.
        let expected = 1usize << (width - 1);
        assert!(
            stats.total_runs == expected || stats.total_runs == expected + 1,
            "got {} runs, expected about {expected}",
            stats.total_runs
        );
    }

    #[test]
    fn smallest_period_detects_tiling() {
        let mut csr = CircularShiftRegister::new(&[true, false, false]).expect("ok");
        let seq = BitSequence::from_generator(&mut csr, 12);
        assert_eq!(seq.smallest_period(), 3);
    }

    #[test]
    fn smallest_period_of_aperiodic_prefix_is_len() {
        let seq = BitSequence::from_bits(vec![true, true, false, true]);
        assert_eq!(seq.smallest_period(), 3); // t t f t tiles with p=3
        let seq = BitSequence::from_bits(vec![true, false, false, true]);
        assert_eq!(seq.smallest_period(), 3);
        let seq = BitSequence::from_bits(vec![true, false, true, true, false, false]);
        assert_eq!(seq.smallest_period(), 6);
    }

    #[test]
    fn empty_sequence_edge_cases() {
        let seq = BitSequence::from_bits(vec![]);
        assert!(seq.is_empty());
        assert_eq!(seq.smallest_period(), 0);
        assert_eq!(seq.duty_cycle(), 0.0);
        assert_eq!(seq.periodic_autocorrelation(5), 0);
        assert_eq!(seq.run_stats(), RunStats::default());
    }

    #[test]
    fn to_levels_maps_bits() {
        let seq = BitSequence::from_bits(vec![true, false, true]);
        assert_eq!(seq.to_levels(0.0, 2.5), vec![2.5, 0.0, 2.5]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut seq: BitSequence = [true, false].into_iter().collect();
        seq.extend([true]);
        assert_eq!(seq.bits(), &[true, false, true]);
    }

    proptest! {
        #[test]
        fn ones_plus_zeros_equals_len(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let seq = BitSequence::from_bits(bits);
            prop_assert_eq!(seq.ones() + seq.zeros(), seq.len());
        }

        #[test]
        fn autocorrelation_at_zero_is_len(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
            let seq = BitSequence::from_bits(bits);
            prop_assert_eq!(seq.periodic_autocorrelation(0), seq.len() as i64);
        }

        #[test]
        fn autocorrelation_is_symmetric(bits in proptest::collection::vec(any::<bool>(), 1..100), shift in 0usize..100) {
            let seq = BitSequence::from_bits(bits);
            let n = seq.len();
            let forward = seq.periodic_autocorrelation(shift % n);
            let backward = seq.periodic_autocorrelation((n - shift % n) % n);
            prop_assert_eq!(forward, backward);
        }

        #[test]
        fn sequence_tiles_with_its_smallest_period(bits in proptest::collection::vec(any::<bool>(), 1..100)) {
            let seq = BitSequence::from_bits(bits.clone());
            let p = seq.smallest_period();
            prop_assert!(p >= 1 && p <= bits.len());
            for i in p..bits.len() {
                prop_assert_eq!(bits[i], bits[i - p]);
            }
        }
    }
}
