//! Linear complexity via the Berlekamp–Massey algorithm.
//!
//! A security angle the paper leaves implicit: if an attacker can observe
//! the `WMARK` bit stream (say, from a high-resolution power trace of an
//! otherwise idle chip), Berlekamp–Massey reconstructs the shortest LFSR
//! generating it from just `2·L` bits — an `L`-bit maximal LFSR is
//! *forgeable* after 24 observed bits for the paper's 12-bit WGC. The
//! linear complexity of a candidate sequence therefore measures how
//! expensive cloning (as opposed to removing) the watermark would be;
//! Gold codes and longer LFSRs raise it.

use crate::SequenceGenerator;

/// The result of a Berlekamp–Massey synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfsrSynthesis {
    /// The linear complexity: length of the shortest LFSR generating the
    /// observed bits.
    pub complexity: usize,
    /// The connection polynomial coefficients `c[1..=complexity]` (the
    /// recurrence `s[n] = Σ c[i]·s[n−i]` over GF(2)), index 0 holding the
    /// constant 1.
    pub connection: Vec<bool>,
}

impl LfsrSynthesis {
    /// Continues the recurrence to predict the bits following the observed
    /// prefix — a successful prediction is the forging attack succeeding.
    ///
    /// `history` must contain at least `complexity` bits (the observed
    /// suffix); returns `count` predicted bits.
    ///
    /// # Panics
    ///
    /// Panics when `history` is shorter than the synthesised complexity.
    pub fn predict(&self, history: &[bool], count: usize) -> Vec<bool> {
        assert!(
            history.len() >= self.complexity,
            "need {} bits of history, got {}",
            self.complexity,
            history.len()
        );
        let mut window: Vec<bool> = history[history.len() - self.complexity..].to_vec();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let mut next = false;
            for i in 1..=self.complexity {
                if self.connection[i] {
                    next ^= window[window.len() - i];
                }
            }
            out.push(next);
            window.push(next);
            window.remove(0);
        }
        out
    }
}

/// Computes the linear complexity of a bit sequence (Berlekamp–Massey
/// over GF(2)).
///
/// For one period of an `L`-bit maximal LFSR the complexity is exactly
/// `L`; a Gold code of the same width has complexity `2L`; a random
/// sequence of length `n` hovers around `n/2`.
///
/// ```
/// # fn main() -> Result<(), clockmark_seq::SeqError> {
/// use clockmark_seq::{berlekamp_massey, Lfsr, SequenceGenerator};
///
/// let mut lfsr = Lfsr::maximal(12)?;
/// let bits: Vec<bool> = (0..100).map(|_| lfsr.next_bit()).collect();
/// let synthesis = berlekamp_massey(&bits);
/// // The paper's 12-bit WGC is recoverable from a short observation.
/// assert_eq!(synthesis.complexity, 12);
/// # Ok(())
/// # }
/// ```
pub fn berlekamp_massey(bits: &[bool]) -> LfsrSynthesis {
    let n = bits.len();
    // c: current connection polynomial, b: previous, both over GF(2).
    let mut c = vec![false; n + 1];
    let mut b = vec![false; n + 1];
    c[0] = true;
    b[0] = true;
    let mut l = 0usize; // current complexity
    let mut m = 1usize; // steps since last update of b
    for i in 0..n {
        // Discrepancy: s[i] + Σ_{j=1..l} c[j]·s[i−j].
        let mut d = bits[i];
        for j in 1..=l {
            if c[j] && bits[i - j] {
                d = !d;
            }
        }
        if !d {
            m += 1;
        } else if 2 * l <= i {
            let t = c.clone();
            for (j, &bj) in b.iter().enumerate() {
                if bj && j + m <= n {
                    c[j + m] ^= true;
                }
            }
            l = i + 1 - l;
            b = t;
            m = 1;
        } else {
            for (j, &bj) in b.iter().enumerate() {
                if bj && j + m <= n {
                    c[j + m] ^= true;
                }
            }
            m += 1;
        }
    }
    LfsrSynthesis {
        complexity: l,
        connection: c[..=l].to_vec(),
    }
}

/// Convenience: the linear complexity of the next `observed` bits of a
/// generator (the generator is advanced).
pub fn linear_complexity<G: SequenceGenerator + ?Sized>(
    generator: &mut G,
    observed: usize,
) -> usize {
    let bits: Vec<bool> = (0..observed).map(|_| generator.next_bit()).collect();
    berlekamp_massey(&bits).complexity
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircularShiftRegister, GoldCode, Lfsr};
    use proptest::prelude::*;

    #[test]
    fn maximal_lfsr_complexity_equals_width() {
        for width in 3u32..=14 {
            let mut lfsr = Lfsr::maximal(width).expect("valid");
            let complexity = linear_complexity(&mut lfsr, 4 * width as usize);
            assert_eq!(complexity, width as usize, "width {width}");
        }
    }

    #[test]
    fn gold_codes_double_the_complexity() {
        for width in [5u32, 7, 9] {
            let mut gold = GoldCode::preferred(width, 1, 5).expect("tabulated");
            let complexity = linear_complexity(&mut gold, 6 * width as usize);
            assert_eq!(complexity, 2 * width as usize, "width {width}");
        }
    }

    #[test]
    fn forging_attack_predicts_the_watermark_stream() {
        // Observe 2L bits of the paper's 12-bit WGC, synthesise, and
        // predict the next 200 bits perfectly — the cloning threat model.
        let mut wgc = Lfsr::maximal(12).expect("valid");
        let observed: Vec<bool> = (0..24).map(|_| wgc.next_bit()).collect();
        let synthesis = berlekamp_massey(&observed);
        assert_eq!(synthesis.complexity, 12);

        let predicted = synthesis.predict(&observed, 200);
        let actual: Vec<bool> = (0..200).map(|_| wgc.next_bit()).collect();
        assert_eq!(predicted, actual, "the forged WGC diverged");
    }

    #[test]
    fn too_short_an_observation_fails_to_forge() {
        // With far fewer than 2L bits the synthesised recurrence is
        // necessarily shorter than the true register (L ≤ n = 8 < 12) and
        // its prediction must diverge: if an 8-step recurrence reproduced
        // 100+ further bits of a 12-bit m-sequence, that window's linear
        // complexity would be ≤ 8, contradicting its true complexity of 12.
        let mut wgc = Lfsr::maximal(12).expect("valid");
        let observed: Vec<bool> = (0..8).map(|_| wgc.next_bit()).collect();
        let synthesis = berlekamp_massey(&observed);
        assert!(synthesis.complexity <= 8);
        let predicted = synthesis.predict(&observed, 100);
        let actual: Vec<bool> = (0..100).map(|_| wgc.next_bit()).collect();
        assert_ne!(predicted, actual, "an underfit LFSR should not forge");
    }

    #[test]
    fn degenerate_sequences() {
        assert_eq!(berlekamp_massey(&[]).complexity, 0);
        assert_eq!(berlekamp_massey(&[false; 20]).complexity, 0);
        // A single 1 after k zeros has complexity k+1.
        let mut bits = vec![false; 5];
        bits.push(true);
        assert_eq!(berlekamp_massey(&bits).complexity, 6);
        // Alternating bits come from a 2-bit LFSR.
        let alternating: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        assert!(berlekamp_massey(&alternating).complexity <= 2);
    }

    #[test]
    fn circular_pattern_complexity_is_bounded_by_its_period() {
        let pattern = [true, true, false, true, false, false, false, true];
        let mut csr = CircularShiftRegister::new(&pattern).expect("valid");
        let complexity = linear_complexity(&mut csr, 64);
        assert!(complexity <= pattern.len(), "complexity {complexity}");
    }

    proptest! {
        #[test]
        fn complexity_is_at_most_the_length(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let synthesis = berlekamp_massey(&bits);
            prop_assert!(synthesis.complexity <= bits.len());
            prop_assert_eq!(synthesis.connection.len(), synthesis.complexity + 1);
            prop_assert!(synthesis.connection[0]);
        }

        #[test]
        fn synthesised_lfsr_regenerates_the_observation(bits in proptest::collection::vec(any::<bool>(), 1..120)) {
            // The defining property of Berlekamp–Massey: the synthesised
            // recurrence reproduces the observed sequence itself.
            let synthesis = berlekamp_massey(&bits);
            let l = synthesis.complexity;
            prop_assume!(l > 0 && 2 * l <= bits.len());
            let (seedpart, rest) = bits.split_at(l);
            let predicted = synthesis.predict(seedpart, rest.len());
            prop_assert_eq!(predicted.as_slice(), rest);
        }
    }
}
