use std::error::Error;
use std::fmt;

/// Errors produced when constructing or configuring sequence generators.
///
/// ```
/// use clockmark_seq::{Lfsr, SeqError};
///
/// let err = Lfsr::maximal(1).unwrap_err();
/// assert!(matches!(err, SeqError::InvalidWidth { width: 1 }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SeqError {
    /// The requested register width is outside the supported 2..=32 range.
    InvalidWidth {
        /// The rejected width.
        width: u32,
    },
    /// An LFSR was seeded with the all-zero state, which is a fixed point.
    ZeroSeed,
    /// A tap specification referenced a bit outside the register.
    TapOutOfRange {
        /// The rejected tap position (1-indexed).
        tap: u32,
        /// The register width.
        width: u32,
    },
    /// A tap specification was empty.
    EmptyTaps,
    /// A circular shift register was given an empty initial pattern.
    EmptyPattern,
    /// No preferred Gold-code pair is tabulated for the requested width.
    NoPreferredPair {
        /// The rejected width.
        width: u32,
    },
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidWidth { width } => {
                write!(
                    f,
                    "register width {width} is outside the supported 2..=32 range"
                )
            }
            SeqError::ZeroSeed => write!(f, "seed of an LFSR must be non-zero"),
            SeqError::TapOutOfRange { tap, width } => {
                write!(f, "tap position {tap} is outside a {width}-bit register")
            }
            SeqError::EmptyTaps => write!(f, "at least one feedback tap is required"),
            SeqError::EmptyPattern => {
                write!(f, "circular shift register pattern must be non-empty")
            }
            SeqError::NoPreferredPair { width } => {
                write!(
                    f,
                    "no preferred Gold-code pair is tabulated for width {width}"
                )
            }
        }
    }
}

impl Error for SeqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_trailing_punctuation() {
        let errors = [
            SeqError::InvalidWidth { width: 1 },
            SeqError::ZeroSeed,
            SeqError::TapOutOfRange { tap: 9, width: 8 },
            SeqError::EmptyTaps,
            SeqError::EmptyPattern,
            SeqError::NoPreferredPair { width: 8 },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "message ends with period: {msg}");
            let first = msg.chars().next().expect("non-empty message");
            assert!(
                first.is_lowercase() || first.is_numeric(),
                "not lowercase: {msg}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SeqError>();
    }
}
