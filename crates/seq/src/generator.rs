/// A clocked source of watermark control bits.
///
/// Every implementor produces one bit per call to [`next_bit`], mirroring a
/// hardware sequence generator that updates once per clock cycle. Generators
/// are deterministic: after [`reset`], the same bit stream is produced again,
/// which is what allows the detector to reconstruct the expected watermark
/// model vector `X` used by correlation power analysis.
///
/// The trait is object safe so heterogeneous generators can be stored behind
/// `Box<dyn SequenceGenerator>` (the watermark circuit in the paper selects
/// between an LFSR and a circular shift register at configuration time).
///
/// ```
/// # fn main() -> Result<(), clockmark_seq::SeqError> {
/// use clockmark_seq::{CircularShiftRegister, Lfsr, SequenceGenerator};
///
/// let generators: Vec<Box<dyn SequenceGenerator>> = vec![
///     Box::new(Lfsr::maximal(8)?),
///     Box::new(CircularShiftRegister::new(&[true, false, true, false])?),
/// ];
/// for mut g in generators {
///     let a: Vec<bool> = (0..16).map(|_| g.next_bit()).collect();
///     g.reset();
///     let b: Vec<bool> = (0..16).map(|_| g.next_bit()).collect();
///     assert_eq!(a, b, "generators replay deterministically after reset");
/// }
/// # Ok(())
/// # }
/// ```
///
/// [`next_bit`]: SequenceGenerator::next_bit
/// [`reset`]: SequenceGenerator::reset
pub trait SequenceGenerator: Send {
    /// Advances the generator by one clock cycle and returns the output bit.
    fn next_bit(&mut self) -> bool;

    /// Returns the generator to its initial state.
    ///
    /// After a reset the generator reproduces exactly the same bit stream.
    fn reset(&mut self);

    /// The period of the generated sequence, if it is known in closed form.
    ///
    /// Maximal-length LFSRs report `2^width - 1`; circular shift registers
    /// report their pattern length. Returns `None` when the period is not
    /// known without exhaustive search (e.g. an LFSR with custom taps).
    fn period_hint(&self) -> Option<u64>;

    /// Collects the next `len` bits into a vector.
    ///
    /// This consumes generator state exactly like `len` calls to
    /// [`next_bit`](SequenceGenerator::next_bit).
    fn collect_bits(&mut self, len: usize) -> Vec<bool>
    where
        Self: Sized,
    {
        (0..len).map(|_| self.next_bit()).collect()
    }
}

impl<G: SequenceGenerator + ?Sized> SequenceGenerator for Box<G> {
    fn next_bit(&mut self) -> bool {
        (**self).next_bit()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn period_hint(&self) -> Option<u64> {
        (**self).period_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lfsr;

    #[test]
    fn boxed_generator_forwards_all_methods() {
        let mut direct = Lfsr::maximal(8).expect("valid width");
        let mut boxed: Box<dyn SequenceGenerator> = Box::new(Lfsr::maximal(8).expect("valid"));
        assert_eq!(boxed.period_hint(), Some(255));
        for _ in 0..100 {
            assert_eq!(direct.next_bit(), boxed.next_bit());
        }
        direct.reset();
        boxed.reset();
        for _ in 0..100 {
            assert_eq!(direct.next_bit(), boxed.next_bit());
        }
    }

    #[test]
    fn collect_bits_matches_next_bit() {
        let mut a = Lfsr::maximal(10).expect("valid");
        let mut b = Lfsr::maximal(10).expect("valid");
        let collected = a.collect_bits(64);
        let manual: Vec<bool> = (0..64).map(|_| b.next_bit()).collect();
        assert_eq!(collected, manual);
    }
}
