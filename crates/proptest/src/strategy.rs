//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type (mirrors
/// `proptest::strategy::Strategy`, without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy (mirrors `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// A strategy that always yields one value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// A uniform choice between heterogeneous strategies of one value type —
/// what [`prop_oneof!`](crate::prop_oneof) builds.
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    /// Builds a union; panics on an empty choice list.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.choices.len() as u64) as usize;
        self.choices[pick].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}
