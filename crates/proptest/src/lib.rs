//! A vendored, std-only subset of the [`proptest`](https://docs.rs/proptest)
//! property-testing API.
//!
//! The build environment for this repository has no reachable crate
//! registry, so the real `proptest` crate cannot be downloaded. This crate
//! implements the subset the workspace's tests use — the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, ranges / [`Just`] / tuple /
//! regex-string strategies, [`collection::vec`], [`option::of`],
//! [`prop_oneof!`], `any::<T>()` and the `prop_assert*` family — with the
//! same semantics: each test body runs against many generated inputs and a
//! failure reports the inputs that produced it.
//!
//! Two deliberate simplifications versus the real crate:
//!
//! - **no shrinking** — a failing case reports the original input instead
//!   of a minimised one;
//! - **deterministic seeding** — cases derive from a hash of the test name,
//!   so failures always reproduce.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Returns the canonical strategy for a type (`any::<bool>()`,
/// `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<T>()` for primitives: the type's full range.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyOf<T>(core::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> Self::Strategy { AnyOf(core::marker::PhantomData) }
        }
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyOf(core::marker::PhantomData)
    }
}
impl Strategy for AnyOf<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyOf<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyOf(core::marker::PhantomData)
    }
}
impl Strategy for AnyOf<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 0 {
            mag
        } else {
            -mag
        }
    }
}

/// The workhorse macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies, running each body against many generated
/// inputs (mirrors `proptest::proptest!`, without shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng, __inputs| {
                    let __vals = ( $( $crate::strategy::Strategy::new_value(&($strat), __rng), )+ );
                    *__inputs = ::std::format!("{:?}", __vals);
                    let ( $($pat,)+ ) = __vals;
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n\tleft: {:?}\n\tright: {:?}",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `(left == right)`: {}\n\tleft: {:?}\n\tright: {:?}",
                    ::std::format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `(left != right)`\n\tboth: {:?}", __l),
            ));
        }
    }};
}

/// Skips the current case when a precondition does not hold (the case is
/// regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies yielding the same value type
/// (mirrors `proptest::prop_oneof!`, without weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}
