//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// An inclusive-exclusive size specification for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// A strategy generating `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// come from `element` (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.min + 1 == self.size.max {
            self.size.min
        } else {
            rng.usize_in(self.size.min, self.size.max)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
