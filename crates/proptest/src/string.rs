//! Generation of strings from the small regex subset the workspace's
//! string strategies use: literals, character classes (`[a-z]`, `[ -~]`,
//! `[\PC\n]`), and `{m,n}` / `{n}` / `*` / `+` / `?` repetition.
//!
//! This is a *generator*, not a matcher: it only needs to produce strings
//! the pattern would accept, with enough variety to exercise parsers.

use crate::test_runner::TestRng;

/// One unit of the pattern with its repetition bounds.
#[derive(Debug, Clone)]
struct Atom {
    kind: AtomKind,
    min: usize,
    max: usize,
}

#[derive(Debug, Clone)]
enum AtomKind {
    Literal(char),
    /// Characters and inclusive ranges a class draws from, plus whether the
    /// class includes the `\PC` "any non-control character" escape.
    Class {
        singles: Vec<char>,
        ranges: Vec<(char, char)>,
        printable: bool,
    },
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax the subset does not cover (anchors, groups,
/// alternation) — the panic message names the offending pattern so the
/// strategy can be extended.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = if atom.min == atom.max {
            atom.min
        } else {
            rng.usize_in(atom.min, atom.max + 1)
        };
        for _ in 0..n {
            out.push(sample_atom(&atom.kind, rng));
        }
    }
    out
}

fn sample_atom(kind: &AtomKind, rng: &mut TestRng) -> char {
    match kind {
        AtomKind::Literal(c) => *c,
        AtomKind::Class {
            singles,
            ranges,
            printable,
        } => {
            // Weight choices: each single and each range counts once, the
            // printable escape (when present) counts twice to keep its
            // share substantial.
            let options = singles.len() + ranges.len() + if *printable { 2 } else { 0 };
            let pick = rng.usize_in(0, options.max(1));
            if pick < singles.len() {
                singles[pick]
            } else if pick < singles.len() + ranges.len() {
                let (lo, hi) = ranges[pick - singles.len()];
                let span = hi as u32 - lo as u32 + 1;
                // Re-draw on the surrogate gap (only reachable for exotic
                // explicit ranges; the workspace uses ASCII ranges).
                loop {
                    let v = lo as u32 + rng.below(span as u64) as u32;
                    if let Some(c) = char::from_u32(v) {
                        return c;
                    }
                }
            } else {
                sample_printable(rng)
            }
        }
    }
}

/// A non-control character: mostly printable ASCII, occasionally a
/// multi-byte code point to stress UTF-8 handling.
fn sample_printable(rng: &mut TestRng) -> char {
    const EXOTIC: [char; 8] = ['é', 'ß', 'λ', '中', '→', '€', '‽', '🦀'];
    if rng.below(8) == 0 {
        EXOTIC[rng.usize_in(0, EXOTIC.len())]
    } else {
        char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ASCII")
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let kind = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                class
            }
            '\\' => {
                i += 1;
                let (c, next) = parse_escape(&chars, i, pattern);
                i = next;
                c
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("regex construct '{}' not supported by the vendored proptest string strategy (pattern {pattern:?})", chars[i])
            }
            c => {
                i += 1;
                AtomKind::Literal(c)
            }
        };
        // Optional repetition suffix.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("repetition bound"),
                            hi.trim().parse().expect("repetition bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("repetition count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { kind, min, max });
    }
    atoms
}

/// Parses a `\x` escape starting at `i` (past the backslash); returns the
/// atom and the index after it.
fn parse_escape(chars: &[char], i: usize, pattern: &str) -> (AtomKind, usize) {
    let c = *chars
        .get(i)
        .unwrap_or_else(|| panic!("dangling backslash in pattern {pattern:?}"));
    match c {
        'n' => (AtomKind::Literal('\n'), i + 1),
        't' => (AtomKind::Literal('\t'), i + 1),
        'r' => (AtomKind::Literal('\r'), i + 1),
        'P' | 'p' => {
            // Unicode category escape; the workspace only uses \PC ("not
            // control"), which we model as "any printable character".
            let class = *chars
                .get(i + 1)
                .unwrap_or_else(|| panic!("dangling \\P in pattern {pattern:?}"));
            assert!(
                c == 'P' && class == 'C',
                "only the \\PC escape is supported (pattern {pattern:?})"
            );
            (
                AtomKind::Class {
                    singles: Vec::new(),
                    ranges: Vec::new(),
                    printable: true,
                },
                i + 2,
            )
        }
        other => (AtomKind::Literal(other), i + 1),
    }
}

/// Parses a character class starting at `i` (past the `[`); returns the
/// atom and the index after the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (AtomKind, usize) {
    let mut singles = Vec::new();
    let mut ranges = Vec::new();
    let mut printable = false;
    let mut pending: Option<char> = None;
    loop {
        let c = *chars
            .get(i)
            .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
        match c {
            ']' => {
                if let Some(p) = pending {
                    singles.push(p);
                }
                return (
                    AtomKind::Class {
                        singles,
                        ranges,
                        printable,
                    },
                    i + 1,
                );
            }
            '\\' => {
                if let Some(p) = pending.take() {
                    singles.push(p);
                }
                let (atom, next) = parse_escape(chars, i + 1, pattern);
                i = next;
                match atom {
                    AtomKind::Literal(c) => pending = Some(c),
                    AtomKind::Class {
                        printable: true, ..
                    } => printable = true,
                    AtomKind::Class { .. } => unreachable!("escapes yield literal or \\PC"),
                }
            }
            '-' if pending.is_some() && chars.get(i + 1) != Some(&']') => {
                let lo = pending.take().expect("checked");
                let hi = chars[i + 1];
                assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                ranges.push((lo, hi));
                i += 2;
            }
            c => {
                if let Some(p) = pending.take() {
                    singles.push(p);
                }
                pending = Some(c);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string-tests", 0)
    }

    #[test]
    fn literal_patterns_reproduce_themselves() {
        assert_eq!(generate("abc", &mut rng()), "abc");
    }

    #[test]
    fn class_with_counted_repetition() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z]{1,8}", &mut r);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn compound_pattern_has_expected_shape() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("[a-z]{1,8} [a-z]{1,8}=[a-z]{1,8}", &mut r);
            assert!(s.contains(' ') && s.contains('='), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_range() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("[ -~]{0,40}", &mut r);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn non_control_class_with_newline() {
        let mut r = rng();
        let mut saw_newline = false;
        for _ in 0..300 {
            let s = generate("[\\PC\n]{0,300}", &mut r);
            assert!(s.chars().count() <= 300);
            assert!(
                s.chars().all(|c| c == '\n' || !c.is_control()),
                "control char in {s:?}"
            );
            saw_newline |= s.contains('\n');
        }
        assert!(saw_newline, "the class must actually emit newlines");
    }
}
