//! The glob-import surface (`use proptest::prelude::*`), mirroring the
//! real crate's prelude.

pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{any, Arbitrary};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
