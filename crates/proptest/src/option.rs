//! `Option` strategies (mirrors `proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy yielding `None` a quarter of the time and `Some` of the
/// inner strategy otherwise (the real crate's default weighting is also
/// 1:3 in favour of `Some`).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Wraps a strategy's values in `Option` (mirrors `proptest::option::of`).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}
