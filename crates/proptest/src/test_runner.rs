//! The case loop behind the [`proptest!`](crate::proptest) macro.

use std::fmt;

/// Configuration for a `proptest!` block (mirrors
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// A `prop_assume!` precondition was not met; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Attaches the generated inputs to a failure message.
    pub fn with_inputs(self, inputs: &str) -> Self {
        match self {
            TestCaseError::Fail(msg) => TestCaseError::Fail(format!("{msg}\n\tinputs: {inputs}")),
            reject => reject,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// The deterministic generator driving value strategies: xoshiro256++
/// seeded from the test name, so every failure reproduces.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary byte string (the test name) and case index.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut x = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` (rejection sampled; unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty choice");
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }
}

/// Runs `config.cases` generated cases of one property, panicking on the
/// first failure with the inputs that caused it.
///
/// `case` receives the generator and a slot it fills with a debug dump of
/// the generated inputs (reported on failure); it returns `Ok(())` for a
/// pass, `Err(Reject)` to skip an input (`prop_assume!`) and `Err(Fail)`
/// for an assertion failure.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::for_case(name, index);
        let mut inputs = String::new();
        index += 1;
        match case(&mut rng, &mut inputs) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many rejected inputs \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case #{}: {msg}\n\tinputs: {inputs}",
                    index - 1
                );
            }
        }
    }
}
