//! FSM-based IP watermarking — the related-work comparator of the paper's
//! Section I.
//!
//! Before power watermarks, the dominant soft-IP protection techniques
//! embedded signatures into a design's **finite state machine**: extra
//! states (Oliveira 1999; Torunoglu & Charbon 2000; Cui et al. 2011) or
//! modified existing states (Abdel-Hamid et al. 2005/2008) produce a secret
//! output signature when a secret input key is applied. Their area overhead
//! is tiny (down to the famous "0 %"), but detection needs **access to the
//! device's input and output ports and knowledge of the surrounding
//! design** — exactly the capability the paper argues many IP vendors do
//! not have, which motivates detecting through the power rail instead.
//!
//! This crate implements that baseline end to end so the trade-off is
//! executable:
//!
//! - [`Fsm`]: a Mealy machine with optionally specified transitions
//!   (don't-cares are what the watermark consumes);
//! - [`embed_signature`]: Torunoglu-style state insertion driven by a
//!   secret key, leaving all specified behaviour untouched;
//! - [`verify_signature`]: the vendor-side detection (apply key, compare
//!   output signature);
//! - [`reachability`]: BFS analysis showing the watermark states are
//!   behaviourally hidden (unreachable without the key prefix).
//!
//! ```
//! # fn main() -> Result<(), clockmark_fsm::FsmError> {
//! use clockmark_fsm::{embed_signature, verify_signature, Fsm, Key};
//!
//! // A 3-state controller with unused input symbols to hide a mark in.
//! let mut fsm = Fsm::new(3, 4, 4)?;
//! fsm.specify(0, 0, 1, 1)?; // state 0 --in 0/out 1--> state 1
//! fsm.specify(1, 0, 2, 2)?;
//! fsm.specify(2, 0, 0, 3)?;
//!
//! let key = Key { inputs: vec![3, 1, 2], signature: vec![1, 0, 1] };
//! let watermarked = embed_signature(&fsm, &key)?;
//!
//! assert!(verify_signature(&watermarked.fsm, &key)?);
//! assert!(!verify_signature(&fsm, &key)?, "unwatermarked part fails");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod machine;
pub mod reachability;
mod watermark;

pub use error::FsmError;
pub use machine::{Fsm, StateId, Symbol};
pub use watermark::{embed_signature, verify_signature, Key, WatermarkedFsm};
