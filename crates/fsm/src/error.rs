use std::error::Error;
use std::fmt;

/// Errors produced by the FSM watermarking substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsmError {
    /// A machine was declared with zero states, inputs or outputs.
    EmptyMachine,
    /// A state id is outside the machine.
    UnknownState {
        /// The rejected state.
        state: u32,
    },
    /// An input or output symbol is outside the declared alphabet.
    UnknownSymbol {
        /// The rejected symbol.
        symbol: u8,
        /// The alphabet size it must be below.
        alphabet: u8,
    },
    /// A transition was specified twice.
    AlreadySpecified {
        /// The source state.
        state: u32,
        /// The input symbol.
        input: u8,
    },
    /// The machine takes an unspecified transition during simulation.
    Unspecified {
        /// The stuck state.
        state: u32,
        /// The input with no transition.
        input: u8,
    },
    /// The watermark key is empty or its signature length differs from its
    /// input length.
    InvalidKey,
    /// The key's first transition from reset is already used functionally,
    /// so embedding would change specified behaviour.
    KeyCollidesWithFunction {
        /// The input symbol that is already specified from reset.
        input: u8,
    },
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::EmptyMachine => {
                write!(f, "a machine needs at least one state, input and output")
            }
            FsmError::UnknownState { state } => write!(f, "unknown state {state}"),
            FsmError::UnknownSymbol { symbol, alphabet } => {
                write!(f, "symbol {symbol} outside the {alphabet}-symbol alphabet")
            }
            FsmError::AlreadySpecified { state, input } => {
                write!(
                    f,
                    "transition from state {state} on input {input} is already specified"
                )
            }
            FsmError::Unspecified { state, input } => {
                write!(f, "no transition from state {state} on input {input}")
            }
            FsmError::InvalidKey => {
                write!(f, "key needs equal, non-zero input and signature lengths")
            }
            FsmError::KeyCollidesWithFunction { input } => {
                write!(
                    f,
                    "input {input} from reset is functionally specified; pick an unused key prefix"
                )
            }
        }
    }
}

impl Error for FsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FsmError::KeyCollidesWithFunction { input: 3 }
            .to_string()
            .contains('3'));
        assert!(FsmError::UnknownSymbol {
            symbol: 9,
            alphabet: 4
        }
        .to_string()
        .contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FsmError>();
    }
}
