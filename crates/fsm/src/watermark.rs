use crate::{Fsm, FsmError, StateId, Symbol};

/// The vendor's secret: an input word and the output signature the
/// watermarked machine must answer it with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key {
    /// The secret input word, applied from reset.
    pub inputs: Vec<Symbol>,
    /// The expected output signature.
    pub signature: Vec<Symbol>,
}

impl Key {
    /// Key length in symbols.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the key is empty (invalid for embedding).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// The result of embedding: the watermarked machine plus accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatermarkedFsm {
    /// The machine with the signature path inserted.
    pub fsm: Fsm,
    /// Ids of the inserted watermark states.
    pub added_states: Vec<StateId>,
    /// State registers before embedding.
    pub registers_before: u32,
    /// State registers after embedding.
    pub registers_after: u32,
}

impl WatermarkedFsm {
    /// Extra state registers the watermark cost (frequently zero — the
    /// "0 % area overhead" result of the FSM-watermarking literature,
    /// achieved when the added states fit the existing encoding slack).
    pub fn register_overhead(&self) -> u32 {
        self.registers_after - self.registers_before
    }
}

/// Embeds a signature path à la Torunoglu & Charbon: a chain of fresh
/// states traversed only by the key word, emitting the signature; any
/// wrong symbol mid-chain falls back to reset. All *specified* original
/// behaviour is preserved exactly (the chain entry consumes a don't-care
/// transition of the reset state).
///
/// # Errors
///
/// Returns [`FsmError::InvalidKey`] for empty/mismatched keys,
/// [`FsmError::KeyCollidesWithFunction`] when the key's first symbol is
/// already functionally specified from reset, and range errors for
/// out-of-alphabet symbols.
pub fn embed_signature(original: &Fsm, key: &Key) -> Result<WatermarkedFsm, FsmError> {
    if key.is_empty() || key.inputs.len() != key.signature.len() {
        return Err(FsmError::InvalidKey);
    }
    for &symbol in &key.inputs {
        if symbol >= original.input_count() {
            return Err(FsmError::UnknownSymbol {
                symbol,
                alphabet: original.input_count(),
            });
        }
    }
    for &symbol in &key.signature {
        if symbol >= original.output_count() {
            return Err(FsmError::UnknownSymbol {
                symbol,
                alphabet: original.output_count(),
            });
        }
    }
    if original.transition(0, key.inputs[0])?.is_some() {
        return Err(FsmError::KeyCollidesWithFunction {
            input: key.inputs[0],
        });
    }

    let mut fsm = original.clone();
    let registers_before = fsm.state_registers();

    // Chain states w1..wm; the final key symbol returns to reset, so the
    // machine is usable again right after verification.
    let added_states: Vec<StateId> = (1..key.len()).map(|_| fsm.add_state()).collect();
    let mut chain_targets: Vec<StateId> = added_states.clone();
    chain_targets.push(0); // last hop back to reset

    // Entry: reset --key[0]/sig[0]--> w1 (or reset for a 1-symbol key).
    fsm.specify(0, key.inputs[0], chain_targets[0], key.signature[0])?;

    // Chain hops, with every non-key input from a chain state falling back
    // to reset emitting output 0 (a deliberately unremarkable answer).
    for (i, &w) in added_states.iter().enumerate() {
        for input in 0..fsm.input_count() {
            if input == key.inputs[i + 1] {
                fsm.specify(w, input, chain_targets[i + 1], key.signature[i + 1])?;
            } else {
                fsm.specify(w, input, 0, 0)?;
            }
        }
    }

    let registers_after = fsm.state_registers();
    Ok(WatermarkedFsm {
        fsm,
        added_states,
        registers_before,
        registers_after,
    })
}

/// The vendor-side check: apply the key from reset and compare the output
/// word with the signature.
///
/// # Errors
///
/// Returns range errors for out-of-alphabet key symbols. An unspecified
/// transition along the way reads as "not watermarked" rather than an
/// error (an unwatermarked device may simply not implement the path).
pub fn verify_signature(fsm: &Fsm, key: &Key) -> Result<bool, FsmError> {
    match fsm.run(&key.inputs) {
        Ok(outputs) => Ok(outputs == key.signature),
        Err(FsmError::Unspecified { .. }) => Ok(false),
        Err(other) => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A 4-state controller using inputs {0,1} functionally, leaving
    /// inputs {2,3} as don't-cares.
    fn controller() -> Fsm {
        let mut fsm = Fsm::new(4, 4, 4).expect("valid dims");
        for s in 0..4 {
            fsm.specify(s, 0, (s + 1) % 4, s as u8).expect("fresh");
            fsm.specify(s, 1, 0, 3).expect("fresh");
        }
        fsm
    }

    fn key() -> Key {
        Key {
            inputs: vec![2, 3, 2, 2],
            signature: vec![1, 0, 2, 3],
        }
    }

    #[test]
    fn embedding_preserves_all_functional_behaviour() {
        let original = controller();
        let wm = embed_signature(&original, &key()).expect("embeds");

        // Exhaustively compare every functional input word up to length 6.
        let mut words = vec![vec![]];
        for _ in 0..6 {
            words = words
                .into_iter()
                .flat_map(|w| {
                    [0u8, 1].iter().map(move |&i| {
                        let mut w2 = w.clone();
                        w2.push(i);
                        w2
                    })
                })
                .collect();
        }
        for word in words {
            assert_eq!(
                original.run(&word).expect("functional inputs specified"),
                wm.fsm.run(&word).expect("still specified"),
                "behaviour changed for {word:?}"
            );
        }
    }

    #[test]
    fn key_produces_the_signature_only_on_the_watermarked_machine() {
        let original = controller();
        let wm = embed_signature(&original, &key()).expect("embeds");
        assert!(verify_signature(&wm.fsm, &key()).expect("runs"));
        assert!(!verify_signature(&original, &key()).expect("runs"));
    }

    #[test]
    fn wrong_keys_fail_verification() {
        let wm = embed_signature(&controller(), &key()).expect("embeds");
        // Wrong signature.
        let mut wrong = key();
        wrong.signature[2] ^= 1;
        assert!(!verify_signature(&wm.fsm, &wrong).expect("runs"));
        // Wrong input word (diverges mid-chain, falls back to reset).
        let mut wrong = key();
        wrong.inputs[1] = 2;
        assert!(!verify_signature(&wm.fsm, &wrong).expect("runs"));
    }

    #[test]
    fn machine_remains_usable_after_verification() {
        let wm = embed_signature(&controller(), &key()).expect("embeds");
        // Key then functional word: the chain's last hop returns to reset.
        let mut word = key().inputs;
        word.extend([0u8, 0, 0]);
        let out = wm.fsm.run(&word).expect("specified");
        assert_eq!(
            &out[4..],
            &[0, 1, 2],
            "functional outputs resume from reset"
        );
    }

    #[test]
    fn area_accounting_matches_the_zero_overhead_story() {
        let wm = embed_signature(&controller(), &key()).expect("embeds");
        // 4 states → 7 states: 2 registers → 3 registers.
        assert_eq!(wm.added_states.len(), 3);
        assert_eq!(wm.registers_before, 2);
        assert_eq!(wm.registers_after, 3);
        assert_eq!(wm.register_overhead(), 1);

        // A roomier encoding absorbs the watermark for free: 12 functional
        // states (4 registers) + 3 watermark states still fit 4 registers.
        let mut roomy = Fsm::new(12, 4, 4).expect("valid dims");
        for s in 0..12 {
            roomy.specify(s, 0, (s + 1) % 12, 0).expect("fresh");
        }
        let wm = embed_signature(&roomy, &key()).expect("embeds");
        assert_eq!(wm.register_overhead(), 0, "the famous 0 % overhead");
    }

    #[test]
    fn collisions_and_bad_keys_are_rejected() {
        let original = controller();
        // Key starting with a functionally used input.
        let colliding = Key {
            inputs: vec![0, 2],
            signature: vec![0, 0],
        };
        assert_eq!(
            embed_signature(&original, &colliding).unwrap_err(),
            FsmError::KeyCollidesWithFunction { input: 0 }
        );
        // Mismatched lengths / empty.
        let bad = Key {
            inputs: vec![2],
            signature: vec![],
        };
        assert_eq!(
            embed_signature(&original, &bad).unwrap_err(),
            FsmError::InvalidKey
        );
        let bad = Key {
            inputs: vec![],
            signature: vec![],
        };
        assert_eq!(
            embed_signature(&original, &bad).unwrap_err(),
            FsmError::InvalidKey
        );
        // Out-of-alphabet symbols.
        let bad = Key {
            inputs: vec![9],
            signature: vec![0],
        };
        assert!(matches!(
            embed_signature(&original, &bad).unwrap_err(),
            FsmError::UnknownSymbol { symbol: 9, .. }
        ));
    }

    #[test]
    fn random_probing_rarely_reveals_the_signature() {
        // An attacker without the key who feeds random inputs and watches
        // outputs: the probability of reproducing the 4-symbol signature
        // by chance is (1/4)^4 per aligned window; verify a few thousand
        // probes never verify.
        let wm = embed_signature(&controller(), &key()).expect("embeds");
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let probe = Key {
                inputs: (0..4).map(|_| rng.random_range(0u8..4)).collect(),
                signature: key().signature,
            };
            if probe.inputs == key().inputs {
                continue; // the actual key, skip
            }
            assert!(
                !verify_signature(&wm.fsm, &probe).expect("runs"),
                "probe {probe:?} accidentally verified"
            );
        }
    }
}
